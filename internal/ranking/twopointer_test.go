package ranking

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// legacyIndividualOrder is the pre-presort Step 2: index sort by
// (Γ ascending, place index ascending) via sort.SliceStable, exactly as
// Rank used to do per query. The two-pointer merge must reproduce it
// byte-for-byte.
func legacyIndividualOrder(m *Matrix, j int, u float64) []int {
	n := len(m.Places)
	gamma := make([]float64, n)
	for i := 0; i < n; i++ {
		gamma[i] = math.Abs(m.Values[i][j] - u)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if gamma[order[a]] != gamma[order[b]] {
			return gamma[order[a]] < gamma[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}

// randomTieHeavyMatrix builds a matrix whose columns mix a coarse value
// grid (forcing exact duplicates), negatives, and occasional huge
// magnitudes (forcing float absorption ties where distinct values yield
// equal gammas).
func randomTieHeavyMatrix(rng *rand.Rand, n, mFeat int) *Matrix {
	m := &Matrix{
		Places:   make([]string, n),
		Features: make([]Feature, mFeat),
		Values:   make([][]float64, n),
	}
	for i := range m.Places {
		m.Places[i] = fmt.Sprintf("p%03d", i)
		m.Values[i] = make([]float64, mFeat)
	}
	for j := range m.Features {
		m.Features[j] = Feature{
			Name:    fmt.Sprintf("f%d", j),
			Unit:    "u",
			Default: Preference{Kind: PrefValue, Value: rng.NormFloat64() * 10, Weight: rng.Intn(MaxWeight + 1)},
		}
		for i := 0; i < n; i++ {
			switch rng.Intn(4) {
			case 0: // coarse grid — exact value ties
				m.Values[i][j] = float64(rng.Intn(5))
			case 1:
				m.Values[i][j] = -float64(rng.Intn(5)) / 2
			case 2: // fine-grained
				m.Values[i][j] = rng.NormFloat64() * 100
			default: // large magnitude — absorption regime
				m.Values[i][j] = rng.NormFloat64() * 1e15
			}
		}
	}
	return m
}

func randomPreferredValue(rng *rand.Rand, m *Matrix, j int) float64 {
	switch rng.Intn(5) {
	case 0: // exact hit on an existing cell
		return m.Values[rng.Intn(len(m.Places))][j]
	case 1:
		return float64(rng.Intn(6)) - 0.5
	case 2: // far outside the column — every gamma dominated by u
		return 1e16
	case 3:
		return -1e16
	default:
		return rng.NormFloat64() * 50
	}
}

// TestIndividualOrderMatchesSort is the equivalence property test for the
// presorted-column merge: for random tie-heavy matrices and preferred
// values, the O(n) two-pointer order equals the legacy sort order exactly.
func TestIndividualOrderMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		mFeat := 1 + rng.Intn(4)
		m := randomTieHeavyMatrix(rng, n, mFeat)
		r, err := NewRanker(m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for j := 0; j < mFeat; j++ {
			for rep := 0; rep < 4; rep++ {
				u := randomPreferredValue(rng, m, j)
				want := legacyIndividualOrder(m, j, u)
				got := r.individualOrder(j, u, make([]int, 0, n), make([]int, 0, n))
				for k := range want {
					if got[k] != want[k] {
						t.Fatalf("trial %d col %d u=%v:\n got %v\nwant %v", trial, j, u, got, want)
					}
				}
			}
		}
	}
}

// TestRankMatchesLegacyPipeline checks end-to-end Rank equivalence: the
// full Result (order, individual rankings, gamma, costs) must be
// byte-identical to a reference pipeline that re-sorts per query, across
// every PrefKind including absent prefs and zero weights.
func TestRankMatchesLegacyPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	kinds := []PrefKind{PrefValue, PrefMin, PrefMax, PrefDefault}
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(12)
		mFeat := 1 + rng.Intn(4)
		m := randomTieHeavyMatrix(rng, n, mFeat)
		r, err := NewRanker(m)
		if err != nil {
			t.Fatal(err)
		}
		prof := Profile{Name: "prop", Prefs: map[string]Preference{}}
		for j := range m.Features {
			if rng.Intn(4) == 0 {
				continue // absent → falls back to the feature default
			}
			k := kinds[rng.Intn(len(kinds))]
			prof.Prefs[m.Features[j].Name] = Preference{
				Kind:   k,
				Value:  randomPreferredValue(rng, m, j),
				Weight: rng.Intn(MaxWeight + 1),
			}
		}
		res, err := r.Rank(prof)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Reference: recompute each individual ranking with the legacy
		// sort using the same resolved preferred values.
		for j, f := range m.Features {
			u, _, err := r.resolve(j, prof)
			if err != nil {
				t.Fatal(err)
			}
			want := legacyIndividualOrder(m, j, u)
			got := res.Individual[f.Name]
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("trial %d feature %s: individual %v, want %v", trial, f.Name, got, want)
				}
			}
			for i := 0; i < n; i++ {
				if g := math.Abs(m.Values[i][j] - u); res.Gamma[i][j] != g {
					t.Fatalf("trial %d: Gamma[%d][%d] = %v, want %v", trial, i, j, res.Gamma[i][j], g)
				}
			}
		}
		// The final order must be a permutation consistent with OrderIdx.
		seen := make([]bool, n)
		for pos, idx := range res.OrderIdx {
			if idx < 0 || idx >= n || seen[idx] {
				t.Fatalf("trial %d: OrderIdx %v is not a permutation", trial, res.OrderIdx)
			}
			seen[idx] = true
			if res.Order[pos] != m.Places[idx] {
				t.Fatalf("trial %d: Order[%d] = %q, want %q", trial, pos, res.Order[pos], m.Places[idx])
			}
		}
	}
}
