package vclock

import (
	"container/heap"
	"sync"
	"time"
)

// Virtual is a deterministic discrete-event clock. Time never passes on
// its own: it moves only when Advance/AdvanceTo is called, or — when
// actors are registered — when the last registered actor parks in Sleep
// and the clock jumps to the earliest pending timer ("advance only when
// all actors are parked").
//
// Determinism invariants:
//
//   - Timers fire in (deadline, creation sequence) order. Two timers
//     with the same deadline fire in the order they were created, so a
//     run's fire order is a pure function of the program, never of
//     goroutine scheduling.
//   - AfterFunc callbacks run synchronously on the goroutine that
//     advances the clock, before Advance returns and before any
//     later-deadline timer fires.
//   - Now() is monotone non-decreasing and only changes under Advance.
//
// A single-threaded driver (see internal/fleetsim) uses Advance/NextFire
// directly. Multi-goroutine tests register each clock-driven goroutine
// as an actor and let auto-advance run the virtual time forward.
type Virtual struct {
	mu     sync.Mutex
	cond   *sync.Cond
	now    time.Time
	seq    uint64
	timers timerHeap
	actors int // registered auto-advance actors
	parked int // goroutines currently blocked in Sleep
}

// NewVirtual returns a Virtual clock frozen at start.
func NewVirtual(start time.Time) *Virtual {
	v := &Virtual{now: start}
	v.cond = sync.NewCond(&v.mu)
	return v
}

// Now returns the current virtual time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Since is Now().Sub(t).
func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// vtimer is one scheduled event: a channel delivery, a callback, or a
// repeating tick.
type vtimer struct {
	when    time.Time
	seq     uint64 // creation order; ties on `when` fire in seq order
	ch      chan time.Time
	fn      func()
	period  time.Duration // > 0 for tickers
	sleeper bool          // backs a Sleep; firing it un-parks the sleeper
	stopped bool
	index   int // heap position, -1 when popped
}

type timerHeap []*vtimer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *timerHeap) Push(x any) {
	t := x.(*vtimer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// schedule registers a timer under the lock.
func (v *Virtual) schedule(d time.Duration, ch chan time.Time, fn func(), period time.Duration) *vtimer {
	t := &vtimer{when: v.now.Add(d), seq: v.seq, ch: ch, fn: fn, period: period}
	v.seq++
	heap.Push(&v.timers, t)
	return t
}

// After returns a channel that delivers the virtual time once the clock
// has been advanced past d from now.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- v.now
		return ch
	}
	v.schedule(d, ch, nil, 0)
	return ch
}

// NewTimer returns a Timer that fires once the clock passes d from now.
func (v *Virtual) NewTimer(d time.Duration) Timer {
	v.mu.Lock()
	defer v.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- v.now
		return &virtualTimer{v: v, ch: ch}
	}
	return &virtualTimer{v: v, ch: ch, t: v.schedule(d, ch, nil, 0)}
}

// AfterFunc schedules f to run when the clock passes d from now. f runs
// synchronously on the advancing goroutine, with the clock set to the
// timer's deadline.
func (v *Virtual) AfterFunc(d time.Duration, f func()) Timer {
	if d <= 0 {
		f()
		return &virtualTimer{v: v}
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return &virtualTimer{v: v, t: v.schedule(d, nil, f, 0)}
}

// NewTicker returns a Ticker firing every d of virtual time. Like
// time.Ticker, ticks are dropped (not queued) if the receiver lags.
func (v *Virtual) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("vclock: non-positive ticker interval")
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	ch := make(chan time.Time, 1)
	return &virtualTicker{v: v, t: v.schedule(d, ch, nil, d)}
}

type virtualTimer struct {
	v  *Virtual
	ch chan time.Time
	t  *vtimer // nil when the timer already fired at creation
}

func (vt *virtualTimer) C() <-chan time.Time { return vt.ch }

func (vt *virtualTimer) Stop() bool {
	if vt.t == nil {
		return false
	}
	return vt.v.stop(vt.t)
}

type virtualTicker struct {
	v *Virtual
	t *vtimer
}

func (vt *virtualTicker) C() <-chan time.Time { return vt.t.ch }
func (vt *virtualTicker) Stop()               { vt.v.stop(vt.t) }

// stop cancels a timer; reports whether it was still pending.
func (v *Virtual) stop(t *vtimer) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if t.stopped || t.index < 0 {
		return false
	}
	t.stopped = true
	heap.Remove(&v.timers, t.index)
	return true
}

// Sleep blocks until the clock has been advanced past d. A goroutine in
// Sleep counts as parked for auto-advance: if every registered actor is
// parked, the last one to park advances the clock to the earliest
// pending timer before blocking, so a fleet of sleeping actors makes
// progress without an external driver.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	ch := make(chan time.Time, 1)
	t := v.schedule(d, ch, nil, 0)
	t.sleeper = true
	// parked is decremented by whoever FIRES the timer (advanceLocked),
	// not here on resume: a woken-but-unscheduled sleeper must not
	// count as parked, or a racing actor would see "everyone parked"
	// and advance past events the woken one is about to schedule.
	v.parked++
	v.cond.Broadcast()
	v.autoAdvanceLocked(ch)
	v.mu.Unlock()

	<-ch
}

// autoAdvanceLocked advances to successive earliest timers while every
// registered actor is parked and the caller's own wakeup (ch) has not
// yet fired. Called with v.mu held; may release and reacquire it.
func (v *Virtual) autoAdvanceLocked(ch chan time.Time) {
	for v.actors > 0 && v.parked >= v.actors && len(v.timers) > 0 && len(ch) == 0 {
		v.advanceLocked(v.timers[0].when)
	}
}

// Register adds an actor to the auto-advance census. Every goroutine
// that sleeps on this clock in a multi-actor test should Register
// before its loop and Unregister (usually via defer) when it exits, so
// the clock knows when "everyone is parked".
func (v *Virtual) Register() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.actors++
}

// Unregister removes an actor. If the remaining actors are all parked,
// the caller advances the clock for them before returning.
func (v *Virtual) Unregister() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.actors--
	if v.actors > 0 && v.parked >= v.actors && len(v.timers) > 0 {
		v.advanceLocked(v.timers[0].when)
	}
}

// Parked returns how many goroutines are currently blocked in Sleep.
// Tests condition-poll this instead of sleeping wall-clock time.
func (v *Virtual) Parked() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.parked
}

// AwaitParked blocks until at least n goroutines are parked in Sleep.
func (v *Virtual) AwaitParked(n int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for v.parked < n {
		v.cond.Wait()
	}
}

// NextFire reports the deadline of the earliest pending timer. A
// single-threaded driver merges this with its own event queue to decide
// how far to advance.
func (v *Virtual) NextFire() (time.Time, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.timers) == 0 {
		return time.Time{}, false
	}
	return v.timers[0].when, true
}

// Advance moves the clock forward by d, firing every timer whose
// deadline falls within the window, in (deadline, seq) order.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.advanceLocked(v.now.Add(d))
}

// AdvanceTo moves the clock forward to t (no-op if t is in the past).
func (v *Virtual) AdvanceTo(t time.Time) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.advanceLocked(t)
}

// advanceLocked fires all timers with deadline <= target, then sets the
// clock to target. Callback timers run with the lock released, so a
// callback may schedule new timers or advance further; timers it
// schedules inside the window fire in the same pass.
func (v *Virtual) advanceLocked(target time.Time) {
	if target.Before(v.now) {
		return
	}
	for len(v.timers) > 0 && !v.timers[0].when.After(target) {
		t := heap.Pop(&v.timers).(*vtimer)
		if t.stopped {
			continue
		}
		fireAt := t.when
		if fireAt.After(v.now) {
			v.now = fireAt
		}
		if t.sleeper {
			v.parked--
		}
		if t.period > 0 {
			// Re-arm in place (same vtimer, so Stop keeps working)
			// before delivery, at a steady deadline cadence.
			t.when = fireAt.Add(t.period)
			t.seq = v.seq
			v.seq++
			heap.Push(&v.timers, t)
		}
		if t.fn != nil {
			fn := t.fn
			v.mu.Unlock()
			fn()
			v.mu.Lock()
			continue
		}
		// Buffered channel: drop the tick if the receiver hasn't
		// consumed the previous one (time.Ticker semantics).
		select {
		case t.ch <- fireAt:
		default:
		}
	}
	if target.After(v.now) {
		v.now = target
	}
}
