// Package vclock provides an injectable clock: a Real implementation
// backed by the time package, and a deterministic Virtual implementation
// for discrete-event simulation where time advances only when the test
// or simulation driver says so.
//
// Components that sleep, tick, or timestamp take a Clock instead of
// calling the time package directly. Production wiring passes Real{}
// (or leaves the option unset — every constructor defaults to Real);
// simulations and tests pass a *Virtual and drive it explicitly with
// Advance/AdvanceTo, or let blocked Sleepers auto-advance it (see
// Virtual).
package vclock

import "time"

// Timer mirrors the parts of *time.Timer components use: a channel that
// delivers the fire time, and Stop to cancel. Reset is deliberately
// omitted — every call site in this codebase creates fresh timers.
type Timer interface {
	// C returns the channel on which the fire time is delivered.
	C() <-chan time.Time
	// Stop cancels the timer. It reports whether the call stopped the
	// timer before it fired, with the same caveats as time.Timer.Stop.
	Stop() bool
}

// Ticker mirrors the parts of *time.Ticker components use.
type Ticker interface {
	C() <-chan time.Time
	Stop()
}

// Clock abstracts the time package for injection. All methods match the
// semantics of their time-package counterparts.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
	// After returns a channel that delivers the clock's time after d.
	After(d time.Duration) <-chan time.Time
	NewTimer(d time.Duration) Timer
	NewTicker(d time.Duration) Ticker
	// AfterFunc runs f on its own goroutine (Real) or synchronously on
	// the advancing goroutine (Virtual) once d has elapsed.
	AfterFunc(d time.Duration, f func()) Timer
	// Since is Now().Sub(t), for duration measurement.
	Since(t time.Time) time.Duration
}

// Real is the production Clock: every method delegates to the time
// package. The zero value is ready to use.
type Real struct{}

func (Real) Now() time.Time                         { return time.Now() }
func (Real) Sleep(d time.Duration)                  { time.Sleep(d) }
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (Real) Since(t time.Time) time.Duration        { return time.Since(t) }

func (Real) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

func (Real) NewTicker(d time.Duration) Ticker { return realTicker{time.NewTicker(d)} }

func (Real) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{time.AfterFunc(d, f)}
}

type realTimer struct{ t *time.Timer }

func (r realTimer) C() <-chan time.Time { return r.t.C }
func (r realTimer) Stop() bool          { return r.t.Stop() }

type realTicker struct{ t *time.Ticker }

func (r realTicker) C() <-chan time.Time { return r.t.C }
func (r realTicker) Stop()               { r.t.Stop() }

// Or returns c unless it is nil, in which case it returns Real{}. Every
// constructor that accepts an optional Clock funnels through this so a
// nil option means "wall clock".
func Or(c Clock) Clock {
	if c == nil {
		return Real{}
	}
	return c
}
