package vclock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var epoch = time.Date(2013, 11, 15, 11, 0, 0, 0, time.UTC)

func TestRealClockBasics(t *testing.T) {
	c := Or(nil) // nil option means wall clock
	if _, ok := c.(Real); !ok {
		t.Fatalf("Or(nil) = %T, want Real", c)
	}
	t0 := c.Now()
	c.Sleep(time.Millisecond)
	if c.Since(t0) <= 0 {
		t.Fatal("real clock did not move")
	}
	tm := c.NewTimer(time.Millisecond)
	select {
	case <-tm.C():
	case <-time.After(5 * time.Second):
		t.Fatal("real timer never fired")
	}
}

func TestVirtualNowFrozenUntilAdvance(t *testing.T) {
	v := NewVirtual(epoch)
	if !v.Now().Equal(epoch) {
		t.Fatalf("Now = %v", v.Now())
	}
	v.Advance(3 * time.Second)
	if got := v.Now(); !got.Equal(epoch.Add(3 * time.Second)) {
		t.Fatalf("Now = %v", got)
	}
	// Advancing to the past is a no-op, never a rewind.
	v.AdvanceTo(epoch)
	if got := v.Now(); !got.Equal(epoch.Add(3 * time.Second)) {
		t.Fatalf("Now rewound to %v", got)
	}
}

func TestVirtualAfterDeliversClockTime(t *testing.T) {
	v := NewVirtual(epoch)
	ch := v.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("fired before advance")
	default:
	}
	v.Advance(10 * time.Second)
	select {
	case got := <-ch:
		if !got.Equal(epoch.Add(10 * time.Second)) {
			t.Fatalf("fired at %v", got)
		}
	default:
		t.Fatal("did not fire after advance")
	}
}

func TestVirtualTimerOrderIsDeadlineThenSeq(t *testing.T) {
	v := NewVirtual(epoch)
	var order []int
	v.AfterFunc(2*time.Second, func() { order = append(order, 2) })
	v.AfterFunc(1*time.Second, func() { order = append(order, 1) })
	// Same deadline as the first: creation order breaks the tie.
	v.AfterFunc(2*time.Second, func() { order = append(order, 3) })
	v.Advance(5 * time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestVirtualAfterFuncSchedulingMore(t *testing.T) {
	v := NewVirtual(epoch)
	var fired []time.Duration
	v.AfterFunc(time.Second, func() {
		fired = append(fired, v.Since(epoch))
		// A callback scheduling inside the advance window fires in
		// the same pass.
		v.AfterFunc(time.Second, func() {
			fired = append(fired, v.Since(epoch))
		})
	})
	v.Advance(3 * time.Second)
	if len(fired) != 2 || fired[0] != time.Second || fired[1] != 2*time.Second {
		t.Fatalf("fired = %v", fired)
	}
	if !v.Now().Equal(epoch.Add(3 * time.Second)) {
		t.Fatalf("Now = %v", v.Now())
	}
}

func TestVirtualTimerStop(t *testing.T) {
	v := NewVirtual(epoch)
	tm := v.NewTimer(time.Second)
	if !tm.Stop() {
		t.Fatal("Stop on pending timer must report true")
	}
	if tm.Stop() {
		t.Fatal("second Stop must report false")
	}
	v.Advance(2 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("stopped timer fired")
	default:
	}
	// Zero-duration timer fires immediately.
	tm0 := v.NewTimer(0)
	select {
	case <-tm0.C():
	default:
		t.Fatal("zero timer must be ready")
	}
}

func TestVirtualTickerTicksAndStops(t *testing.T) {
	v := NewVirtual(epoch)
	tk := v.NewTicker(time.Second)
	v.Advance(time.Second)
	select {
	case got := <-tk.C():
		if !got.Equal(epoch.Add(time.Second)) {
			t.Fatalf("tick at %v", got)
		}
	default:
		t.Fatal("no tick")
	}
	// Two periods with no receive coalesce to one pending tick,
	// matching time.Ticker's drop-don't-queue behavior.
	v.Advance(2 * time.Second)
	<-tk.C()
	select {
	case <-tk.C():
		t.Fatal("ticks queued beyond channel buffer")
	default:
	}
	tk.Stop()
	v.Advance(10 * time.Second)
	select {
	case <-tk.C():
		t.Fatal("stopped ticker ticked")
	default:
	}
}

func TestVirtualSleepWakesOnAdvance(t *testing.T) {
	v := NewVirtual(epoch)
	done := make(chan time.Time, 1)
	go func() {
		v.Sleep(5 * time.Second)
		done <- v.Now()
	}()
	v.AwaitParked(1)
	v.Advance(5 * time.Second)
	select {
	case got := <-done:
		if !got.Equal(epoch.Add(5 * time.Second)) {
			t.Fatalf("woke at %v", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sleeper never woke")
	}
}

func TestVirtualAutoAdvanceAllActorsParked(t *testing.T) {
	// Two registered actors sleeping in lockstep: the clock advances
	// itself each time the second one parks, with no external driver.
	v := NewVirtual(epoch)
	const rounds = 10
	var wg sync.WaitGroup
	var ticks atomic.Int64
	for i := 0; i < 2; i++ {
		wg.Add(1)
		v.Register()
		go func() {
			defer wg.Done()
			defer v.Unregister()
			for r := 0; r < rounds; r++ {
				v.Sleep(time.Second)
				ticks.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := ticks.Load(); got != 2*rounds {
		t.Fatalf("ticks = %d, want %d", got, 2*rounds)
	}
	if got := v.Now(); !got.Equal(epoch.Add(rounds * time.Second)) {
		t.Fatalf("Now = %v, want %v", got, epoch.Add(rounds*time.Second))
	}
}

func TestVirtualNextFire(t *testing.T) {
	v := NewVirtual(epoch)
	if _, ok := v.NextFire(); ok {
		t.Fatal("empty clock reports a pending timer")
	}
	v.After(7 * time.Second)
	v.After(3 * time.Second)
	when, ok := v.NextFire()
	if !ok || !when.Equal(epoch.Add(3*time.Second)) {
		t.Fatalf("NextFire = %v, %v", when, ok)
	}
}

func TestVirtualDeterministicFireSequence(t *testing.T) {
	// Same program ⇒ identical fire sequence, run twice.
	run := func() []time.Duration {
		v := NewVirtual(epoch)
		var seq []time.Duration
		for i := 1; i <= 5; i++ {
			d := time.Duration(i%3+1) * time.Second
			v.AfterFunc(d, func() { seq = append(seq, v.Since(epoch)) })
		}
		v.Advance(10 * time.Second)
		return seq
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 5 {
		t.Fatalf("lens: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
