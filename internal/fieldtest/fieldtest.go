// Package fieldtest reproduces SOR's §V field experiments end to end: it
// stands up a real sensing server over HTTP, launches a fleet of simulated
// phones at each target place, has each phone scan the place's 2D barcode,
// participate, receive a greedy sensing schedule with a Lua script,
// execute it against the simulated world, and upload binary sensed data;
// the server's Data Processor then produces the Fig. 6 / Fig. 10 feature
// data and the Personalizable Ranker reproduces Tables I and II.
package fieldtest

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"sor/internal/barcode"
	"sor/internal/device"
	"sor/internal/frontend"
	"sor/internal/ranking"
	"sor/internal/server"
	"sor/internal/store"
	"sor/internal/transport"
	"sor/internal/wire"
	"sor/internal/world"
)

// TrailScript is the Lua data-acquisition procedure for hiking trails (the
// §V-A features: temperature, humidity, roughness, curvature, altitude
// change). The script mirrors the Fig. 4 style: ask each sensor for a
// burst of readings and sanity-check the result.
const TrailScript = `
	-- hiking-trail sensing procedure
	local temps = get_temperature_readings(4, 5000)
	local hums  = get_humidity_readings(4, 5000)
	local accel = get_accel_readings(50, 5000)
	local alts  = get_altitude_readings(4, 5000)
	local trace = get_location(8)
	assert(#temps == 4, "temperature burst incomplete")
	assert(#accel == 50, "accelerometer burst incomplete")
	local sum = 0
	for _, v in ipairs(temps) do sum = sum + v end
	return sum / #temps
`

// CoffeeScript is the §V-B coffee-shop procedure (temperature, brightness,
// background noise, WiFi signal strength).
const CoffeeScript = `
	-- coffee-shop sensing procedure
	local temps = get_temperature_readings(4, 5000)
	local light = get_light_readings(4, 5000)
	local noise = get_noise_readings(64, 2000)
	local wifi  = get_wifi_rssi(4, 1000)
	assert(#noise == 64, "microphone burst incomplete")
	local sum = 0
	for _, v in ipairs(noise) do sum = sum + v end
	return sum / #noise
`

// Config parameterizes a field test run.
type Config struct {
	// Category is world.CategoryTrail or world.CategoryCoffee.
	Category string
	// PhonesPerPlace is 7 for trails and 12 for coffee shops in the paper.
	PhonesPerPlace int
	// Budget is each user's NBk for the 3-hour period.
	Budget int
	// Seed makes the run reproducible.
	Seed int64
	// BluetoothFailureRate injects Sensordrone flakiness.
	BluetoothFailureRate float64
	// FaultyPhones makes the first N phones of each place report grossly
	// miscalibrated Sensordrone readings (+FaultBias on temperature,
	// humidity and light).
	FaultyPhones int
	// FaultBias is the miscalibration magnitude (default 40 when
	// FaultyPhones > 0).
	FaultBias float64
	// RobustExtraction enables the server's MAD outlier rejection.
	RobustExtraction bool
}

// Result carries everything the §V experiments report.
type Result struct {
	Category string
	// Features: place -> feature -> value (the Fig. 6 / Fig. 10 data).
	Features map[string]map[string]float64
	// Rankings: profile name -> places best-first (Tables I / II).
	Rankings map[string][]string
	// Phones, Uploads and Measurements summarize the run.
	Phones       int
	Uploads      int
	Measurements int
}

// clock is a mutex-guarded virtual time source shared with the server.
type clock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *clock) Set(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = t
}

// placeSpec describes one target place of a category run.
type placeSpec struct {
	appID string
	name  string
}

// Run executes the field test and returns the reproduced figures/tables.
func Run(cfg Config) (*Result, error) {
	if cfg.Category != world.CategoryTrail && cfg.Category != world.CategoryCoffee {
		return nil, fmt.Errorf("fieldtest: unknown category %q", cfg.Category)
	}
	if cfg.PhonesPerPlace <= 0 || cfg.Budget <= 0 {
		return nil, errors.New("fieldtest: need positive phone count and budget")
	}

	w, err := world.Canonical()
	if err != nil {
		return nil, err
	}
	// The paper's windows: Nov 17 2013 for trails, Nov 15 for coffee,
	// both 11:00-14:00.
	day := 15
	placeNames := []string{world.TimHortons, world.BNCafe, world.Starbucks}
	script := CoffeeScript
	if cfg.Category == world.CategoryTrail {
		day = 17
		placeNames = []string{world.GreenLakeTrail, world.LongTrail, world.CliffTrail}
		script = TrailScript
	}
	start := time.Date(2013, time.November, day, 11, 0, 0, 0, time.UTC)
	end := start.Add(3 * time.Hour)

	vc := &clock{now: start}
	srv, err := server.New(server.Config{
		DB:               store.New(),
		Now:              vc.Now,
		Catalog:          server.DefaultCatalog(),
		RobustExtraction: cfg.RobustExtraction,
	})
	if err != nil {
		return nil, err
	}
	handler, err := transport.NewHTTPHandler(srv.Handler())
	if err != nil {
		return nil, err
	}
	httpSrv := httptest.NewServer(handler)
	defer httpSrv.Close()

	// Register one application (and print^Wissue one barcode) per place.
	var specs []placeSpec
	codes := make(map[string]*barcode.Matrix)
	for i, name := range placeNames {
		place, err := w.Place(name)
		if err != nil {
			return nil, err
		}
		appID := fmt.Sprintf("%s-%d", cfg.Category, i+1)
		if err := srv.CreateApp(store.Application{
			ID:        appID,
			Creator:   "field-test",
			Category:  cfg.Category,
			Place:     name,
			Lat:       place.Loc.Lat,
			Lon:       place.Loc.Lon,
			RadiusM:   place.RadiusM,
			Script:    script,
			PeriodSec: int64(end.Sub(start) / time.Second),
		}); err != nil {
			return nil, err
		}
		code, err := barcode.Encode(barcode.Payload{
			AppID: appID, Place: name, Server: httpSrv.URL,
		})
		if err != nil {
			return nil, err
		}
		specs = append(specs, placeSpec{appID: appID, name: name})
		codes[appID] = code
	}

	res := &Result{
		Category: cfg.Category,
		Features: make(map[string]map[string]float64),
		Rankings: make(map[string][]string),
	}
	ctx := context.Background()

	for pi, spec := range specs {
		place, err := w.Place(spec.name)
		if err != nil {
			return nil, err
		}
		// Scanning the barcode yields the app id and server address —
		// exactly what a phone needs to participate.
		payload, err := barcode.Decode(codes[spec.appID])
		if err != nil {
			return nil, fmt.Errorf("fieldtest: scanning barcode at %s: %w", spec.name, err)
		}
		client, err := transport.NewClient(payload.Server)
		if err != nil {
			return nil, err
		}

		// Launch the fleet: staggered arrivals in the first minutes.
		type runner struct {
			fe     *frontend.Frontend
			userID string
		}
		var fleet []runner
		faultBias := cfg.FaultBias
		if cfg.FaultyPhones > 0 && faultBias == 0 {
			faultBias = 40
		}
		for i := 0; i < cfg.PhonesPerPlace; i++ {
			arrive := start.Add(time.Duration(i) * 30 * time.Second)
			bias := 0.0
			if i < cfg.FaultyPhones {
				bias = faultBias
			}
			phone, err := device.New(device.Config{
				ID:                   fmt.Sprintf("phone-%d-%d", pi, i),
				Token:                fmt.Sprintf("token-%d-%d", pi, i),
				Traj:                 device.Trajectory{Place: place, Enter: arrive, Leave: end},
				Seed:                 cfg.Seed + int64(pi*1000+i),
				BluetoothFailureRate: cfg.BluetoothFailureRate,
				FaultBias:            bias,
			})
			if err != nil {
				return nil, err
			}
			fe, err := frontend.New(phone, client)
			if err != nil {
				return nil, err
			}
			userID := fmt.Sprintf("user-%d-%d", pi, i)
			vc.Set(arrive)
			phone.SetTime(arrive)
			if _, err := fe.Participate(ctx, userID, payload.AppID, cfg.Budget, end.Sub(arrive)); err != nil {
				return nil, fmt.Errorf("fieldtest: %s participating at %s: %w", userID, spec.name, err)
			}
			fleet = append(fleet, runner{fe: fe, userID: userID})
		}

		// All joins done; every phone pings home (the GCM rendezvous) to
		// fetch its final re-planned schedule, then executes it.
		var wg sync.WaitGroup
		errCh := make(chan error, len(fleet))
		var mu sync.Mutex
		for _, r := range fleet {
			wg.Add(1)
			go func(r runner) {
				defer wg.Done()
				resp, err := client.Send(ctx, &wire.Ping{Token: r.fe.Phone().Token})
				if err != nil {
					errCh <- err
					return
				}
				ack, ok := resp.(*wire.Ack)
				if !ok || !ack.OK || len(ack.Payload) == 0 {
					errCh <- fmt.Errorf("fieldtest: %s got no schedule on ping", r.userID)
					return
				}
				inner, err := wire.Decode(ack.Payload)
				if err != nil {
					errCh <- err
					return
				}
				sched, ok := inner.(*wire.Schedule)
				if !ok {
					errCh <- fmt.Errorf("fieldtest: ping payload was %s", inner.Type())
					return
				}
				upload, err := r.fe.ExecuteSchedule(ctx, sched)
				if err != nil {
					errCh <- err
					return
				}
				mu.Lock()
				res.Uploads++
				res.Measurements += len(sched.AtUnix)
				mu.Unlock()
				_ = upload
			}(r)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			if err != nil {
				return nil, err
			}
		}
		res.Phones += len(fleet)
	}

	// Fold all uploads into feature rows.
	vc.Set(end)
	srv.Processor().Process()

	matrix, err := srv.FeatureMatrix(cfg.Category)
	if err != nil {
		return nil, err
	}
	for i, placeName := range matrix.Places {
		row := make(map[string]float64, len(matrix.Features))
		for j, f := range matrix.Features {
			row[f.Name] = matrix.Values[i][j]
		}
		res.Features[placeName] = row
	}

	// Personalized rankings through the wire protocol.
	client, err := transport.NewClient(httpSrv.URL)
	if err != nil {
		return nil, err
	}
	for _, prof := range Profiles(cfg.Category) {
		req := &wire.RankRequest{Category: cfg.Category, UserID: prof.Name}
		for feat, pref := range prof.Prefs {
			req.Prefs = append(req.Prefs, wire.PrefEntry{
				Feature: feat,
				Kind:    int(pref.Kind),
				Value:   pref.Value,
				Weight:  pref.Weight,
			})
		}
		sort.Slice(req.Prefs, func(i, j int) bool { return req.Prefs[i].Feature < req.Prefs[j].Feature })
		resp, err := client.Send(ctx, req)
		if err != nil {
			return nil, err
		}
		rr, ok := resp.(*wire.RankResponse)
		if !ok {
			if ack, isAck := resp.(*wire.Ack); isAck {
				return nil, fmt.Errorf("fieldtest: ranking for %s refused: %s", prof.Name, ack.Message)
			}
			return nil, fmt.Errorf("fieldtest: unexpected ranking response %s", resp.Type())
		}
		var order []string
		for _, p := range rr.Ranked {
			order = append(order, p.Place)
		}
		res.Rankings[prof.Name] = order
	}
	return res, nil
}

// Profiles returns the §V user profiles for a category (Figs. 7 and 11,
// reconstructed — see DESIGN.md).
func Profiles(category string) []ranking.Profile {
	if category == world.CategoryTrail {
		return []ranking.Profile{
			{Name: "Alice", Prefs: map[string]ranking.Preference{
				"roughness":       {Kind: ranking.PrefMax, Weight: 5},
				"curvature":       {Kind: ranking.PrefMax, Weight: 5},
				"altitude change": {Kind: ranking.PrefMax, Weight: 5},
				"temperature":     {Kind: ranking.PrefDefault, Weight: 0},
				"humidity":        {Kind: ranking.PrefDefault, Weight: 0},
			}},
			{Name: "Bob", Prefs: map[string]ranking.Preference{
				"temperature":     {Kind: ranking.PrefValue, Value: 73, Weight: 5},
				"humidity":        {Kind: ranking.PrefMin, Weight: 4},
				"roughness":       {Kind: ranking.PrefMin, Weight: 1},
				"curvature":       {Kind: ranking.PrefMin, Weight: 1},
				"altitude change": {Kind: ranking.PrefMin, Weight: 1},
			}},
			{Name: "Chris", Prefs: map[string]ranking.Preference{
				"humidity":        {Kind: ranking.PrefMax, Weight: 5},
				"roughness":       {Kind: ranking.PrefMin, Weight: 2},
				"curvature":       {Kind: ranking.PrefMin, Weight: 2},
				"altitude change": {Kind: ranking.PrefMin, Weight: 2},
				"temperature":     {Kind: ranking.PrefDefault, Weight: 0},
			}},
		}
	}
	return []ranking.Profile{
		{Name: "David", Prefs: map[string]ranking.Preference{
			"temperature": {Kind: ranking.PrefValue, Value: 75, Weight: 5},
			"brightness":  {Kind: ranking.PrefValue, Value: 120, Weight: 4},
			"noise":       {Kind: ranking.PrefDefault, Weight: 0},
			"wifi":        {Kind: ranking.PrefMax, Weight: 1},
		}},
		{Name: "Emma", Prefs: map[string]ranking.Preference{
			"temperature": {Kind: ranking.PrefValue, Value: 71, Weight: 4},
			"noise":       {Kind: ranking.PrefMin, Weight: 4},
			"wifi":        {Kind: ranking.PrefMax, Weight: 5},
			"brightness":  {Kind: ranking.PrefMax, Weight: 2},
		}},
	}
}

// ExpectedRankings returns the paper's Table I / Table II for comparison.
func ExpectedRankings(category string) map[string][]string {
	if category == world.CategoryTrail {
		return map[string][]string{
			"Alice": {world.CliffTrail, world.LongTrail, world.GreenLakeTrail},
			"Bob":   {world.LongTrail, world.CliffTrail, world.GreenLakeTrail},
			"Chris": {world.GreenLakeTrail, world.LongTrail, world.CliffTrail},
		}
	}
	return map[string][]string{
		"David": {world.Starbucks, world.BNCafe, world.TimHortons},
		"Emma":  {world.BNCafe, world.TimHortons, world.Starbucks},
	}
}
