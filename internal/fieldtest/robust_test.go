package fieldtest

import (
	"math"
	"testing"

	"sor/internal/world"
)

// TestRobustExtractionSurvivesFaultyPhones is the data-quality extension
// experiment: 3 of 12 phones per shop carry a Sensordrone miscalibrated by
// +40 units. With plain §IV-A averaging the temperature features drift by
// roughly 40·(3/12) = 10 units — enough to corrupt rankings; with MAD
// outlier rejection the features stay on the calibrated truth and Table II
// still reproduces.
func TestRobustExtractionSurvivesFaultyPhones(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	base := Config{
		Category:       world.CategoryCoffee,
		PhonesPerPlace: 12,
		Budget:         15,
		Seed:           7,
		FaultyPhones:   3,
	}

	plain := base
	plainRes, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	robust := base
	robust.RobustExtraction = true
	robustRes, err := Run(robust)
	if err != nil {
		t.Fatal(err)
	}

	truth := map[string]float64{
		world.TimHortons: 66, world.BNCafe: 71, world.Starbucks: 73,
	}
	for place, want := range truth {
		plainTemp := plainRes.Features[place]["temperature"]
		robustTemp := robustRes.Features[place]["temperature"]
		if math.Abs(plainTemp-want) < 5 {
			t.Fatalf("%s: plain mean %.1f unexpectedly close to %.1f — fault injection vacuous",
				place, plainTemp, want)
		}
		if math.Abs(robustTemp-want) > 1.5 {
			t.Errorf("%s: robust temperature %.1f, want ~%.1f", place, robustTemp, want)
		}
	}
	// Rankings still reproduce Table II under robust extraction.
	for prof, want := range ExpectedRankings(world.CategoryCoffee) {
		got := robustRes.Rankings[prof]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s robust ranking = %v, want %v", prof, got, want)
			}
		}
	}
}
