package fieldtest

import (
	"math"
	"testing"

	"sor/internal/world"
)

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Category: "nope", PhonesPerPlace: 1, Budget: 1}); err == nil {
		t.Fatal("unknown category must error")
	}
	if _, err := Run(Config{Category: world.CategoryTrail, Budget: 1}); err == nil {
		t.Fatal("zero phones must error")
	}
	if _, err := Run(Config{Category: world.CategoryTrail, PhonesPerPlace: 1}); err == nil {
		t.Fatal("zero budget must error")
	}
}

// TestTrailFieldTestReproducesPaper runs the §V-A experiment end to end:
// Fig. 6 feature data within tolerance of the calibrated ground truth and
// Table I rankings exactly.
func TestTrailFieldTestReproducesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	res, err := Run(Config{
		Category:       world.CategoryTrail,
		PhonesPerPlace: 7, // the paper used 7 phones per trail
		Budget:         20,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Phones != 21 || res.Uploads != 21 {
		t.Fatalf("phones=%d uploads=%d", res.Phones, res.Uploads)
	}
	// Fig. 6 checks: value recovered through the full pipeline vs truth.
	truth := map[string]map[string]float64{
		world.GreenLakeTrail: {"temperature": 46, "humidity": 68, "roughness": 0.5, "curvature": 25, "altitude change": 5},
		world.LongTrail:      {"temperature": 50, "humidity": 55, "roughness": 0.9, "curvature": 45, "altitude change": 15},
		world.CliffTrail:     {"temperature": 49, "humidity": 50, "roughness": 1.4, "curvature": 70, "altitude change": 28},
	}
	for place, feats := range truth {
		got, ok := res.Features[place]
		if !ok {
			t.Fatalf("no features for %s", place)
		}
		for feat, want := range feats {
			tol := math.Max(math.Abs(want)*0.2, 2.5)
			if math.Abs(got[feat]-want) > tol {
				t.Errorf("%s %s = %.3g, want ~%.3g", place, feat, got[feat], want)
			}
		}
	}
	// Table I.
	for prof, want := range ExpectedRankings(world.CategoryTrail) {
		got := res.Rankings[prof]
		if len(got) != len(want) {
			t.Fatalf("%s ranking = %v", prof, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s ranking = %v, want %v (Table I)", prof, got, want)
			}
		}
	}
}

// TestCoffeeFieldTestReproducesPaper runs §V-B: Fig. 10 + Table II.
func TestCoffeeFieldTestReproducesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	res, err := Run(Config{
		Category:             world.CategoryCoffee,
		PhonesPerPlace:       12, // the paper used 12 phones per shop
		Budget:               20,
		Seed:                 2,
		BluetoothFailureRate: 0.1, // a little Sensordrone flakiness
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Phones != 36 {
		t.Fatalf("phones = %d", res.Phones)
	}
	truth := map[string]map[string]float64{
		world.TimHortons: {"temperature": 66, "brightness": 1000, "noise": 0.05, "wifi": -62},
		world.BNCafe:     {"temperature": 71, "brightness": 400, "noise": 0.08, "wifi": -50},
		world.Starbucks:  {"temperature": 73, "brightness": 150, "noise": 0.18, "wifi": -72},
	}
	for place, feats := range truth {
		got, ok := res.Features[place]
		if !ok {
			t.Fatalf("no features for %s", place)
		}
		for feat, want := range feats {
			tol := math.Max(math.Abs(want)*0.1, 0.02)
			if math.Abs(got[feat]-want) > tol {
				t.Errorf("%s %s = %.4g, want ~%.4g", place, feat, got[feat], want)
			}
		}
	}
	for prof, want := range ExpectedRankings(world.CategoryCoffee) {
		got := res.Rankings[prof]
		for i := range want {
			if i >= len(got) || got[i] != want[i] {
				t.Fatalf("%s ranking = %v, want %v (Table II)", prof, got, want)
			}
		}
	}
}

func TestProfilesCoverCatalog(t *testing.T) {
	for _, cat := range []string{world.CategoryTrail, world.CategoryCoffee} {
		profs := Profiles(cat)
		if len(profs) == 0 {
			t.Fatalf("no profiles for %s", cat)
		}
		for _, p := range profs {
			if p.Name == "" || len(p.Prefs) == 0 {
				t.Fatalf("degenerate profile %+v", p)
			}
			for feat, pref := range p.Prefs {
				if err := pref.Validate(); err != nil {
					t.Fatalf("%s/%s: %v", p.Name, feat, err)
				}
			}
		}
	}
	if len(ExpectedRankings(world.CategoryTrail)) != 3 {
		t.Fatal("Table I has 3 rows")
	}
	if len(ExpectedRankings(world.CategoryCoffee)) != 2 {
		t.Fatal("Table II has 2 rows")
	}
}
