package sim

import (
	"math/rand"
	"testing"
	"time"
)

func TestDrawBurstyParticipantsShape(t *testing.T) {
	start := time.Date(2013, time.November, 15, 11, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(7))
	cfg := BurstConfig{Users: 40, Bursts: 4, Budget: 17}
	parts, err := DrawBurstyParticipants(rng, cfg, start)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 40 {
		t.Fatalf("got %d participants", len(parts))
	}
	end := start.Add(3 * time.Hour)
	ids := make(map[string]bool)
	for _, p := range parts {
		if ids[p.UserID] {
			t.Fatalf("duplicate user %s", p.UserID)
		}
		ids[p.UserID] = true
		if p.Arrive.Before(start) || !p.Arrive.Before(end) {
			t.Fatalf("arrival %v outside period", p.Arrive)
		}
		if !p.Leave.After(p.Arrive) || p.Leave.After(end) {
			t.Fatalf("departure %v invalid for arrival %v", p.Leave, p.Arrive)
		}
		if p.Budget != 17 {
			t.Fatalf("budget = %d", p.Budget)
		}
	}
	// Arrivals must actually cluster: with 4 bursts and 10 s spread, the
	// distinct arrival minutes are far fewer than the user count.
	minutes := make(map[int]bool)
	for _, p := range parts {
		minutes[int(p.Arrive.Sub(start)/time.Minute)] = true
	}
	if len(minutes) > 8 {
		t.Fatalf("arrivals spread over %d minutes; want clustered bursts", len(minutes))
	}
}

func TestDrawBurstyParticipantsValidation(t *testing.T) {
	start := time.Date(2013, time.November, 15, 11, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(1))
	if _, err := DrawBurstyParticipants(rng, BurstConfig{Users: 0, Budget: 1}, start); err == nil {
		t.Fatal("zero users must error")
	}
	if _, err := DrawBurstyParticipants(rng, BurstConfig{Users: 5, Budget: 0}, start); err == nil {
		t.Fatal("zero budget must error")
	}
	// More bursts than users clamps rather than failing.
	parts, err := DrawBurstyParticipants(rng, BurstConfig{Users: 3, Bursts: 10, Budget: 2}, start)
	if err != nil || len(parts) != 3 {
		t.Fatalf("parts=%d err=%v", len(parts), err)
	}
}
