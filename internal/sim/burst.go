package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"sor/internal/schedule"
)

// BurstConfig describes the bursty arrival pattern real deployments see
// (and §V's field test produced): participants do not trickle in uniformly
// but cluster — a bus arrives at the trailhead, a lecture lets out next to
// the coffee shop — and each cluster hits the server within seconds. The
// concurrency suite and load generator use this to drive overlapping
// join/upload/leave traffic instead of the uniform Fig. 14 workload.
type BurstConfig struct {
	// Users is the total number of participants across all bursts.
	Users int
	// Bursts is the number of arrival clusters, spread evenly over the
	// first half of the period so every burst leaves sensing time.
	Bursts int
	// Spread is the arrival jitter within one burst (default 10 s).
	Spread time.Duration
	// Period is the scheduling period (default 3 h).
	Period time.Duration
	// Budget is every user's NBk.
	Budget int
}

// DrawBurstyParticipants draws a bursty workload: Users participants in
// Bursts clusters, arrivals jittered by Spread inside each cluster,
// departures uniform between arrival and the period end.
func DrawBurstyParticipants(rng *rand.Rand, cfg BurstConfig, start time.Time) ([]schedule.Participant, error) {
	if cfg.Users <= 0 || cfg.Budget <= 0 {
		return nil, errors.New("sim: bursty workload needs users > 0 and budget > 0")
	}
	if cfg.Bursts <= 0 {
		cfg.Bursts = 1
	}
	if cfg.Bursts > cfg.Users {
		cfg.Bursts = cfg.Users
	}
	if cfg.Period <= 0 {
		cfg.Period = 3 * time.Hour
	}
	if cfg.Spread <= 0 {
		cfg.Spread = 10 * time.Second
	}
	totalSec := int64(cfg.Period / time.Second)
	spreadSec := int64(cfg.Spread / time.Second)
	if spreadSec <= 0 {
		spreadSec = 1
	}
	parts := make([]schedule.Participant, 0, cfg.Users)
	for i := 0; i < cfg.Users; i++ {
		burst := i % cfg.Bursts
		// Burst anchors sit in the first half of the period so even the
		// last cluster gets a useful sensing window.
		anchorSec := int64(burst) * (totalSec / 2) / int64(cfg.Bursts)
		arriveSec := anchorSec + rng.Int63n(spreadSec)
		if arriveSec >= totalSec {
			arriveSec = totalSec - 1
		}
		leaveSec := arriveSec + rng.Int63n(totalSec-arriveSec) + 1
		if leaveSec > totalSec {
			leaveSec = totalSec
		}
		parts = append(parts, schedule.Participant{
			UserID: fmt.Sprintf("burst-user-%03d", i),
			Arrive: start.Add(time.Duration(arriveSec) * time.Second),
			Leave:  start.Add(time.Duration(leaveSec) * time.Second),
			Budget: cfg.Budget,
		})
	}
	return parts, nil
}
