package sim

import (
	"fmt"
	"sort"
	"time"

	"sor/internal/coverage"
	"sor/internal/schedule"
	"sor/internal/stats"
)

// OnlineOutcome extends Outcome with the event-driven scheduler's result:
// the paper's deployment is inherently online (users appear when they scan
// the barcode), so this experiment quantifies what the online re-planning
// loses against the clairvoyant offline greedy that sees all arrivals in
// advance. Both are measured against the same §V-C workload.
type OnlineOutcome struct {
	// OnlineMean is the event-driven scheduler's average coverage: users
	// join at their arrival times, execute scheduled measurements as
	// simulated time advances, and each join re-plans the future.
	OnlineMean, OnlineStd float64
	// OfflineMean is the clairvoyant greedy on the full instance.
	OfflineMean, OfflineStd float64
	// Replans is the mean number of re-plans per run.
	Replans float64
}

// CompetitiveRatio is online/offline mean coverage.
func (o OnlineOutcome) CompetitiveRatio() float64 {
	if o.OfflineMean == 0 {
		return 0
	}
	return o.OnlineMean / o.OfflineMean
}

// RunOnline simulates the event-driven scheduler against the offline
// greedy on identical workloads.
func RunOnline(cfg Config) (OnlineOutcome, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return OnlineOutcome{}, err
	}
	start := time.Date(2013, time.November, 15, 11, 0, 0, 0, time.UTC)
	n := int(cfg.Period / cfg.Step)
	kernel := coverage.GaussianKernel{Sigma: cfg.Sigma}
	rng := stats.NewRand(cfg.Seed)

	var online, offline, replans stats.Welford
	for run := 0; run < cfg.Runs; run++ {
		runRng := stats.Split(rng)
		parts := drawParticipants(runRng, cfg, start)

		tl, err := coverage.NewTimeline(start, cfg.Step, n)
		if err != nil {
			return OnlineOutcome{}, err
		}
		sched, err := schedule.NewScheduler(tl, kernel, schedule.WithLazyGreedy())
		if err != nil {
			return OnlineOutcome{}, err
		}

		// Offline: sees everything.
		off, err := sched.Greedy(parts, nil)
		if err != nil {
			return OnlineOutcome{}, err
		}
		offline.Add(off.AverageCoverage)

		// Online: replay arrivals chronologically. Between consecutive
		// joins, every already-present user executes the measurements the
		// current plan put before the next event.
		onCov, nReplans, err := replayOnline(tl, kernel, sched, parts)
		if err != nil {
			return OnlineOutcome{}, fmt.Errorf("sim: online run %d: %w", run, err)
		}
		online.Add(onCov)
		replans.Add(float64(nReplans))
	}
	return OnlineOutcome{
		OnlineMean: online.Mean(), OnlineStd: online.StdDev(),
		OfflineMean: offline.Mean(), OfflineStd: offline.StdDev(),
		Replans: replans.Mean(),
	}, nil
}

// replayOnline drives schedule.Online through the arrival sequence and
// returns the realized average coverage.
func replayOnline(tl *coverage.Timeline, kernel coverage.Kernel, sched *schedule.Scheduler, parts []schedule.Participant) (float64, int, error) {
	on, err := schedule.NewOnline(sched)
	if err != nil {
		return 0, 0, err
	}
	ordered := make([]schedule.Participant, len(parts))
	copy(ordered, parts)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Arrive.Before(ordered[j].Arrive) })

	// executeUntil runs all currently-planned measurements strictly
	// before the horizon.
	executeUntil := func(horizon time.Time) error {
		plan := on.Plan()
		if plan == nil {
			return nil
		}
		for user, a := range plan.Assignments {
			for _, instant := range a.Instants {
				if tl.Time(instant).Before(horizon) {
					if err := on.RecordExecution(user, instant); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}

	for _, p := range ordered {
		if err := executeUntil(p.Arrive); err != nil {
			return 0, 0, err
		}
		if _, err := on.Join(p.Arrive, p); err != nil {
			return 0, 0, err
		}
	}
	// Execute the tail of the period.
	if err := executeUntil(tl.End().Add(tl.Step())); err != nil {
		return 0, 0, err
	}

	// Realized coverage = coverage of everything actually executed.
	acc, err := coverage.NewAccumulator(tl, kernel)
	if err != nil {
		return 0, 0, err
	}
	for _, instant := range on.ExecutedInstants() {
		acc.Add(instant)
	}
	return acc.Average(), on.Replans(), nil
}
