package sim

import (
	"math"
	"testing"
	"time"
)

// fastConfig shrinks the scenario so unit tests stay quick while keeping
// the paper's proportions (period : step : sigma).
func fastConfig() Config {
	return Config{
		Period: 30 * time.Minute,
		Step:   10 * time.Second,
		Sigma:  10,
		Runs:   3,
		Seed:   42,
		Lazy:   true,
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Budget: 1}); err == nil {
		t.Fatal("zero users must error")
	}
	if _, err := Run(Config{Users: 1}); err == nil {
		t.Fatal("zero budget must error")
	}
}

func TestGreedyBeatsBaselineSubstantially(t *testing.T) {
	cfg := fastConfig()
	cfg.Users = 10
	cfg.Budget = 8
	o, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if o.GreedyMean <= o.BaselineMean {
		t.Fatalf("greedy %v <= baseline %v", o.GreedyMean, o.BaselineMean)
	}
	if o.Improvement() < 0.15 {
		t.Fatalf("improvement = %.1f%%, expected a clear gap", o.Improvement()*100)
	}
	if o.GreedyMean <= 0 || o.GreedyMean > 1 || o.BaselineMean <= 0 || o.BaselineMean > 1 {
		t.Fatalf("coverage out of range: %+v", o)
	}
}

func TestGreedyLowerVarianceAtPaperScale(t *testing.T) {
	// §V-C: "the variance of the coverage probability given by our
	// scheduling algorithm is always less than that given by the
	// baseline". In this reproduction the claim holds at the paper's
	// operating point (40 users, budget 17) but not at very small user
	// counts, where greedy coverage tracks the random window sizes more
	// closely — see EXPERIMENTS.md.
	if testing.Short() {
		t.Skip("full-scale scenario")
	}
	o, err := Run(Config{Users: 40, Budget: 17, Runs: 10, Seed: 3, Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	if o.GreedyStd > o.BaselineStd {
		t.Fatalf("greedy std %v > baseline std %v", o.GreedyStd, o.BaselineStd)
	}
}

func TestCoverageMonotoneInUsers(t *testing.T) {
	cfg := fastConfig()
	points, err := SweepUsers([]int{4, 10, 20}, 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].GreedyMean <= points[i-1].GreedyMean {
			t.Fatalf("greedy coverage not increasing in users: %+v", points)
		}
	}
}

func TestCoverageMonotoneInBudget(t *testing.T) {
	cfg := fastConfig()
	points, err := SweepBudget([]int{2, 6, 12}, 10, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].GreedyMean <= points[i-1].GreedyMean {
			t.Fatalf("greedy coverage not increasing in budget: %+v", points)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	cfg := fastConfig()
	cfg.Users = 8
	cfg.Budget = 5
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed, different outcomes: %+v vs %+v", a, b)
	}
	cfg.Seed++
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different seed produced identical outcome (suspicious)")
	}
}

func TestLazyMatchesEager(t *testing.T) {
	cfg := fastConfig()
	cfg.Users = 8
	cfg.Budget = 5
	cfg.Lazy = false
	eager, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Lazy = true
	lazy, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eager.GreedyMean-lazy.GreedyMean) > 1e-6 {
		t.Fatalf("eager %v vs lazy %v", eager.GreedyMean, lazy.GreedyMean)
	}
}

func TestImprovementZeroBaseline(t *testing.T) {
	if (Outcome{}).Improvement() != 0 {
		t.Fatal("zero baseline should give zero improvement")
	}
}

func TestPaperAxes(t *testing.T) {
	users := Fig14aUsers()
	if users[0] != 10 || users[len(users)-1] != 55 {
		t.Fatalf("Fig14a axis = %v", users)
	}
	budgets := Fig14bBudgets()
	if budgets[0] != 15 || budgets[len(budgets)-1] != 25 {
		t.Fatalf("Fig14b axis = %v", budgets)
	}
}

// TestPaperScaleScenario runs one full-size instance (1080 instants, 40
// users, budget 17) and checks the paper's qualitative claims: greedy near
// or above 80%, baseline far below, improvement large.
func TestPaperScaleScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale scenario")
	}
	o, err := Run(Config{Users: 40, Budget: 17, Runs: 3, Seed: 7, Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	if o.GreedyMean < 0.7 {
		t.Fatalf("greedy coverage %v, paper shows ~0.8 at 40 users / budget 17", o.GreedyMean)
	}
	if o.BaselineMean > o.GreedyMean-0.15 {
		t.Fatalf("baseline %v too close to greedy %v", o.BaselineMean, o.GreedyMean)
	}
	if o.Improvement() < 0.3 {
		t.Fatalf("improvement %.0f%%, paper reports ~65%% on average", o.Improvement()*100)
	}
}
