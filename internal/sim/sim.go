// Package sim reproduces the paper's §V-C scheduling simulation (Fig. 14):
// a 3-hour scheduling period divided into 1080 instants (10 s step), a
// Gaussian coverage kernel with σ = 10 s, mobile users whose arrival times
// are uniform in [0, 10800 s] and departure times uniform in [arrival,
// 10800 s], and two schedulers — the greedy coverage maximizer and the
// baseline that senses every 10 s from arrival. The metric is the average
// coverage probability (total coverage / number of instants), averaged
// over multiple runs.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"sor/internal/coverage"
	"sor/internal/schedule"
	"sor/internal/stats"
)

// Config parameterizes one simulation scenario.
type Config struct {
	// Users is the number of participating mobile users.
	Users int
	// Budget is every user's NBk.
	Budget int
	// Runs averages the metric over this many random instances (the
	// paper uses 10).
	Runs int
	// Seed drives all randomness.
	Seed int64
	// Period is the scheduling period (default 3 h).
	Period time.Duration
	// Step is the instant spacing (default 10 s).
	Step time.Duration
	// Sigma is the Gaussian kernel parameter (default 10 s).
	Sigma float64
	// BaselineInterval is the baseline's sensing period (default 10 s).
	BaselineInterval time.Duration
	// Lazy selects the lazy-greedy variant (identical results, faster).
	Lazy bool
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Period <= 0 {
		c.Period = 3 * time.Hour
	}
	if c.Step <= 0 {
		c.Step = 10 * time.Second
	}
	if c.Sigma <= 0 {
		c.Sigma = 10
	}
	if c.BaselineInterval <= 0 {
		c.BaselineInterval = 10 * time.Second
	}
	if c.Runs <= 0 {
		c.Runs = 10
	}
	return c
}

// Validate checks the scenario.
func (c Config) Validate() error {
	if c.Users <= 0 {
		return errors.New("sim: need users > 0")
	}
	if c.Budget <= 0 {
		return errors.New("sim: need budget > 0")
	}
	return nil
}

// Outcome is the metric pair for one scenario.
type Outcome struct {
	// GreedyMean/BaselineMean are average coverage probabilities in
	// [0, 1], averaged over runs; the Std fields are across-run standard
	// deviations (the paper highlights greedy's lower variance).
	GreedyMean, GreedyStd     float64
	BaselineMean, BaselineStd float64
}

// Improvement is (greedy − baseline)/baseline.
func (o Outcome) Improvement() float64 {
	if o.BaselineMean == 0 {
		return 0
	}
	return (o.GreedyMean - o.BaselineMean) / o.BaselineMean
}

// Run simulates one scenario.
func Run(cfg Config) (Outcome, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Outcome{}, err
	}
	start := time.Date(2013, time.November, 15, 11, 0, 0, 0, time.UTC)
	n := int(cfg.Period / cfg.Step)
	tl, err := coverage.NewTimeline(start, cfg.Step, n)
	if err != nil {
		return Outcome{}, err
	}
	var opts []schedule.Option
	if cfg.Lazy {
		opts = append(opts, schedule.WithLazyGreedy())
	}
	sched, err := schedule.NewScheduler(tl, coverage.GaussianKernel{Sigma: cfg.Sigma}, opts...)
	if err != nil {
		return Outcome{}, err
	}
	rng := stats.NewRand(cfg.Seed)
	var greedy, baseline stats.Welford
	for run := 0; run < cfg.Runs; run++ {
		runRng := stats.Split(rng)
		parts := drawParticipants(runRng, cfg, start)
		g, err := sched.Greedy(parts, nil)
		if err != nil {
			return Outcome{}, fmt.Errorf("sim: greedy run %d: %w", run, err)
		}
		if err := sched.Verify(parts, g); err != nil {
			return Outcome{}, fmt.Errorf("sim: greedy plan invalid in run %d: %w", run, err)
		}
		b, err := sched.Baseline(parts, cfg.BaselineInterval)
		if err != nil {
			return Outcome{}, fmt.Errorf("sim: baseline run %d: %w", run, err)
		}
		greedy.Add(g.AverageCoverage)
		baseline.Add(b.AverageCoverage)
	}
	return Outcome{
		GreedyMean:   greedy.Mean(),
		GreedyStd:    greedy.StdDev(),
		BaselineMean: baseline.Mean(),
		BaselineStd:  baseline.StdDev(),
	}, nil
}

// drawParticipants draws the §V-C workload: arrivals uniform over the
// period, departures uniform between arrival and the period end.
func drawParticipants(rng *rand.Rand, cfg Config, start time.Time) []schedule.Participant {
	totalSec := int64(cfg.Period / time.Second)
	parts := make([]schedule.Participant, 0, cfg.Users)
	for i := 0; i < cfg.Users; i++ {
		arriveSec := rng.Int63n(totalSec)
		leaveSec := arriveSec + rng.Int63n(totalSec-arriveSec+1)
		parts = append(parts, schedule.Participant{
			UserID: fmt.Sprintf("user-%03d", i),
			Arrive: start.Add(time.Duration(arriveSec) * time.Second),
			Leave:  start.Add(time.Duration(leaveSec) * time.Second),
			Budget: cfg.Budget,
		})
	}
	return parts
}

// SeriesPoint is one x-position of a sweep.
type SeriesPoint struct {
	X int
	Outcome
}

// SweepUsers reproduces Fig. 14(a): vary the number of users, fixed
// budget.
func SweepUsers(users []int, budget int, base Config) ([]SeriesPoint, error) {
	out := make([]SeriesPoint, 0, len(users))
	for i, u := range users {
		cfg := base
		cfg.Users = u
		cfg.Budget = budget
		cfg.Seed = base.Seed + int64(i)*7919
		o, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, SeriesPoint{X: u, Outcome: o})
	}
	return out, nil
}

// SweepBudget reproduces Fig. 14(b): vary the budget, fixed user count.
func SweepBudget(budgets []int, users int, base Config) ([]SeriesPoint, error) {
	out := make([]SeriesPoint, 0, len(budgets))
	for i, b := range budgets {
		cfg := base
		cfg.Users = users
		cfg.Budget = b
		cfg.Seed = base.Seed + int64(i)*104729
		o, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, SeriesPoint{X: b, Outcome: o})
	}
	return out, nil
}

// Fig14aUsers is the paper's x-axis for Fig. 14(a) (§V-C text also cites
// the 55-user point where greedy nears 100% coverage).
func Fig14aUsers() []int { return []int{10, 15, 20, 25, 30, 35, 40, 45, 50, 55} }

// Fig14bBudgets is the paper's x-axis for Fig. 14(b).
func Fig14bBudgets() []int { return []int{15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25} }
