package sim

import (
	"testing"
	"time"
)

func TestRunOnlineValidation(t *testing.T) {
	if _, err := RunOnline(Config{}); err == nil {
		t.Fatal("invalid config must error")
	}
}

func TestOnlineTracksOfflineClosely(t *testing.T) {
	cfg := fastConfig()
	cfg.Users = 10
	cfg.Budget = 6
	o, err := RunOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if o.OnlineMean <= 0 || o.OfflineMean <= 0 {
		t.Fatalf("outcome = %+v", o)
	}
	// The online scheduler cannot beat the clairvoyant offline greedy by
	// much (tiny wins are possible since greedy itself is approximate),
	// and empirically stays close to it.
	ratio := o.CompetitiveRatio()
	if ratio < 0.6 || ratio > 1.1 {
		t.Fatalf("competitive ratio = %v (online %v, offline %v)",
			ratio, o.OnlineMean, o.OfflineMean)
	}
	// One re-plan per arrival.
	if o.Replans < float64(cfg.Users) {
		t.Fatalf("replans = %v, want >= %d (one per join)", o.Replans, cfg.Users)
	}
}

func TestOnlineDeterministicForSeed(t *testing.T) {
	cfg := fastConfig()
	cfg.Users = 6
	cfg.Budget = 4
	a, err := RunOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed, different outcomes: %+v vs %+v", a, b)
	}
}

func TestOnlineRespectsAllBudgets(t *testing.T) {
	// Indirectly: replayOnline calls RecordExecution, which errors on any
	// budget overflow, so a clean run is itself the assertion; use a
	// scenario with many overlapping users to stress re-planning.
	cfg := Config{
		Users: 15, Budget: 5, Runs: 2, Seed: 9,
		Period: 40 * time.Minute, Lazy: true,
	}
	if _, err := RunOnline(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCompetitiveRatioZeroOffline(t *testing.T) {
	if (OnlineOutcome{}).CompetitiveRatio() != 0 {
		t.Fatal("zero offline should give zero ratio")
	}
}

// TestOnlinePaperScale runs the §V-C operating point through the online
// replay (skipped with -short).
func TestOnlinePaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale scenario")
	}
	o, err := RunOnline(Config{Users: 40, Budget: 17, Runs: 3, Seed: 11, Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	if o.CompetitiveRatio() < 0.75 {
		t.Fatalf("online lost too much to offline: %+v", o)
	}
}
