package viz

import (
	"math"
	"strings"
	"testing"
)

func TestBarChartValidate(t *testing.T) {
	ok := BarChart{Categories: []string{"a"}, Values: []float64{1}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []BarChart{
		{},
		{Categories: []string{"a"}, Values: []float64{1, 2}},
		{Categories: []string{"a"}, Values: []float64{math.NaN()}},
		{Categories: []string{"a"}, Values: []float64{math.Inf(1)}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad case %d should fail", i)
		}
	}
}

func TestBarChartASCII(t *testing.T) {
	c := BarChart{
		Title:      "Temperature",
		Unit:       "°F",
		Categories: []string{"Tim Hortons", "B&N Cafe", "Starbucks"},
		Values:     []float64{66, 71, 73},
	}
	out, err := c.ASCII(40)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Temperature (°F)") {
		t.Fatalf("missing title: %q", out)
	}
	for _, name := range c.Categories {
		if !strings.Contains(out, name) {
			t.Fatalf("missing category %q", name)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	// The largest value gets the longest bar.
	bars := make(map[string]int)
	for _, l := range lines[1:] {
		bars[strings.Fields(l)[0]] = strings.Count(l, "█")
	}
	if bars["Starbucks"] <= bars["Tim"] {
		t.Fatalf("bar lengths wrong: %v", bars)
	}
	if _, err := (BarChart{}).ASCII(40); err == nil {
		t.Fatal("invalid chart must error")
	}
}

func TestBarChartASCIIZeroValues(t *testing.T) {
	c := BarChart{Categories: []string{"a", "b"}, Values: []float64{0, 0}}
	out, err := c.ASCII(5)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "█") {
		t.Fatal("zero values should draw no bars")
	}
}

func TestBarChartSVG(t *testing.T) {
	c := BarChart{
		Title:      "Humidity",
		Unit:       "%",
		Categories: []string{"Green Lake", "Long", "Cliff"},
		Values:     []float64{68, 55, 50},
	}
	svg, err := c.SVG(400, 300)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
		t.Fatal("not a complete SVG document")
	}
	if strings.Count(svg, "<rect") < 4 { // background + 3 bars
		t.Fatalf("expected 4 rects: %s", svg)
	}
	if !strings.Contains(svg, "Humidity (%)") {
		t.Fatal("missing title")
	}
	if _, err := (BarChart{}).SVG(400, 300); err == nil {
		t.Fatal("invalid chart must error")
	}
}

func TestBarChartSVGEscapesXML(t *testing.T) {
	c := BarChart{
		Title:      `Noise <&">`,
		Categories: []string{"B&N Cafe"},
		Values:     []float64{0.08},
	}
	svg, err := c.SVG(200, 150)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, "B&N ") || strings.Contains(svg, `<&">`) {
		t.Fatal("XML not escaped")
	}
	if !strings.Contains(svg, "B&amp;N") {
		t.Fatal("escaped ampersand missing")
	}
}

func TestBarChartSVGNegativeValues(t *testing.T) {
	c := BarChart{
		Title:      "WiFi",
		Categories: []string{"TH", "BN", "SB"},
		Values:     []float64{-62, -50, -72},
	}
	svg, err := c.SVG(300, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "<rect") {
		t.Fatal("no bars drawn for negative values")
	}
}

func TestLineChartValidate(t *testing.T) {
	ok := LineChart{
		X:      []float64{1, 2, 3},
		Series: []Series{{Label: "greedy", Values: []float64{0.5, 0.7, 0.9}}},
	}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []LineChart{
		{},
		{X: []float64{1}},
		{X: []float64{1, 2}},
		{X: []float64{1, 2}, Series: []Series{{Label: "x", Values: []float64{1}}}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad case %d should fail", i)
		}
	}
}

func TestLineChartSVG(t *testing.T) {
	c := LineChart{
		Title:  "Fig 14a",
		XLabel: "# of mobile users",
		YLabel: "coverage",
		X:      []float64{10, 20, 30, 40, 50},
		Series: []Series{
			{Label: "Greedy", Values: []float64{0.5, 0.7, 0.85, 0.93, 0.97}},
			{Label: "Baseline", Values: []float64{0.2, 0.35, 0.45, 0.52, 0.6}},
		},
	}
	svg, err := c.SVG(500, 300)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(svg, "<polyline") != 2 {
		t.Fatal("expected 2 polylines")
	}
	if !strings.Contains(svg, "Greedy") || !strings.Contains(svg, "Baseline") {
		t.Fatal("missing legend")
	}
	if !strings.Contains(svg, "# of mobile users") {
		t.Fatal("missing x label")
	}
	if _, err := (LineChart{}).SVG(500, 300); err == nil {
		t.Fatal("invalid chart must error")
	}
}

func TestLineChartFlatSeries(t *testing.T) {
	c := LineChart{
		X:      []float64{1, 2},
		Series: []Series{{Label: "flat", Values: []float64{5, 5}}},
	}
	if _, err := c.SVG(200, 100); err != nil {
		t.Fatal(err)
	}
}
