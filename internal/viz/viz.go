// Package viz is SOR's Visualization module (§II-B): it renders feature
// data as terminal bar charts and standalone SVG documents so users "can
// view them easily". Only the standard library is used.
package viz

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Series is one named data series (e.g. one feature across places).
type Series struct {
	Label  string
	Values []float64
}

// BarChart describes a grouped bar chart (one group per category entry).
type BarChart struct {
	Title      string
	Unit       string
	Categories []string // e.g. place names
	Values     []float64
}

// Validate checks shape.
func (c BarChart) Validate() error {
	if len(c.Categories) == 0 {
		return errors.New("viz: chart needs categories")
	}
	if len(c.Values) != len(c.Categories) {
		return fmt.Errorf("viz: %d values for %d categories", len(c.Values), len(c.Categories))
	}
	for _, v := range c.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return errors.New("viz: non-finite value")
		}
	}
	return nil
}

// ASCII renders the chart with unicode block bars, one row per category.
func (c BarChart) ASCII(width int) (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	if width < 10 {
		width = 10
	}
	maxAbs := 0.0
	for _, v := range c.Values {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	labelW := 0
	for _, cat := range c.Categories {
		if len(cat) > labelW {
			labelW = len(cat)
		}
	}
	var sb strings.Builder
	if c.Title != "" {
		sb.WriteString(c.Title)
		if c.Unit != "" {
			sb.WriteString(" (" + c.Unit + ")")
		}
		sb.WriteByte('\n')
	}
	for i, cat := range c.Categories {
		v := c.Values[i]
		n := 0
		if maxAbs > 0 {
			n = int(math.Round(math.Abs(v) / maxAbs * float64(width)))
		}
		fmt.Fprintf(&sb, "%-*s │%s %.3g\n", labelW, cat, strings.Repeat("█", n), v)
	}
	return sb.String(), nil
}

// SVG renders the chart as a standalone SVG document.
func (c BarChart) SVG(width, height int) (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	if width < 100 {
		width = 100
	}
	if height < 80 {
		height = 80
	}
	const margin = 40
	plotW := float64(width - 2*margin)
	plotH := float64(height - 2*margin)
	maxV := 0.0
	minV := 0.0
	for _, v := range c.Values {
		if v > maxV {
			maxV = v
		}
		if v < minV {
			minV = v
		}
	}
	span := maxV - minV
	if span == 0 {
		span = 1
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		width, height, width, height)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	if c.Title != "" {
		title := c.Title
		if c.Unit != "" {
			title += " (" + c.Unit + ")"
		}
		fmt.Fprintf(&sb, `<text x="%d" y="20" font-family="sans-serif" font-size="14">%s</text>`,
			margin, escapeXML(title))
	}
	n := len(c.Values)
	barSlot := plotW / float64(n)
	barW := barSlot * 0.6
	zeroY := float64(margin) + plotH*maxV/span
	for i, v := range c.Values {
		x := float64(margin) + float64(i)*barSlot + (barSlot-barW)/2
		h := math.Abs(v) / span * plotH
		y := zeroY - h
		if v < 0 {
			y = zeroY
		}
		fmt.Fprintf(&sb,
			`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#4477AA"/>`,
			x, y, barW, h)
		fmt.Fprintf(&sb,
			`<text x="%.1f" y="%d" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`,
			x+barW/2, height-margin+15, escapeXML(c.Categories[i]))
		fmt.Fprintf(&sb,
			`<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="middle">%.3g</text>`,
			x+barW/2, y-4, v)
	}
	// Axis.
	fmt.Fprintf(&sb, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`,
		margin, zeroY, width-margin, zeroY)
	sb.WriteString("</svg>")
	return sb.String(), nil
}

// LineChart draws one or more series over a shared x-axis (used for the
// Fig. 14 coverage curves).
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
}

// Validate checks shape.
func (c LineChart) Validate() error {
	if len(c.X) < 2 {
		return errors.New("viz: line chart needs >= 2 x points")
	}
	if len(c.Series) == 0 {
		return errors.New("viz: line chart needs series")
	}
	for _, s := range c.Series {
		if len(s.Values) != len(c.X) {
			return fmt.Errorf("viz: series %q has %d values for %d x points",
				s.Label, len(s.Values), len(c.X))
		}
	}
	return nil
}

// seriesColors cycles for multiple lines.
var seriesColors = []string{"#4477AA", "#EE6677", "#228833", "#CCBB44"}

// SVG renders the line chart.
func (c LineChart) SVG(width, height int) (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	if width < 120 {
		width = 120
	}
	if height < 100 {
		height = 100
	}
	const margin = 45
	plotW := float64(width - 2*margin)
	plotH := float64(height - 2*margin)
	minX, maxX := c.X[0], c.X[0]
	for _, x := range c.X {
		minX = math.Min(minX, x)
		maxX = math.Max(maxX, x)
	}
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, v := range s.Values {
			minY = math.Min(minY, v)
			maxY = math.Max(maxY, v)
		}
	}
	if maxX == minX {
		maxX++
	}
	if maxY == minY {
		maxY++
	}
	px := func(x float64) float64 { return float64(margin) + (x-minX)/(maxX-minX)*plotW }
	py := func(y float64) float64 { return float64(margin) + plotH - (y-minY)/(maxY-minY)*plotH }

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		width, height, width, height)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	if c.Title != "" {
		fmt.Fprintf(&sb, `<text x="%d" y="20" font-family="sans-serif" font-size="14">%s</text>`,
			margin, escapeXML(c.Title))
	}
	// Axes.
	fmt.Fprintf(&sb, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`,
		margin, float64(margin)+plotH, width-margin, float64(margin)+plotH)
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%.1f" stroke="black"/>`,
		margin, margin, margin, float64(margin)+plotH)
	for si, s := range c.Series {
		color := seriesColors[si%len(seriesColors)]
		var pts []string
		for i, x := range c.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(x), py(s.Values[i])))
		}
		fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`,
			strings.Join(pts, " "), color)
		fmt.Fprintf(&sb,
			`<text x="%d" y="%d" font-family="sans-serif" font-size="11" fill="%s">%s</text>`,
			width-margin-80, margin+15*(si+1), color, escapeXML(s.Label))
	}
	fmt.Fprintf(&sb, `<text x="%d" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`,
		width/2, height-8, escapeXML(c.XLabel))
	sb.WriteString("</svg>")
	return sb.String(), nil
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
