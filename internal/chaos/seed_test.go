package chaos

import (
	"fmt"
	"os"
	"strconv"
	"testing"
)

// soakSeed returns the seed the soak should run with: SOR_SOAK_SEED when
// set (replaying a printed failure), def otherwise. The fleetsim soak
// honours the same variable, so one knob replays any soak in the repo.
func soakSeed(t *testing.T, def int64) int64 {
	t.Helper()
	if v := os.Getenv("SOR_SOAK_SEED"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("SOR_SOAK_SEED=%q: %v", v, err)
		}
		t.Logf("replaying SOR_SOAK_SEED=%d", seed)
		return seed
	}
	return def
}

// repro formats the one-line replay command printed with every soak
// failure, so a red CI run can be reproduced exactly.
func repro(t *testing.T, seed int64) string {
	t.Helper()
	return fmt.Sprintf("replay: SOR_SOAK_SEED=%d go test ./internal/chaos -run %s", seed, t.Name())
}
