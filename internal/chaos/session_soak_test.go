package chaos

import (
	"testing"
	"time"
)

// sessionSoakConfig sizes the stream fleet: full for `make session-soak`,
// trimmed for -short CI runs.
func sessionSoakConfig(t *testing.T) SessionConfig {
	t.Helper()
	cfg := SessionConfig{Phones: 6, Budget: 4, Seed: soakSeed(t, 42)}
	if testing.Short() {
		cfg.Phones = 3
		cfg.Budget = 3
	}
	return cfg
}

// TestSessionSoakConvergesByteIdenticalUnderChaos is the stream
// transport's exactly-once proof: the same fleet run twice over persistent
// multiplexed sessions — once clean, once with a partition severing every
// live stream plus forced connection kills, including kills landing
// *after* the server committed a batch but *before* the ack frame was
// written — must converge to byte-identical server state. The client
// cannot distinguish those mid-batch kills from loss, so it retransmits;
// only ReportID dedup keeps the store exactly-once.
func TestSessionSoakConvergesByteIdenticalUnderChaos(t *testing.T) {
	base := sessionSoakConfig(t)
	clean, err := RunSessionSoak(base)
	if err != nil {
		t.Fatalf("fault-free run: %v", err)
	}
	if clean.Stored != base.Phones {
		t.Fatalf("fault-free run stored %d reports, want %d", clean.Stored, base.Phones)
	}
	if len(clean.Features) == 0 {
		t.Fatal("fault-free run produced no features")
	}

	faulty := base
	faulty.Partition = 150 * time.Millisecond
	faulty.Kills = 4
	faulty.KillMidBatch = 2
	if testing.Short() {
		faulty.Partition = 50 * time.Millisecond
	}
	chaotic, err := RunSessionSoak(faulty)
	if err != nil {
		t.Fatalf("chaotic run: %v", err)
	}
	t.Logf("clean:   %s", clean.SessionSummary())
	t.Logf("chaotic: %s", chaotic.SessionSummary())

	// The chaos must have actually bitten, or the test proves nothing.
	if chaotic.Fault.SessionsSevered == 0 {
		t.Fatal("the partition severed no live sessions — stream chaos did not engage")
	}
	if chaotic.Reconnects == 0 {
		t.Fatal("no client ever reconnected — the resume path went unexercised")
	}

	if chaotic.Pending != 0 {
		t.Fatalf("%d reports still stranded in outboxes after flush\n%s",
			chaotic.Pending, repro(t, base.Seed))
	}
	// Exactly once across connection death: however many streams were
	// killed mid-batch, the server stored one report per phone.
	if chaotic.Stored != base.Phones {
		t.Fatalf("chaotic run stored %d reports, want exactly %d\n%s",
			chaotic.Stored, base.Phones, repro(t, base.Seed))
	}
	if diff := DiffState(&clean.Result, &chaotic.Result); diff != "" {
		t.Fatalf("chaotic stream run diverged from fault-free run: %s\n%s",
			diff, repro(t, base.Seed))
	}
}

// TestSessionSoakMatchesHTTPSoak pins wire compatibility end to end: the
// same fleet driven through the stream transport and through one-shot
// HTTP — identical seeds, identical schedules — must converge to the same
// server state, because request/reply frames carry the exact same wire
// codec payloads HTTP bodies do.
func TestSessionSoakMatchesHTTPSoak(t *testing.T) {
	sessCfg := sessionSoakConfig(t)
	stream, err := RunSessionSoak(sessCfg)
	if err != nil {
		t.Fatalf("stream run: %v", err)
	}
	httpCfg := Config{Phones: sessCfg.Phones, Budget: sessCfg.Budget, Seed: sessCfg.Seed}
	oneShot, err := RunSoak(httpCfg)
	if err != nil {
		t.Fatalf("http run: %v", err)
	}
	if diff := DiffState(&stream.Result, oneShot); diff != "" {
		t.Fatalf("stream and HTTP transports converged differently: %s\n%s",
			diff, repro(t, sessCfg.Seed))
	}
}

// TestStreamKillMidBatchExactlyOnce is the reconnect/resume property
// distilled to one phone: every batch the server processes gets its
// stream killed before the ack frame leaves, so every delivery looks
// like a failure to the client and is retransmitted after reconnect.
// The store must end up with exactly one report per ReportID anyway.
func TestStreamKillMidBatchExactlyOnce(t *testing.T) {
	cfg := SessionConfig{
		Phones:       1,
		Budget:       3,
		Seed:         soakSeed(t, 42),
		KillMidBatch: 2,
	}
	res, err := RunSessionSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("run: %s", res.SessionSummary())
	if res.Client.Retries == 0 {
		t.Fatal("no retransmission happened — the kill never bit")
	}
	if res.Reconnects == 0 {
		t.Fatal("the client never reconnected")
	}
	if res.Pending != 0 {
		t.Fatalf("%d reports stranded in the outbox\n%s", res.Pending, repro(t, cfg.Seed))
	}
	if res.Stored != 1 {
		t.Fatalf("processor stored %d reports, want exactly 1\n%s", res.Stored, repro(t, cfg.Seed))
	}
	seen := make(map[string]bool, len(res.SeenReports))
	for _, id := range res.SeenReports {
		if seen[id] {
			t.Fatalf("ReportID %s marked twice in the dedup window\n%s", id, repro(t, cfg.Seed))
		}
		seen[id] = true
	}
	if len(seen) != 1 {
		t.Fatalf("dedup window holds %d report ids, want 1\n%s", len(seen), repro(t, cfg.Seed))
	}
}

// TestSessionSoakDeterministicAcrossRepeats pins that the converged state
// is timing-independent: two chaotic stream runs with the same seed race
// their kills differently in wall-clock time, yet exactly-once means the
// final state cannot depend on where the kills landed.
func TestSessionSoakDeterministicAcrossRepeats(t *testing.T) {
	if testing.Short() {
		t.Skip("repeat determinism covered by the full soak")
	}
	cfg := sessionSoakConfig(t)
	cfg.Partition = 100 * time.Millisecond
	cfg.Kills = 3
	cfg.KillMidBatch = 1
	a, err := RunSessionSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSessionSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if diff := DiffState(&a.Result, &b.Result); diff != "" {
		t.Fatalf("two same-seed stream runs diverged: %s\n%s", diff, repro(t, cfg.Seed))
	}
}
