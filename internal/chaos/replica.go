package chaos

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"sor/internal/replica"
	"sor/internal/server"
	"sor/internal/store"
	"sor/internal/transport"
	"sor/internal/vclock"
	"sor/internal/wire"
	"sor/internal/world"
)

// ReplicaSoakConfig parameterizes a 3-node replication soak: a leader
// and two WAL-streaming followers driven on virtual time while nodes
// are being killed -9, followers partition from the leader, and one
// planned failover promotes a follower mid-run. The contract under
// test: after convergence every node's state digest is byte-identical
// to a never-crashed single-node baseline that applied the same
// workload — replication, recovery, retention pinning, and failover
// must all be invisible in the final state.
type ReplicaSoakConfig struct {
	// Seed drives every random stream: tick widths, chaos placement,
	// checkpoint points, staleness probes. One seed, one exact run —
	// the driver is single-threaded on virtual time.
	Seed int64
	// Phones is how many users join the app (default 4). The last one
	// joins late, after the failover, so task-ID continuity across
	// promotions is part of the digest.
	Phones int
	// Uploads is how many reports each phone delivers (default 5).
	Uploads int
	// Kills is how many times a random node is killed -9 and later
	// recovered (default 10). The current leader is a legitimate target.
	Kills int
	// Partitions is how many timed follower→leader partitions drop on
	// the run (default 3).
	Partitions int
	// MaxLag is the replicas' staleness bound on the virtual clock
	// (default 600ms — short enough that partitions outlive it, so the
	// refusal path is actually exercised).
	MaxLag time.Duration
	// MinSteps keeps the run alive past the workload (default 600
	// ticks, ~30s virtual) so partitions, checkpoints, and staleness
	// windows land on a live cluster instead of racing a sprint.
	MinSteps int
	// BaseDir roots the four data directories (three nodes plus the
	// never-crashed baseline). Required.
	BaseDir string
}

// ReplicaSoakResult is the converged run's telemetry.
type ReplicaSoakResult struct {
	// Digest is the state digest all three nodes AND the never-crashed
	// baseline agreed on.
	Digest string
	// Ops is how many workload operations the cluster acknowledged.
	Ops int
	// Steps is how many virtual-time ticks the run took.
	Steps int
	// Kills/Partitions/Checkpoints/Failovers count the chaos performed.
	Kills       int
	Partitions  int
	Checkpoints int
	Failovers   int
	// OpRetries counts workload operations deferred because the leader
	// was down or demoted mid-op.
	OpRetries int
	// PullErrors counts follower pulls that failed (leader down or
	// partitioned) and went through backoff.
	PullErrors int
	// Probes counts replica rank reads checked against the staleness
	// bound; StaleServed of them carried the Stale flag, StaleRefused
	// were refused outright (503 past MaxLag).
	Probes       int
	StaleServed  int
	StaleRefused int
}

const (
	replSoakAppID    = "app-repl"
	replSoakTTL      = 24 * time.Hour // follower liveness TTL; pins must outlive every partition
	replSoakInterval = 100 * time.Millisecond
)

// replNode is one cluster member: its durable directory plus the live
// incarnation (server, and either a replication leader or a follower).
type replNode struct {
	id  string
	dir string

	backend *store.DurableBackend
	srv     *server.Server
	ld      *replica.Leader   // leader role only
	fol     *replica.Follower // follower role only
	handler transport.Handler // dispatch incl. the ReplPull intercept on leaders

	up               bool
	partitionedUntil time.Time // virtual; no leader contact before this
	nextPullAt       time.Time
}

// replCluster is the whole soak: three nodes, the shared virtual clock,
// and the seeded chaos state.
type replCluster struct {
	cfg       ReplicaSoakConfig
	clk       *vclock.Virtual
	rng       *rand.Rand
	nodes     [3]*replNode
	leaderIdx int
	restartAt map[int]time.Time // node index → virtual instant it recovers
	res       ReplicaSoakResult
}

// codecRoundTrip pushes a message through the full wire codec both
// ways, so replication and phone traffic in the soak exercise the same
// framing the HTTP transport would.
func codecRoundTrip(h transport.Handler, m wire.Message) (wire.Message, error) {
	frame, err := wire.Encode(m)
	if err != nil {
		return nil, err
	}
	req, err := wire.Decode(frame)
	if err != nil {
		return nil, err
	}
	resp, err := h(context.Background(), req)
	if err != nil {
		return nil, err
	}
	out, err := wire.Encode(resp)
	if err != nil {
		return nil, err
	}
	return wire.Decode(out)
}

// replSender routes one follower's pulls to whichever node currently
// leads, failing them while the leader is down or this follower is
// partitioned — the errors the follower's backoff machinery must
// absorb.
type replSender struct {
	c    *replCluster
	from int
}

func (s replSender) Send(_ context.Context, m wire.Message) (wire.Message, error) {
	lead := s.c.nodes[s.c.leaderIdx]
	self := s.c.nodes[s.from]
	if !lead.up {
		return nil, errors.New("chaos: leader is down")
	}
	if s.c.clk.Now().Before(self.partitionedUntil) {
		return nil, errors.New("chaos: partitioned from the leader")
	}
	return codecRoundTrip(lead.handler, m)
}

// open boots (or recovers) node i in the given role. The data directory
// is whatever the previous incarnation left behind — recovering from it
// is the point.
func (c *replCluster) open(i int, asLeader bool) error {
	n := c.nodes[i]
	backend := store.NewDurableBackend(n.dir,
		store.WithSegmentBytes(4096),
		// Checkpoints are driver events (seeded, explicit) — the
		// background loop must never fire on its own mid-run.
		store.WithSnapshotInterval(time.Hour),
	)
	srv, err := server.New(server.Config{
		Storage:       backend,
		Now:           func() time.Time { return soakEpoch },
		Catalog:       server.DefaultCatalog(),
		MaxReplicaLag: c.cfg.MaxLag,
	})
	if err != nil {
		return err
	}
	if asLeader {
		err = srv.Open()
	} else {
		err = srv.OpenAsReplica()
	}
	if err != nil {
		return fmt.Errorf("chaos: recovering %s: %w", n.id, err)
	}
	n.backend, n.srv = backend, srv
	if asLeader {
		ld, err := replica.NewLeader(backend.WAL(),
			replica.WithStateDir(n.dir),
			replica.WithLeaderClock(c.clk),
			replica.WithFollowerTTL(replSoakTTL),
		)
		if err != nil {
			return err
		}
		n.ld, n.fol = ld, nil
		n.handler = replica.Handler(ld, srv.Handler())
	} else {
		c.attachFollower(n, i)
	}
	n.up = true
	return nil
}

// attachFollower wires a follower role onto an open node: the pull
// client, the staleness probe, and an immediate first pull slot.
func (c *replCluster) attachFollower(n *replNode, idx int) {
	f := replica.NewFollower(n.id, n.srv.DB(), replSender{c: c, from: idx},
		replica.WithFollowerClock(c.clk),
		replica.WithPullInterval(replSoakInterval),
		replica.WithFollowerBackoff(10*time.Millisecond, 500*time.Millisecond, c.cfg.Seed+int64(idx)),
	)
	n.srv.SetReplicaLagProbe(f.LagProbe())
	n.ld, n.fol = nil, f
	n.handler = n.srv.Handler()
	n.nextPullAt = c.clk.Now()
}

func (c *replCluster) kill(i int) {
	n := c.nodes[i]
	n.srv.Kill()
	n.up = false
}

// restartDue recovers every killed node whose downtime has elapsed, in
// node order (map iteration would be nondeterministic).
func (c *replCluster) restartDue(now time.Time) error {
	for i := range c.nodes {
		at, down := c.restartAt[i]
		if !down || now.Before(at) {
			continue
		}
		if err := c.open(i, i == c.leaderIdx); err != nil {
			return err
		}
		delete(c.restartAt, i)
	}
	return nil
}

// replOp is one deterministic workload step. The op list is a pure
// function of the config, so the cluster run and the baseline apply the
// exact same mutations in the exact same order — only the chaos between
// them differs.
type replOp struct {
	phone  int
	upload int // -1: participate, else the phone's upload number
}

// buildReplOps interleaves joins and upload rounds. The last phone
// joins halfway through the rounds — past the failover point — so the
// new leader must mint its task ID continuing the old leader's "task-N"
// sequence, and the digest comparison against the baseline proves it
// did.
func buildReplOps(phones, uploads int) []replOp {
	late := phones - 1
	var ops []replOp
	for p := 0; p < phones-1; p++ {
		ops = append(ops, replOp{phone: p, upload: -1})
	}
	for u := 0; u < uploads; u++ {
		for p := 0; p < phones; p++ {
			if p == late {
				if u < uploads/2 {
					continue
				}
				if u == uploads/2 {
					ops = append(ops, replOp{phone: late, upload: -1})
				}
			}
			ops = append(ops, replOp{phone: p, upload: u})
		}
	}
	return ops
}

// applyReplOp runs one workload op against h. done=false means the op
// must be retried later (leader down or refusing writes); a non-nil
// error is a contract violation chaos never excuses.
func applyReplOp(h transport.Handler, op replOp, scheds []*wire.Schedule) (done bool, err error) {
	var m wire.Message
	if op.upload < 0 {
		m = &wire.Participate{
			UserID: fmt.Sprintf("repl-user-%d", op.phone),
			Token:  fmt.Sprintf("repl-token-%d", op.phone),
			AppID:  replSoakAppID,
			Loc:    wire.Location{Lat: 43.0413, Lon: -76.1350},
			Budget: 8,
		}
	} else {
		sched := scheds[op.phone]
		if sched == nil {
			return false, fmt.Errorf("chaos: upload before participation for phone %d", op.phone)
		}
		ms := soakEpoch.Add(time.Duration(op.upload+1) * time.Minute).UnixMilli()
		series := make([]wire.SensorSeries, 0, 4)
		for _, sensor := range []string{"temperature", "light", "microphone", "wifi"} {
			series = append(series, wire.SensorSeries{
				Sensor: sensor,
				Samples: []wire.SensorSample{
					{AtUnixMilli: ms, WindowMilli: 5000,
						Readings: []float64{40 + float64(op.phone) + float64(op.upload)/8}},
				},
			})
		}
		m = &wire.DataUpload{
			TaskID: sched.TaskID, AppID: sched.AppID, UserID: sched.UserID,
			ReportID: fmt.Sprintf("repl-%d-%d", op.phone, op.upload),
			Series:   series,
		}
	}
	resp, err := codecRoundTrip(h, m)
	if err != nil {
		return false, nil // leader vanished mid-op: retry
	}
	ack, ok := resp.(*wire.Ack)
	if !ok {
		return false, fmt.Errorf("chaos: op got %s reply", resp.Type())
	}
	if !ack.OK {
		if ack.Code == 503 {
			return false, nil // demoted or replica: retry against the next leader
		}
		return false, fmt.Errorf("chaos: op refused: %d %s", ack.Code, ack.Message)
	}
	if op.upload < 0 {
		inner, err := wire.Decode(ack.Payload)
		if err != nil {
			return false, err
		}
		sched, ok := inner.(*wire.Schedule)
		if !ok {
			return false, fmt.Errorf("chaos: participation ack carried %s", inner.Type())
		}
		scheds[op.phone] = sched
	}
	return true, nil
}

// probeStaleness issues a rank query to node i (followers only) and
// checks the bounded-staleness contract: the gate must refuse exactly
// when the follower's last leader contact is older than MaxLag (or
// never happened), and lagging-but-served replies must carry the Stale
// flag.
func (c *replCluster) probeStaleness(i int) error {
	n := c.nodes[i]
	if !n.up || n.fol == nil {
		return nil
	}
	c.res.Probes++
	self := n.fol.Status()
	expectRefuse := self.LastContactMS < 0 || self.LastContactMS > c.cfg.MaxLag.Milliseconds()
	resp, err := codecRoundTrip(n.handler, &wire.RankRequest{
		UserID: "probe", Category: world.CategoryCoffee,
	})
	if err != nil {
		return err
	}
	switch r := resp.(type) {
	case *wire.Ack:
		if strings.Contains(r.Message, "staleness") {
			if !expectRefuse {
				return fmt.Errorf("chaos: %s refused rank %dms after leader contact (bound %s)",
					n.id, self.LastContactMS, c.cfg.MaxLag)
			}
			c.res.StaleRefused++
			return nil
		}
		// Any other refusal (no rankable data yet) must still have
		// passed the gate first.
		if expectRefuse {
			return fmt.Errorf("chaos: %s answered rank %dms after leader contact (bound %s): %s",
				n.id, self.LastContactMS, c.cfg.MaxLag, r.Message)
		}
		return nil
	case *wire.RankResponse:
		if expectRefuse {
			return fmt.Errorf("chaos: %s served rank %dms after leader contact (bound %s)",
				n.id, self.LastContactMS, c.cfg.MaxLag)
		}
		if r.Stale {
			c.res.StaleServed++
		} else if self.LagRecords > 0 {
			return fmt.Errorf("chaos: %s lags %d records but served an unflagged rank reply",
				n.id, self.LagRecords)
		}
		return nil
	default:
		return fmt.Errorf("chaos: rank probe got %s reply", resp.Type())
	}
}

// failover is the planned promotion: demote the leader, drain the
// followers to the frozen head, promote the successor, and rejoin the
// old leader as a follower of the new one.
func (c *replCluster) failover() error {
	// Every node must be reachable for a planned failover; restart any
	// that chaos has down and heal partitions so the drain can finish.
	for i, n := range c.nodes {
		if !n.up {
			if err := c.open(i, i == c.leaderIdx); err != nil {
				return err
			}
			delete(c.restartAt, i)
		}
		n.partitionedUntil = time.Time{}
	}
	oldIdx := c.leaderIdx
	old := c.nodes[oldIdx]
	nextIdx := (oldIdx + 1) % len(c.nodes)
	succ := c.nodes[nextIdx]

	// Freeze the head, then drain every follower to it: acked mutations
	// must survive the promotion, and the lagging third node must not
	// be left behind a successor that may have compacted its own
	// prefix.
	old.srv.Demote()
	head := old.backend.WAL().LastLSN()
	for _, n := range c.nodes {
		if n.fol == nil {
			continue
		}
		for i := 0; n.srv.DB().AppliedLSN() < head; i++ {
			if i > 10000 {
				return fmt.Errorf("chaos: %s never reached the old head %d", n.id, head)
			}
			if _, err := n.fol.PullOnce(context.Background()); err != nil {
				return fmt.Errorf("chaos: failover drain on %s: %w", n.id, err)
			}
		}
	}
	if err := succ.srv.Promote(); err != nil {
		return err
	}
	ld, err := replica.NewLeader(succ.backend.WAL(),
		replica.WithStateDir(succ.dir),
		replica.WithLeaderClock(c.clk),
		replica.WithFollowerTTL(replSoakTTL),
	)
	if err != nil {
		return err
	}
	succ.ld, succ.fol = ld, nil
	succ.handler = replica.Handler(ld, succ.srv.Handler())
	c.leaderIdx = nextIdx

	// The demoted leader rejoins as a follower, resuming from its own
	// head — its log is a byte-identical prefix of the new leader's.
	c.attachFollower(old, oldIdx)

	// One pull from every follower before anything else: the pulls
	// register their acks with the new leader, which pins its retention
	// so no later checkpoint can compact records they still need.
	for _, n := range c.nodes {
		if n.fol == nil {
			continue
		}
		if _, err := n.fol.PullOnce(context.Background()); err != nil {
			return fmt.Errorf("chaos: re-homing %s on the new leader: %w", n.id, err)
		}
		n.nextPullAt = c.clk.Now()
	}
	c.res.Failovers++
	return nil
}

// RunReplicaSoak drives the 3-node cluster through the seeded chaos
// schedule and returns its telemetry. See ReplicaSoakConfig for the
// contract.
func RunReplicaSoak(cfg ReplicaSoakConfig) (*ReplicaSoakResult, error) {
	if cfg.Phones <= 0 {
		cfg.Phones = 4
	}
	if cfg.Uploads <= 0 {
		cfg.Uploads = 5
	}
	if cfg.Kills < 0 {
		cfg.Kills = 0
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = 3
	}
	if cfg.MaxLag <= 0 {
		cfg.MaxLag = 600 * time.Millisecond
	}
	if cfg.MinSteps <= 0 {
		cfg.MinSteps = 600
	}
	if cfg.BaseDir == "" {
		return nil, errors.New("chaos: replica soak needs a base dir")
	}

	c := &replCluster{
		cfg:       cfg,
		clk:       vclock.NewVirtual(soakEpoch),
		rng:       rand.New(rand.NewSource(cfg.Seed ^ 0x5e91d0de)),
		restartAt: map[int]time.Time{},
	}
	for i := range c.nodes {
		c.nodes[i] = &replNode{
			id:  fmt.Sprintf("node-%d", i),
			dir: filepath.Join(cfg.BaseDir, fmt.Sprintf("node-%d", i)),
		}
	}
	for i := range c.nodes {
		if err := c.open(i, i == 0); err != nil {
			return nil, err
		}
	}
	if err := c.nodes[0].srv.CreateApp(replSoakApp()); err != nil {
		return nil, err
	}

	ops := buildReplOps(cfg.Phones, cfg.Uploads)
	scheds := make([]*wire.Schedule, cfg.Phones)
	killsLeft := cfg.Kills
	partitionsLeft := cfg.Partitions
	failoverDone := false
	opIdx := 0

	anyDown := func() bool {
		for _, n := range c.nodes {
			if !n.up {
				return true
			}
		}
		return false
	}
	const maxSteps = 200000
	for step := 0; opIdx < len(ops) || killsLeft > 0 || anyDown() || step < cfg.MinSteps; step++ {
		if step >= maxSteps {
			return nil, fmt.Errorf("chaos: no convergence after %d steps (op %d/%d, %d kills left)",
				step, opIdx, len(ops), killsLeft)
		}
		c.res.Steps = step + 1
		c.clk.Advance(time.Duration(10+c.rng.Intn(90)) * time.Millisecond)
		now := c.clk.Now()

		// Recoveries due: a killed node restarts in its current role and
		// replays its own disk.
		if err := c.restartDue(now); err != nil {
			return nil, err
		}
		// Kill -9 a random node. Near the end of the run, force the
		// remaining kills so the quota is always spent.
		if killsLeft > 0 && (c.rng.Float64() < 0.02 || step >= cfg.MinSteps) {
			target := c.rng.Intn(len(c.nodes))
			if c.nodes[target].up {
				c.kill(target)
				c.restartAt[target] = now.Add(time.Duration(200+c.rng.Intn(600)) * time.Millisecond)
				killsLeft--
				c.res.Kills++
			}
		}
		// Timed partition: a follower loses its leader link for a window
		// sized to overlap the staleness bound.
		if partitionsLeft > 0 && c.rng.Float64() < 0.015 {
			target := c.rng.Intn(len(c.nodes))
			if target != c.leaderIdx && c.nodes[target].up {
				c.nodes[target].partitionedUntil = now.Add(time.Duration(300+c.rng.Intn(1200)) * time.Millisecond)
				partitionsLeft--
				c.res.Partitions++
			}
		}
		// Explicit checkpoint on a random live node: a snapshot plus WAL
		// truncation racing the shipper, with retention pins as the only
		// guard.
		if c.rng.Float64() < 0.03 {
			target := c.rng.Intn(len(c.nodes))
			if c.nodes[target].up {
				if err := c.nodes[target].backend.Checkpoint(); err != nil {
					return nil, fmt.Errorf("chaos: checkpoint on %s: %w", c.nodes[target].id, err)
				}
				c.res.Checkpoints++
			}
		}
		// One planned failover mid-workload.
		if !failoverDone && opIdx >= len(ops)/2 {
			if err := c.failover(); err != nil {
				return nil, err
			}
			failoverDone = true
		}
		// Followers pull on their own cadence (NextDelay: eager while
		// behind, heartbeat while caught up, backoff while cut off).
		for _, n := range c.nodes {
			if !n.up || n.fol == nil || now.Before(n.nextPullAt) {
				continue
			}
			if _, err := n.fol.PullOnce(context.Background()); err != nil {
				if errors.Is(err, replica.ErrNeedsResync) {
					return nil, fmt.Errorf("chaos: %s forced into resync (retention guard failed)", n.id)
				}
				c.res.PullErrors++
			}
			delay := n.fol.NextDelay()
			if delay < 10*time.Millisecond {
				delay = 10 * time.Millisecond
			}
			n.nextPullAt = now.Add(delay)
		}
		// Replica reads: rank queries against a random node, checked
		// against the staleness bound.
		if c.rng.Float64() < 0.2 {
			if err := c.probeStaleness(c.rng.Intn(len(c.nodes))); err != nil {
				return nil, err
			}
		}
		// One workload op against the current leader, strictly in order:
		// a deferred op is retried until the cluster accepts it. Ops are
		// paced out so writes keep landing while chaos is in flight.
		if opIdx < len(ops) && (step%4 == 0 || step >= cfg.MinSteps) {
			lead := c.nodes[c.leaderIdx]
			if !lead.up {
				c.res.OpRetries++
				continue
			}
			done, err := applyReplOp(lead.handler, ops[opIdx], scheds)
			if err != nil {
				return nil, err
			}
			if done {
				opIdx++
				c.res.Ops++
			} else {
				c.res.OpRetries++
			}
		}
	}

	// Convergence: heal everything, fold the leader's features, and
	// drain every follower to the final head.
	for _, n := range c.nodes {
		n.partitionedUntil = time.Time{}
	}
	lead := c.nodes[c.leaderIdx]
	lead.srv.Processor().Process()
	head := lead.backend.WAL().LastLSN()
	for _, n := range c.nodes {
		if n.fol == nil {
			continue
		}
		for i := 0; n.srv.DB().AppliedLSN() < head; i++ {
			if i > 10000 {
				return nil, fmt.Errorf("chaos: %s never drained to head %d", n.id, head)
			}
			if _, err := n.fol.PullOnce(context.Background()); err != nil {
				return nil, fmt.Errorf("chaos: final drain on %s: %w", n.id, err)
			}
		}
		if got := n.backend.WAL().LastLSN(); got != head {
			return nil, fmt.Errorf("chaos: %s log head %d, leader %d", n.id, got, head)
		}
	}

	// The never-crashed baseline: one node, the same ops in the same
	// order, one final fold.
	want, err := runReplBaseline(filepath.Join(cfg.BaseDir, "baseline"), cfg)
	if err != nil {
		return nil, err
	}
	for _, n := range c.nodes {
		if got := StateDigest(n.srv.DB(), world.CategoryCoffee, replSoakAppID); got != want {
			return nil, fmt.Errorf("chaos: %s digest %.12s diverged from baseline %.12s", n.id, got, want)
		}
	}
	for _, n := range c.nodes {
		_ = n.backend.Close()
	}
	c.res.Digest = want
	return &c.res, nil
}

func replSoakApp() store.Application {
	return store.Application{
		ID: replSoakAppID, Creator: "chaos-harness",
		Category: world.CategoryCoffee, Place: world.Starbucks,
		Lat: 43.0413, Lon: -76.1350, RadiusM: 60,
		Script: soakScript, PeriodSec: 10800,
	}
}

// runReplBaseline applies the soak's exact op sequence to a single
// never-crashed node and returns its state digest.
func runReplBaseline(dir string, cfg ReplicaSoakConfig) (string, error) {
	backend := store.NewDurableBackend(dir, store.WithSnapshotInterval(time.Hour))
	srv, err := server.New(server.Config{
		Storage: backend,
		Now:     func() time.Time { return soakEpoch },
		Catalog: server.DefaultCatalog(),
	})
	if err != nil {
		return "", err
	}
	if err := srv.Open(); err != nil {
		return "", err
	}
	defer srv.Close()
	if err := srv.CreateApp(replSoakApp()); err != nil {
		return "", err
	}
	scheds := make([]*wire.Schedule, cfg.Phones)
	for _, op := range buildReplOps(cfg.Phones, cfg.Uploads) {
		done, err := applyReplOp(srv.Handler(), op, scheds)
		if err != nil {
			return "", fmt.Errorf("chaos: baseline op: %w", err)
		}
		if !done {
			return "", errors.New("chaos: baseline op deferred with no chaos running")
		}
	}
	srv.Processor().Process()
	return StateDigest(srv.DB(), world.CategoryCoffee, replSoakAppID), nil
}

// StateDigest hashes a store's externally visible state into one
// comparable string: users, apps, participations, anchors, the dedup
// window, every stored upload body in sequence order, and the feature
// matrix bit-for-bit (Updated stamps excluded — they are wall-clock).
// Scheduler internals and WAL positions are deliberately outside the
// digest: replicas do not run the scheduler, and compaction
// legitimately shifts log offsets without changing state.
func StateDigest(db *store.Store, category, appID string) string {
	h := sha256.New()
	put := func(format string, args ...any) { fmt.Fprintf(h, format, args...) }

	users := db.Users()
	sort.Slice(users, func(i, j int) bool { return users[i].ID < users[j].ID })
	for _, u := range users {
		put("user|%s|%s|%s\n", u.ID, u.Name, u.Token)
	}
	apps := db.Apps()
	sort.Slice(apps, func(i, j int) bool { return apps[i].ID < apps[j].ID })
	for _, a := range apps {
		put("app|%s|%s|%s|%s|%x|%x|%x|%d\n",
			a.ID, a.Creator, a.Category, a.Place,
			math.Float64bits(a.Lat), math.Float64bits(a.Lon),
			math.Float64bits(a.RadiusM), a.PeriodSec)
	}
	for _, p := range db.ParticipationsByApp(appID) {
		put("part|%s|%s|%s|%d|%d|%d\n",
			p.TaskID, p.UserID, p.Token, p.Budget, p.Status, p.Joined.UnixNano())
	}
	anchors := db.Anchors()
	sort.Slice(anchors, func(i, j int) bool { return anchors[i].AppID < anchors[j].AppID })
	for _, a := range anchors {
		put("anchor|%s|%d\n", a.AppID, a.AnchorUnix)
	}
	for _, id := range db.SeenReportIDs(appID) {
		put("seen|%s\n", id)
	}
	for _, u := range db.AllUploads() {
		put("upload|%d|%s|%d|", u.Seq, u.AppID, u.Received.UnixNano())
		h.Write(u.Body)
		put("\n")
	}
	rows := db.FeaturesByCategory(category)
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Place != rows[j].Place {
			return rows[i].Place < rows[j].Place
		}
		return rows[i].Feature < rows[j].Feature
	})
	for _, r := range rows {
		put("feat|%s|%s|%x|%d\n", r.Place, r.Feature, math.Float64bits(r.Value), r.Samples)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Summary renders the soak telemetry for logs.
func (r *ReplicaSoakResult) Summary() string {
	return fmt.Sprintf(
		"%d ops in %d steps (%d deferred); %d kills, %d partitions, %d checkpoints, %d failover; "+
			"%d pull errors; %d rank probes (%d stale-flagged, %d refused); digest %.12s",
		r.Ops, r.Steps, r.OpRetries, r.Kills, r.Partitions, r.Checkpoints, r.Failovers,
		r.PullErrors, r.Probes, r.StaleServed, r.StaleRefused, r.Digest)
}
