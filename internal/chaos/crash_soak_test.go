package chaos

import (
	"testing"
	"time"
)

// crashConfig is the PR-3 fault schedule pointed at a durable server:
// 30% request loss, 30% ack loss, latency spikes, and a partition
// dropping on the fleet mid-upload — plus kills injected by the caller.
func crashConfig(t *testing.T, seed int64, kills int) CrashConfig {
	t.Helper()
	return CrashConfig{
		Config: Config{
			Phones:      4,
			Budget:      4,
			Seed:        seed,
			RequestLoss: 0.30,
			AckLoss:     0.30,
			SpikeProb:   0.10,
			Spike:       2 * time.Millisecond,
			Partition:   30 * time.Millisecond,
			Timeout:     120 * time.Second,
		},
		DataDir: t.TempDir(),
		Kills:   kills,
	}
}

// TestCrashSoakRecoversIdenticalState is the tentpole proof: a durable
// server killed at random points mid-run — under the PR-3 fault schedule —
// recovers to converged state bit-identical to the same seed never
// crashing. Feature matrix, coverage timeline, budget ledger, dedup
// window, and stored-upload count must all match; no acked report may be
// lost or double-charged no matter where the kills landed.
func TestCrashSoakRecoversIdenticalState(t *testing.T) {
	kills := 10
	seeds := []int64{1, 42}
	if testing.Short() {
		kills = 3
		seeds = seeds[:1]
	}
	if replay := soakSeed(t, 0); replay != 0 {
		// SOR_SOAK_SEED narrows the sweep to the seed being replayed.
		seeds = []int64{replay}
	}
	for _, seed := range seeds {
		baseline, err := RunCrashSoak(crashConfig(t, seed, 0))
		if err != nil {
			t.Fatalf("seed %d baseline: %v\n%s", seed, err, repro(t, seed))
		}
		if baseline.Pending != 0 {
			t.Fatalf("seed %d baseline left %d reports pending\n%s",
				seed, baseline.Pending, repro(t, seed))
		}

		crashed, err := RunCrashSoak(crashConfig(t, seed, kills))
		if err != nil {
			t.Fatalf("seed %d crashed run: %v\n%s", seed, err, repro(t, seed))
		}
		if crashed.Pending != 0 {
			t.Fatalf("seed %d: %d reports still pending after recovery\n%s",
				seed, crashed.Pending, repro(t, seed))
		}
		if diff := DiffState(baseline, crashed); diff != "" {
			t.Fatalf("seed %d: state diverged after %d kills: %s\nbaseline: %s\ncrashed:  %s\n%s",
				seed, kills, diff, baseline.Summary(), crashed.Summary(), repro(t, seed))
		}
		if crashed.Stored != baseline.Stored {
			t.Fatalf("seed %d: stored %d reports, baseline %d\n%s",
				seed, crashed.Stored, baseline.Stored, repro(t, seed))
		}
		t.Logf("seed %d survived %d kills: %s", seed, kills, crashed.Summary())
	}
}

// TestCrashSoakDurableMatchesMemory pins that moving the soak onto the
// durable backend (zero kills) does not change the converged state the
// in-memory PR-3 soak produces for the same seed and fault schedule.
func TestCrashSoakDurableMatchesMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by the full crash soak")
	}
	cfg := crashConfig(t, 7, 0)
	durable, err := RunCrashSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	memory, err := RunSoak(cfg.Config)
	if err != nil {
		t.Fatal(err)
	}
	// The one sanctioned difference: in-memory stores discard drained
	// uploads, durable stores archive them for refold-on-recovery.
	if memory.UploadsStored != 0 {
		t.Fatalf("in-memory store retained %d uploads after drain", memory.UploadsStored)
	}
	memory.UploadsStored = durable.UploadsStored
	if diff := DiffState(memory, durable); diff != "" {
		t.Fatalf("durable backend changed soak semantics: %s", diff)
	}
}
