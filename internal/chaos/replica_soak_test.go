package chaos

import (
	"testing"
)

// TestReplicaSoakConvergesToBaseline is the replication tentpole proof:
// a 3-node cluster — leader plus two WAL-streaming followers on virtual
// time — survives random kill -9s on every role, timed leader
// partitions, seeded checkpoints (WAL truncation racing the shipper),
// and one planned failover promotion with old-leader rejoin, and every
// node's final state digest is byte-identical to a never-crashed
// single-node baseline that applied the same workload. RunReplicaSoak
// itself enforces the per-read contracts along the way: rank reads past
// the staleness bound are refused, lagging reads carry the Stale flag,
// and no follower is ever forced into a resync (the retention guard).
func TestReplicaSoakConvergesToBaseline(t *testing.T) {
	kills := 10
	seeds := []int64{1, 42, 1337}
	if testing.Short() {
		kills = 3
		seeds = seeds[:1]
	}
	if replay := soakSeed(t, 0); replay != 0 {
		// SOR_SOAK_SEED narrows the sweep to the seed being replayed.
		seeds = []int64{replay}
	}
	for _, seed := range seeds {
		res, err := RunReplicaSoak(ReplicaSoakConfig{
			Seed:    seed,
			Kills:   kills,
			BaseDir: t.TempDir(),
		})
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, repro(t, seed))
		}
		if res.Kills != kills {
			t.Fatalf("seed %d: %d kills requested, %d performed\n%s",
				seed, kills, res.Kills, repro(t, seed))
		}
		if res.Failovers != 1 {
			t.Fatalf("seed %d: %d failovers performed\n%s", seed, res.Failovers, repro(t, seed))
		}
		if res.Probes == 0 {
			t.Fatalf("seed %d: staleness gate never probed\n%s", seed, repro(t, seed))
		}
		if res.Digest == "" {
			t.Fatalf("seed %d: empty digest\n%s", seed, repro(t, seed))
		}
		t.Logf("seed %d converged: %s", seed, res.Summary())
	}
}

// TestReplicaSoakDeterministic pins that the soak driver itself is a
// pure function of its seed — same seed, same digest AND same chaos
// telemetry — so a failure report's repro instructions actually
// reproduce the failing run.
func TestReplicaSoakDeterministic(t *testing.T) {
	cfg := ReplicaSoakConfig{Seed: 7, Kills: 4}
	cfg.BaseDir = t.TempDir()
	a, err := RunReplicaSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.BaseDir = t.TempDir()
	b, err := RunReplicaSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary() != b.Summary() {
		t.Fatalf("same seed, different runs:\n%s\n%s", a.Summary(), b.Summary())
	}
}
