package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"time"

	"sor/internal/cluster"
	"sor/internal/obs"
	"sor/internal/replica"
	"sor/internal/server"
	"sor/internal/store"
	"sor/internal/transport"
	"sor/internal/vclock"
	"sor/internal/wal"
	"sor/internal/wire"
	"sor/internal/world"
)

// ClusterSoakConfig parameterizes the scale-out soak: two shards of two
// nodes each behind a router, driven on one virtual clock while nodes
// are killed -9, followers partition, checkpoints race the shipper, one
// planned failover lands on each shard (one reconciled by the operator,
// one left for the router's discovery probes to find), and one follower
// is deliberately orphaned past compaction and rejoins via snapshot-ship
// resync. The contract: after convergence, every node of each shard
// carries a state digest byte-identical to a never-crashed single-node
// baseline that applied only that shard's category workload — sharding,
// routing, failover, and resync must all be invisible in the final
// state.
type ClusterSoakConfig struct {
	// Seed drives every random stream; one seed, one exact run.
	Seed int64
	// Phones is how many users join each category's app (default 3).
	Phones int
	// Uploads is how many reports each phone delivers (default 5).
	Uploads int
	// Kills is how many node kills land across the run (default 6).
	Kills int
	// Partitions is how many follower→leader partitions drop (default 2).
	Partitions int
	// MinSteps keeps the run alive past the workload (default 600).
	MinSteps int
	// BaseDir roots the data directories (four nodes plus two baselines).
	BaseDir string
}

// ClusterSoakResult is the converged run's telemetry.
type ClusterSoakResult struct {
	// Digests maps each category to the digest its shard's nodes and the
	// baseline agreed on.
	Digests map[string]string
	// Ops is how many workload operations the router acknowledged.
	Ops int
	// Steps is how many virtual-time ticks the run took.
	Steps int
	// Chaos performed.
	Kills       int
	Partitions  int
	Checkpoints int
	// Failovers counts planned Demote/drain/Promote sequences (one per
	// shard); RouterFailovers counts leader changes the router's own
	// probes discovered and reconciled into the registry.
	Failovers       int
	RouterFailovers int
	// Resyncs counts snapshot-ship rejoins (the scripted orphaning).
	Resyncs int
	// OpRetries counts ops deferred because a shard was unavailable;
	// PullErrors counts follower pulls absorbed by backoff; RankProbes
	// counts rank queries routed through the router mid-chaos.
	OpRetries  int
	PullErrors int
	RankProbes int
}

const clusterSoakTTL = 24 * time.Hour

// clusterApp is one category's application and workload identity.
type clusterApp struct {
	id, category, place string
	lat, lon            float64
}

func clusterApps() [2]clusterApp {
	return [2]clusterApp{
		{id: "app-coffee", category: world.CategoryCoffee, place: world.Starbucks,
			lat: 43.0413, lon: -76.1350},
		{id: "app-trail", category: world.CategoryTrail, place: world.GreenLakeTrail,
			lat: 43.4512, lon: -76.3105},
	}
}

func (a clusterApp) store() store.Application {
	return store.Application{
		ID: a.id, Creator: "chaos-harness",
		Category: a.category, Place: a.place,
		Lat: a.lat, Lon: a.lon, RadiusM: 60,
		Script: soakScript, PeriodSec: 10800,
	}
}

// clusterShard is one shard: two replNode incarnations and which one
// currently leads.
type clusterShard struct {
	name      string
	nodes     [2]*replNode
	leaderIdx int
}

func (s *clusterShard) leader() *replNode { return s.nodes[s.leaderIdx] }

// clusterSoak is the whole run: two shards, the registry and router on
// the shared virtual clock, and the seeded chaos state.
type clusterSoak struct {
	cfg    ClusterSoakConfig
	clk    *vclock.Virtual
	rng    *rand.Rand
	shards [2]*clusterShard
	reg    *cluster.Registry
	router *cluster.Router
	// restartAt maps (shard, node) → the virtual instant it recovers.
	restartAt map[[2]int]time.Time
	// resync scripting state: which node is deliberately orphaned and
	// where the script is (0 = not started, 1 = down and forgotten,
	// 2 = done).
	resyncShard, resyncNode, resyncPhase int
	resyncApplied                        uint64
	res                                  ClusterSoakResult
}

// nodeByName resolves a member name ("shard-a-0") to its incarnation —
// the dialer's address space.
func (c *clusterSoak) nodeByName(name string) *replNode {
	for _, s := range c.shards {
		for _, n := range s.nodes {
			if n.id == name {
				return n
			}
		}
	}
	return nil
}

// clusterDialSender is the router's link to one member; it fails while
// the member is down, like a refused TCP connect.
type clusterDialSender struct {
	c    *clusterSoak
	name string
}

func (s clusterDialSender) Send(_ context.Context, m wire.Message) (wire.Message, error) {
	n := s.c.nodeByName(s.name)
	if n == nil {
		return nil, fmt.Errorf("chaos: no such member %s", s.name)
	}
	if !n.up {
		return nil, fmt.Errorf("chaos: %s is down", s.name)
	}
	return codecRoundTrip(n.handler, m)
}

// shardSender routes one follower's pulls to its shard's current
// leader, failing while the leader is down or this follower is
// partitioned.
type shardSender struct {
	c     *clusterSoak
	shard int
	from  int
}

func (s shardSender) Send(_ context.Context, m wire.Message) (wire.Message, error) {
	sh := s.c.shards[s.shard]
	lead := sh.leader()
	self := sh.nodes[s.from]
	if !lead.up {
		return nil, errors.New("chaos: leader is down")
	}
	if s.c.clk.Now().Before(self.partitionedUntil) {
		return nil, errors.New("chaos: partitioned from the leader")
	}
	return codecRoundTrip(lead.handler, m)
}

// leaderSender reaches a shard's current leader unconditionally — the
// resync script's fetch path (the orphaned node is "down", but its
// resync fetch is a fresh connection, not the partitioned pull link).
type leaderSender struct {
	c     *clusterSoak
	shard int
}

func (s leaderSender) Send(_ context.Context, m wire.Message) (wire.Message, error) {
	return codecRoundTrip(s.c.shards[s.shard].leader().handler, m)
}

// open boots (or recovers) node ni of shard si in the given role from
// whatever its data directory holds.
func (c *clusterSoak) open(si, ni int, asLeader bool) error {
	sh := c.shards[si]
	n := sh.nodes[ni]
	backend := store.NewDurableBackend(n.dir,
		// Small segments so compaction is fine-grained: the resync script
		// needs a checkpoint to truncate past the orphaned follower
		// within a handful of ops.
		store.WithSegmentBytes(512),
		store.WithSnapshotInterval(time.Hour),
	)
	srv, err := server.New(server.Config{
		Storage: backend,
		Now:     func() time.Time { return soakEpoch },
		Catalog: server.DefaultCatalog(),
	})
	if err != nil {
		return err
	}
	if asLeader {
		err = srv.Open()
	} else {
		err = srv.OpenAsReplica()
	}
	if err != nil {
		return fmt.Errorf("chaos: recovering %s: %w", n.id, err)
	}
	n.backend, n.srv = backend, srv
	if asLeader {
		ld, err := replica.NewLeader(backend.WAL(),
			replica.WithStateDir(n.dir),
			replica.WithLeaderClock(c.clk),
			replica.WithFollowerTTL(clusterSoakTTL),
			replica.WithSnapshotSource(backend),
		)
		if err != nil {
			return err
		}
		n.ld, n.fol = ld, nil
		n.handler = c.memberHandler(n, replica.Handler(ld, srv.Handler()))
	} else {
		c.attachClusterFollower(si, ni)
	}
	n.up = true
	return nil
}

// memberHandler wraps a node's dispatch so it answers the router's
// ClusterHello probes with its live role.
func (c *clusterSoak) memberHandler(n *replNode, next transport.Handler) transport.Handler {
	role := func() string {
		if n.srv.IsReplica() {
			return cluster.RoleReplica
		}
		return cluster.RoleLeader
	}
	applied := func() uint64 { return n.srv.DB().AppliedLSN() }
	return cluster.MemberHandler(n.id, role, applied, next)
}

// attachClusterFollower wires the follower role onto an open node.
func (c *clusterSoak) attachClusterFollower(si, ni int) {
	sh := c.shards[si]
	n := sh.nodes[ni]
	f := replica.NewFollower(n.id, n.srv.DB(), shardSender{c: c, shard: si, from: ni},
		replica.WithFollowerClock(c.clk),
		replica.WithPullInterval(replSoakInterval),
		replica.WithFollowerBackoff(10*time.Millisecond, 500*time.Millisecond,
			c.cfg.Seed+int64(si*2+ni)),
	)
	n.srv.SetReplicaLagProbe(f.LagProbe())
	n.ld, n.fol = nil, f
	n.handler = c.memberHandler(n, n.srv.Handler())
	n.nextPullAt = c.clk.Now()
}

// restartDue recovers killed nodes whose downtime elapsed, in shard and
// node order. The resync script's orphan stays down until the script
// rejoins it.
func (c *clusterSoak) restartDue(now time.Time) error {
	for si := range c.shards {
		for ni := range c.shards[si].nodes {
			at, down := c.restartAt[[2]int{si, ni}]
			if !down || now.Before(at) {
				continue
			}
			if err := c.open(si, ni, ni == c.shards[si].leaderIdx); err != nil {
				return err
			}
			delete(c.restartAt, [2]int{si, ni})
		}
	}
	return nil
}

// isResyncOrphan reports whether (si, ni) is mid-script: chaos must
// neither kill nor restart it.
func (c *clusterSoak) isResyncOrphan(si, ni int) bool {
	return c.resyncPhase == 1 && si == c.resyncShard && ni == c.resyncNode
}

// failoverShard runs the planned Demote/drain/Promote on shard si. When
// reconcile is true the registry learns the new roles from the operator
// (SetRole); otherwise it is left stale, and the router's 503-triggered
// discovery (or a heartbeat) must find the promotion on its own.
func (c *clusterSoak) failoverShard(si int, reconcile bool) error {
	sh := c.shards[si]
	for ni, n := range sh.nodes {
		if !n.up {
			if c.isResyncOrphan(si, ni) {
				return fmt.Errorf("chaos: failover on %s while its follower is mid-resync", sh.name)
			}
			if err := c.open(si, ni, ni == sh.leaderIdx); err != nil {
				return err
			}
			delete(c.restartAt, [2]int{si, ni})
		}
		n.partitionedUntil = time.Time{}
	}
	oldIdx := sh.leaderIdx
	old := sh.nodes[oldIdx]
	nextIdx := 1 - oldIdx
	succ := sh.nodes[nextIdx]

	old.srv.Demote()
	head := old.backend.WAL().LastLSN()
	for i := 0; succ.srv.DB().AppliedLSN() < head; i++ {
		if i > 10000 {
			return fmt.Errorf("chaos: %s never reached the old head %d", succ.id, head)
		}
		if _, err := succ.fol.PullOnce(context.Background()); err != nil {
			return fmt.Errorf("chaos: failover drain on %s: %w", succ.id, err)
		}
	}
	if err := succ.srv.Promote(); err != nil {
		return err
	}
	ld, err := replica.NewLeader(succ.backend.WAL(),
		replica.WithStateDir(succ.dir),
		replica.WithLeaderClock(c.clk),
		replica.WithFollowerTTL(clusterSoakTTL),
		replica.WithSnapshotSource(succ.backend),
	)
	if err != nil {
		return err
	}
	succ.ld, succ.fol = ld, nil
	succ.handler = c.memberHandler(succ, replica.Handler(ld, succ.srv.Handler()))
	sh.leaderIdx = nextIdx

	// The demoted leader rejoins as a follower and pins its retention on
	// the new leader immediately.
	c.attachClusterFollower(si, oldIdx)
	if _, err := old.fol.PullOnce(context.Background()); err != nil {
		return fmt.Errorf("chaos: re-homing %s: %w", old.id, err)
	}
	if reconcile {
		if err := c.reg.SetRole(old.id, cluster.RoleReplica); err != nil {
			return err
		}
		if err := c.reg.SetRole(succ.id, cluster.RoleLeader); err != nil {
			return err
		}
	}
	c.res.Failovers++
	return nil
}

// resyncStep advances the scripted orphaning: phase 1 kills the
// follower and drops its pin, then once the leader's log has provably
// compacted past it, phase 2 rejoins it through the snapshot-ship path
// and demands it stream normally again.
func (c *clusterSoak) resyncStep() error {
	sh := c.shards[c.resyncShard]
	ni := 1 - sh.leaderIdx
	n := sh.nodes[ni]
	switch c.resyncPhase {
	case 0:
		if !n.up || n.fol == nil {
			return nil // wait for a quiet moment on the target
		}
		c.resyncNode = ni
		c.resyncApplied = n.srv.DB().AppliedLSN()
		n.srv.Kill()
		n.up = false
		sh.leader().ld.Forget(n.id)
		c.resyncPhase = 1
	case 1:
		if c.resyncNode != ni {
			return nil // a failover moved leadership; the orphan keeps waiting
		}
		lead := sh.leader()
		if err := lead.backend.Checkpoint(); err != nil {
			return err
		}
		c.res.Checkpoints++
		if _, err := lead.backend.WAL().ReadAfter(c.resyncApplied, 1, 0); !errors.Is(err, wal.ErrCompacted) {
			return nil // the log has not outgrown the orphan yet; keep writing
		}
		// Proof first: a plain rejoin must be refused as unresumable.
		n.partitionedUntil = time.Time{} // a stale window must not mask the refusal
		if err := c.open(c.resyncShard, ni, false); err != nil {
			return err
		}
		if _, err := n.fol.PullOnce(context.Background()); !errors.Is(err, replica.ErrNeedsResync) {
			return fmt.Errorf("chaos: orphaned %s expected ErrNeedsResync, got %v", n.id, err)
		}
		n.srv.Kill()
		n.up = false
		// The real rejoin: fetch the leader's snapshot over the wire,
		// install it, recover from it, stream the tail.
		if _, err := replica.ResyncDataDir(context.Background(), n.id,
			leaderSender{c: c, shard: c.resyncShard}, n.dir); err != nil {
			return fmt.Errorf("chaos: snapshot-ship resync of %s: %w", n.id, err)
		}
		if err := c.open(c.resyncShard, ni, false); err != nil {
			return err
		}
		if _, err := n.fol.PullOnce(context.Background()); err != nil {
			return fmt.Errorf("chaos: %s first pull after resync: %w", n.id, err)
		}
		c.res.Resyncs++
		c.resyncPhase = 2
	}
	return nil
}

// clusterOp is one deterministic workload step against one category.
type clusterOp struct {
	app    int
	phone  int
	upload int // -1: participate
}

// buildClusterOps interleaves the two categories' workloads evenly, so
// both shards stay busy across every chaos window.
func buildClusterOps(phones, uploads int) []clusterOp {
	var perApp [2][]replOp
	for a := range perApp {
		perApp[a] = buildReplOps(phones, uploads)
	}
	var ops []clusterOp
	for i := 0; i < len(perApp[0]) || i < len(perApp[1]); i++ {
		for a := 0; a < 2; a++ {
			if i < len(perApp[a]) {
				ops = append(ops, clusterOp{app: a, phone: perApp[a][i].phone, upload: perApp[a][i].upload})
			}
		}
	}
	return ops
}

// applyClusterOp runs one workload op through h (the router). done=false
// means the shard was unavailable and the op must be retried.
func applyClusterOp(h transport.Handler, apps [2]clusterApp, op clusterOp, scheds [2][]*wire.Schedule) (bool, error) {
	app := apps[op.app]
	var m wire.Message
	if op.upload < 0 {
		m = &wire.Participate{
			UserID: fmt.Sprintf("%s-user-%d", app.id, op.phone),
			Token:  fmt.Sprintf("%s-token-%d", app.id, op.phone),
			AppID:  app.id,
			Loc:    wire.Location{Lat: app.lat, Lon: app.lon},
			Budget: 8,
		}
	} else {
		sched := scheds[op.app][op.phone]
		if sched == nil {
			return false, fmt.Errorf("chaos: upload before participation for %s phone %d", app.id, op.phone)
		}
		ms := soakEpoch.Add(time.Duration(op.upload+1) * time.Minute).UnixMilli()
		series := make([]wire.SensorSeries, 0, 4)
		for _, sensor := range []string{"temperature", "light", "microphone", "wifi"} {
			series = append(series, wire.SensorSeries{
				Sensor: sensor,
				Samples: []wire.SensorSample{
					{AtUnixMilli: ms, WindowMilli: 5000,
						Readings: []float64{40 + float64(op.phone) + float64(op.upload)/8}},
				},
			})
		}
		m = &wire.DataUpload{
			TaskID: sched.TaskID, AppID: sched.AppID, UserID: sched.UserID,
			ReportID: fmt.Sprintf("%s-%d-%d", app.id, op.phone, op.upload),
			Series:   series,
		}
	}
	resp, err := codecRoundTrip(h, m)
	if err != nil {
		return false, nil // shard unavailable through the router: retry
	}
	ack, ok := resp.(*wire.Ack)
	if !ok {
		return false, fmt.Errorf("chaos: op got %s reply", resp.Type())
	}
	if !ack.OK {
		if ack.Code == 503 {
			return false, nil
		}
		return false, fmt.Errorf("chaos: op refused: %d %s", ack.Code, ack.Message)
	}
	if op.upload < 0 {
		inner, err := wire.Decode(ack.Payload)
		if err != nil {
			return false, err
		}
		sched, ok := inner.(*wire.Schedule)
		if !ok {
			return false, fmt.Errorf("chaos: participation ack carried %s", inner.Type())
		}
		scheds[op.app][op.phone] = sched
	}
	return true, nil
}

// RunClusterSoak drives the 2-shard routed cluster through the seeded
// chaos schedule. See ClusterSoakConfig for the contract.
func RunClusterSoak(cfg ClusterSoakConfig) (*ClusterSoakResult, error) {
	if cfg.Phones <= 0 {
		cfg.Phones = 3
	}
	if cfg.Uploads <= 0 {
		cfg.Uploads = 5
	}
	if cfg.Kills < 0 {
		cfg.Kills = 0
	} else if cfg.Kills == 0 {
		cfg.Kills = 6
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = 2
	}
	if cfg.MinSteps <= 0 {
		cfg.MinSteps = 600
	}
	if cfg.BaseDir == "" {
		return nil, errors.New("chaos: cluster soak needs a base dir")
	}

	c := &clusterSoak{
		cfg:       cfg,
		clk:       vclock.NewVirtual(soakEpoch),
		rng:       rand.New(rand.NewSource(cfg.Seed ^ 0x0c1a57e4)),
		restartAt: map[[2]int]time.Time{},
	}
	apps := clusterApps()

	// Cluster map: two shards, four named members, the two category
	// routing keys. Rendezvous places the categories; if both land on
	// one shard, pin the second onto the other so each shard owns
	// exactly one category (the digest comparison depends on it).
	c.reg = cluster.NewRegistry(
		cluster.WithRegistryClock(c.clk),
		cluster.WithMemberTTL(clusterSoakTTL),
	)
	shardNames := [2]string{"shard-a", "shard-b"}
	for si, name := range shardNames {
		c.reg.AddShard(name)
		c.shards[si] = &clusterShard{name: name}
		for ni := 0; ni < 2; ni++ {
			id := fmt.Sprintf("%s-%d", name, ni)
			c.shards[si].nodes[ni] = &replNode{id: id, dir: filepath.Join(cfg.BaseDir, id)}
			role := cluster.RoleReplica
			if ni == 0 {
				role = cluster.RoleLeader
			}
			if err := c.reg.AddMember(cluster.Member{Name: id, Shard: name, Role: role, Addr: id}); err != nil {
				return nil, err
			}
		}
	}
	for a := range apps {
		c.reg.RegisterApp(apps[a].id, apps[a].category)
	}
	if c.reg.ShardFor(apps[0].category) == c.reg.ShardFor(apps[1].category) {
		other := shardNames[0]
		if c.reg.ShardFor(apps[0].category) == shardNames[0] {
			other = shardNames[1]
		}
		c.reg.PinKey(apps[1].category, other)
	}
	// appShard[a] is the index of the shard owning category a.
	var appShard [2]int
	for a := range apps {
		home := c.reg.ShardFor(apps[a].category)
		for si, name := range shardNames {
			if name == home {
				appShard[a] = si
			}
		}
	}

	routerReg := obs.NewRegistry()
	rt, err := cluster.NewRouter("router-0", c.reg,
		func(addr string) (cluster.Sender, error) { return clusterDialSender{c: c, name: addr}, nil },
		cluster.WithRouterClock(c.clk),
		// Base -1: no backoff sleeps — the driver is single-threaded on
		// virtual time, so a real sleep would deadlock the run.
		cluster.WithRouterRetry(transport.Retry{Attempts: 3, Base: -1, Seed: cfg.Seed + 7}),
		cluster.WithRouterMetrics(routerReg),
	)
	if err != nil {
		return nil, err
	}
	c.router = rt

	for si := range c.shards {
		for ni := range c.shards[si].nodes {
			if err := c.open(si, ni, ni == 0); err != nil {
				return nil, err
			}
		}
	}
	// Each category's app exists only on its owning shard — apps arrive
	// via operator provisioning, not the phone protocol.
	for a := range apps {
		if err := c.shards[appShard[a]].leader().srv.CreateApp(apps[a].store()); err != nil {
			return nil, err
		}
	}
	// One pull from every follower before chaos starts: the pulls
	// register acks with their leaders, pinning retention so the first
	// seeded checkpoint cannot compact records a follower still needs.
	for si := range c.shards {
		for _, n := range c.shards[si].nodes {
			if n.fol == nil {
				continue
			}
			if _, err := n.fol.PullOnce(context.Background()); err != nil {
				return nil, fmt.Errorf("chaos: initial pull on %s: %w", n.id, err)
			}
		}
	}

	ops := buildClusterOps(cfg.Phones, cfg.Uploads)
	var scheds [2][]*wire.Schedule
	for a := range scheds {
		scheds[a] = make([]*wire.Schedule, cfg.Phones)
	}
	routerHandler := rt.Handler()
	killsLeft := cfg.Kills
	partitionsLeft := cfg.Partitions
	var failoverDone [2]bool
	opIdx := 0

	anyDown := func() bool {
		for si := range c.shards {
			for ni, n := range c.shards[si].nodes {
				if !n.up && !c.isResyncOrphan(si, ni) {
					return true
				}
			}
		}
		return false
	}
	const maxSteps = 200000
	for step := 0; opIdx < len(ops) || killsLeft > 0 || anyDown() || c.resyncPhase < 2 || step < cfg.MinSteps; step++ {
		if step >= maxSteps {
			return nil, fmt.Errorf("chaos: no convergence after %d steps (op %d/%d, %d kills left, resync phase %d)",
				step, opIdx, len(ops), killsLeft, c.resyncPhase)
		}
		c.res.Steps = step + 1
		c.clk.Advance(time.Duration(10+c.rng.Intn(90)) * time.Millisecond)
		now := c.clk.Now()

		if err := c.restartDue(now); err != nil {
			return nil, err
		}
		// Kill -9 a random node (never the mid-script orphan).
		if killsLeft > 0 && (c.rng.Float64() < 0.02 || step >= cfg.MinSteps) {
			si, ni := c.rng.Intn(2), c.rng.Intn(2)
			if c.shards[si].nodes[ni].up && !c.isResyncOrphan(si, ni) {
				c.shards[si].nodes[ni].srv.Kill()
				c.shards[si].nodes[ni].up = false
				c.restartAt[[2]int{si, ni}] = now.Add(time.Duration(200+c.rng.Intn(600)) * time.Millisecond)
				killsLeft--
				c.res.Kills++
			}
		}
		// Timed partition: a follower loses its shard leader link.
		if partitionsLeft > 0 && c.rng.Float64() < 0.015 {
			si := c.rng.Intn(2)
			sh := c.shards[si]
			ni := 1 - sh.leaderIdx
			if sh.nodes[ni].up && !c.isResyncOrphan(si, ni) {
				sh.nodes[ni].partitionedUntil = now.Add(time.Duration(300+c.rng.Intn(1200)) * time.Millisecond)
				partitionsLeft--
				c.res.Partitions++
			}
		}
		// Explicit checkpoint on a random live node.
		if c.rng.Float64() < 0.03 {
			si, ni := c.rng.Intn(2), c.rng.Intn(2)
			if n := c.shards[si].nodes[ni]; n.up {
				if err := n.backend.Checkpoint(); err != nil {
					return nil, fmt.Errorf("chaos: checkpoint on %s: %w", n.id, err)
				}
				c.res.Checkpoints++
			}
		}
		// One planned failover per shard: the first reconciled into the
		// registry by the operator, the second left for the router to
		// discover through its probes.
		if !failoverDone[0] && opIdx >= len(ops)/3 {
			if err := c.failoverShard(0, true); err != nil {
				return nil, err
			}
			failoverDone[0] = true
		}
		if !failoverDone[1] && opIdx >= 2*len(ops)/3 {
			if err := c.failoverShard(1, false); err != nil {
				return nil, err
			}
			failoverDone[1] = true
		}
		// The scripted snapshot-ship orphaning, once the first failover
		// has settled.
		if failoverDone[0] && c.resyncPhase < 2 && opIdx >= len(ops)/2 {
			if err := c.resyncStep(); err != nil {
				return nil, err
			}
		}
		// Router heartbeats on a coarse seeded cadence.
		if c.rng.Float64() < 0.05 {
			rt.HeartbeatOnce(context.Background())
		}
		// Followers pull on their own cadence.
		for si := range c.shards {
			for _, n := range c.shards[si].nodes {
				if !n.up || n.fol == nil || now.Before(n.nextPullAt) {
					continue
				}
				if _, err := n.fol.PullOnce(context.Background()); err != nil {
					if errors.Is(err, replica.ErrNeedsResync) {
						return nil, fmt.Errorf("chaos: %s forced into resync (retention guard failed)", n.id)
					}
					c.res.PullErrors++
				}
				delay := n.fol.NextDelay()
				if delay < 10*time.Millisecond {
					delay = 10 * time.Millisecond
				}
				n.nextPullAt = now.Add(delay)
			}
		}
		// Rank reads routed by category through the router.
		if c.rng.Float64() < 0.1 {
			app := apps[c.rng.Intn(2)]
			resp, err := codecRoundTrip(routerHandler, &wire.RankRequest{
				UserID: "probe", Category: app.category,
			})
			if err == nil {
				switch resp.(type) {
				case *wire.RankResponse, *wire.Ack:
					c.res.RankProbes++
				default:
					return nil, fmt.Errorf("chaos: rank probe got %s reply", resp.Type())
				}
			}
		}
		// One workload op through the router, strictly in order.
		if opIdx < len(ops) && (step%4 == 0 || step >= cfg.MinSteps) {
			done, err := applyClusterOp(routerHandler, apps, ops[opIdx], scheds)
			if err != nil {
				return nil, err
			}
			if done {
				opIdx++
				c.res.Ops++
			} else {
				c.res.OpRetries++
			}
		}
	}

	// The router must have reconciled the unannounced failover into the
	// registry by now (via a 503 retry or a heartbeat).
	for si := range c.shards {
		want := c.shards[si].leader().id
		if got, ok := c.reg.LeaderOf(c.shards[si].name); !ok || got.Name != want {
			return nil, fmt.Errorf("chaos: registry says %s leads %s, cluster says %s",
				got.Name, c.shards[si].name, want)
		}
	}
	c.res.RouterFailovers = int(routerReg.Snapshot().Counters["sor_cluster_failovers_total"])
	if c.res.RouterFailovers == 0 {
		return nil, errors.New("chaos: the unannounced failover was never discovered by the router")
	}

	// Convergence: heal everything, fold each leader's features, drain
	// each follower to its shard head, and compare every node against
	// the category baseline.
	c.res.Digests = map[string]string{}
	for si := range c.shards {
		sh := c.shards[si]
		for _, n := range sh.nodes {
			n.partitionedUntil = time.Time{}
		}
		lead := sh.leader()
		lead.srv.Processor().Process()
		head := lead.backend.WAL().LastLSN()
		for _, n := range sh.nodes {
			if n.fol == nil {
				continue
			}
			for i := 0; n.srv.DB().AppliedLSN() < head; i++ {
				if i > 10000 {
					return nil, fmt.Errorf("chaos: %s never drained to head %d", n.id, head)
				}
				if _, err := n.fol.PullOnce(context.Background()); err != nil {
					return nil, fmt.Errorf("chaos: final drain on %s: %w", n.id, err)
				}
			}
		}
	}
	for a := range apps {
		sh := c.shards[appShard[a]]
		want, err := runClusterBaseline(filepath.Join(cfg.BaseDir, "baseline-"+apps[a].id), cfg, apps[a])
		if err != nil {
			return nil, err
		}
		for _, n := range sh.nodes {
			if got := StateDigest(n.srv.DB(), apps[a].category, apps[a].id); got != want {
				return nil, fmt.Errorf("chaos: %s digest %.12s diverged from %s baseline %.12s",
					n.id, got, apps[a].id, want)
			}
		}
		c.res.Digests[apps[a].category] = want
	}
	for si := range c.shards {
		for _, n := range c.shards[si].nodes {
			_ = n.backend.Close()
		}
	}
	return &c.res, nil
}

// runClusterBaseline applies one category's exact op stream to a single
// never-crashed node and returns its digest.
func runClusterBaseline(dir string, cfg ClusterSoakConfig, app clusterApp) (string, error) {
	backend := store.NewDurableBackend(dir, store.WithSnapshotInterval(time.Hour))
	srv, err := server.New(server.Config{
		Storage: backend,
		Now:     func() time.Time { return soakEpoch },
		Catalog: server.DefaultCatalog(),
	})
	if err != nil {
		return "", err
	}
	if err := srv.Open(); err != nil {
		return "", err
	}
	defer srv.Close()
	if err := srv.CreateApp(app.store()); err != nil {
		return "", err
	}
	apps := [2]clusterApp{app, app}
	var scheds [2][]*wire.Schedule
	for a := range scheds {
		scheds[a] = make([]*wire.Schedule, cfg.Phones)
	}
	for _, op := range buildReplOps(cfg.Phones, cfg.Uploads) {
		done, err := applyClusterOp(srv.Handler(), apps, clusterOp{app: 0, phone: op.phone, upload: op.upload}, scheds)
		if err != nil {
			return "", fmt.Errorf("chaos: baseline op: %w", err)
		}
		if !done {
			return "", errors.New("chaos: baseline op deferred with no chaos running")
		}
	}
	srv.Processor().Process()
	return StateDigest(srv.DB(), app.category, app.id), nil
}

// Summary renders the soak telemetry for logs.
func (r *ClusterSoakResult) Summary() string {
	return fmt.Sprintf(
		"%d ops in %d steps (%d deferred); %d kills, %d partitions, %d checkpoints; "+
			"%d planned failovers (%d router-discovered), %d snapshot-ship resyncs; "+
			"%d pull errors, %d rank probes",
		r.Ops, r.Steps, r.OpRetries, r.Kills, r.Partitions, r.Checkpoints,
		r.Failovers, r.RouterFailovers, r.Resyncs, r.PullErrors, r.RankProbes)
}
