package chaos

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"sor/internal/device"
	"sor/internal/frontend"
	"sor/internal/server"
	"sor/internal/store"
	"sor/internal/transport"
	"sor/internal/world"
)

// soakConfig sizes the fleet: the full soak for `make chaos`, a trimmed
// one for -short CI runs.
func soakConfig(t *testing.T) Config {
	t.Helper()
	cfg := Config{Phones: 6, Budget: 4, Seed: soakSeed(t, 42)}
	if testing.Short() {
		cfg.Phones = 3
		cfg.Budget = 3
	}
	return cfg
}

// TestSoakConvergesByteIdenticalUnderChaos is the headline exactly-once
// proof: the same fleet run twice — once over a clean network, once with
// 30 % request loss, 30 % ack loss, latency spikes, and a partition
// dropping on it mid-upload — must converge to the same feature matrix
// (bit-for-bit float values), the same coverage timeline, and the same
// per-user budget ledger, with every report stored exactly once.
func TestSoakConvergesByteIdenticalUnderChaos(t *testing.T) {
	base := soakConfig(t)
	clean, err := RunSoak(base)
	if err != nil {
		t.Fatalf("fault-free run: %v", err)
	}
	if clean.Stored != base.Phones {
		t.Fatalf("fault-free run stored %d reports, want %d", clean.Stored, base.Phones)
	}
	if len(clean.Features) == 0 {
		t.Fatal("fault-free run produced no features")
	}

	faulty := base
	faulty.RequestLoss = 0.3
	faulty.AckLoss = 0.3
	faulty.SpikeProb = 0.1
	faulty.Spike = 2 * time.Millisecond
	faulty.Partition = 150 * time.Millisecond
	if testing.Short() {
		faulty.Partition = 50 * time.Millisecond
	}
	chaotic, err := RunSoak(faulty)
	if err != nil {
		t.Fatalf("chaotic run: %v", err)
	}
	t.Logf("clean:   %s", clean.Summary())
	t.Logf("chaotic: %s", chaotic.Summary())

	// The chaos must have actually bitten, or the test proves nothing.
	if chaotic.Fault.RequestsLost == 0 {
		t.Fatal("no requests were lost — chaos did not engage")
	}
	if chaotic.Fault.ResponsesLost == 0 {
		t.Fatal("no acks were lost — the delivered-but-unacked path went unexercised")
	}
	if chaotic.Fault.Partitioned == 0 {
		t.Fatal("no request hit the partition")
	}
	if chaotic.Client.Retries == 0 {
		t.Fatal("the client never retried — the faulty run was effectively clean")
	}

	if chaotic.Pending != 0 {
		t.Fatalf("%d reports still stranded in outboxes after flush\n%s",
			chaotic.Pending, repro(t, base.Seed))
	}
	// Exactly once: however many retransmissions the loss forced, the
	// server stored one report per phone.
	if chaotic.Stored != base.Phones {
		t.Fatalf("chaotic run stored %d reports, want exactly %d\n%s",
			chaotic.Stored, base.Phones, repro(t, base.Seed))
	}
	if diff := DiffState(clean, chaotic); diff != "" {
		t.Fatalf("chaotic run diverged from fault-free run: %s\n%s",
			diff, repro(t, base.Seed))
	}
}

// pingRig is the one-phone harness for the partition-recovery regression.
type pingRig struct {
	srv    *server.Server
	fi     *transport.FaultInjector
	fe     *frontend.Frontend
	ts     *httptest.Server
	client *transport.Client
}

func newPingRig(t *testing.T) *pingRig {
	t.Helper()
	w, err := world.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	place, err := w.Place(world.Starbucks)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		DB:      store.New(),
		Now:     func() time.Time { return soakEpoch },
		Catalog: server.DefaultCatalog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.CreateApp(store.Application{
		ID: soakAppID, Creator: "chaos-harness",
		Category: world.CategoryCoffee, Place: world.Starbucks,
		Lat: place.Loc.Lat, Lon: place.Loc.Lon, RadiusM: 60,
		Script: soakScript, PeriodSec: 10800,
	}); err != nil {
		t.Fatal(err)
	}
	h, err := transport.NewHTTPHandler(srv.Handler())
	if err != nil {
		t.Fatal(err)
	}
	fi := transport.NewFaultInjector(transport.FaultConfig{Seed: 7})
	ts := httptest.NewServer(fi.Handler(h))
	t.Cleanup(ts.Close)
	client, err := transport.NewClient(ts.URL,
		transport.WithRetries(1),
		transport.WithBackoff(time.Millisecond),
		transport.WithBackoffCap(5*time.Millisecond),
		transport.WithRetrySeed(7))
	if err != nil {
		t.Fatal(err)
	}
	phone, err := device.New(device.Config{
		ID: "ping-phone", Token: "ping-token",
		Traj: device.Trajectory{Place: place, Enter: soakEpoch, Leave: soakEpoch.Add(3 * time.Hour)},
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	fe, err := frontend.New(phone, client,
		frontend.WithOutboxBackoff(time.Millisecond, 5*time.Millisecond),
		frontend.WithOutboxSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	return &pingRig{srv: srv, fi: fi, fe: fe, ts: ts, client: client}
}

// TestPingMidPartitionRecoveredByOutboxDrain pins the recovery choreography
// end to end over real HTTP: a partition strands a finished task's report
// in the outbox; a push-channel ping *during* the partition fails without
// losing the report; the same ping after healing drains the outbox and the
// task completes.
func TestPingMidPartitionRecoveredByOutboxDrain(t *testing.T) {
	rig := newPingRig(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	sched, err := rig.fe.Participate(ctx, "ping-user", soakAppID, 3, 3*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	rig.fi.StartPartition()
	if _, err := rig.fe.ExecuteSchedule(ctx, sched); err != nil {
		t.Fatalf("execute under partition must park, not fail: %v", err)
	}
	info, ok := rig.fe.Task(sched.TaskID)
	if !ok || info.State != frontend.TaskStateUploadPending {
		t.Fatalf("task state = %v, want upload-pending", info.State)
	}
	if got := rig.fe.Outbox().Pending(); got != 1 {
		t.Fatalf("outbox pending = %d, want 1", got)
	}

	// Mid-partition ping: fails (the network is down), loses nothing.
	if err := rig.fe.HandlePing(ctx); err == nil {
		t.Fatal("ping through a partition must fail")
	} else if !errors.Is(errors.Unwrap(err), transport.ErrInjected) && !isInjectedDeep(err) {
		t.Logf("note: partition surfaced as %v", err)
	}
	if got := rig.fe.Outbox().Pending(); got != 1 {
		t.Fatalf("outbox pending after failed ping = %d, want 1", got)
	}
	if got := rig.srv.DB().PendingUploads(); got != 0 {
		t.Fatalf("server stored %d uploads through a partition", got)
	}

	// Heal, ping again: the wake-up doubles as the drain trigger.
	rig.fi.HealPartition()
	if err := rig.fe.HandlePing(ctx); err != nil {
		t.Fatalf("ping after heal: %v", err)
	}
	if got := rig.fe.Outbox().Pending(); got != 0 {
		t.Fatalf("outbox pending after recovery = %d, want 0", got)
	}
	info, _ = rig.fe.Task(sched.TaskID)
	if info.State != frontend.TaskStateDone {
		t.Fatalf("task state after recovery = %v, want done", info.State)
	}
	if got := rig.srv.DB().PendingUploads(); got != 1 {
		t.Fatalf("server pending uploads = %d, want 1", got)
	}
}

// isInjectedDeep walks the error chain for the injector's marker. The
// partition error crosses an HTTP connection abort, so the marker may not
// survive; the check is advisory (see the t.Logf above).
func isInjectedDeep(err error) bool {
	for err != nil {
		if errors.Is(err, transport.ErrInjected) {
			return true
		}
		err = errors.Unwrap(err)
	}
	return false
}

// TestSoakDeterministicAcrossRepeats pins the harness itself: two chaotic
// runs with the same seed are the same experiment — without this, a green
// convergence test could be luck.
func TestSoakDeterministicAcrossRepeats(t *testing.T) {
	if testing.Short() {
		t.Skip("repeat determinism covered by the full soak")
	}
	cfg := soakConfig(t)
	cfg.RequestLoss = 0.3
	cfg.AckLoss = 0.3
	cfg.Partition = 100 * time.Millisecond
	a, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if diff := DiffState(a, b); diff != "" {
		t.Fatalf("two same-seed chaotic runs diverged: %s\n%s", diff, repro(t, cfg.Seed))
	}
}

// TestDiffStateCatchesDivergence sanity-checks the comparator the soak
// leans on.
func TestDiffStateCatchesDivergence(t *testing.T) {
	a := &Result{Features: []store.FeatureRow{{Place: "p", Feature: "f", Value: 1.0, Samples: 2}}}
	b := &Result{Features: []store.FeatureRow{{Place: "p", Feature: "f", Value: 1.0 + 1e-15, Samples: 2}}}
	if DiffState(a, a) != "" {
		t.Fatal("identical results reported as different")
	}
	if DiffState(a, b) == "" {
		t.Fatal("1-ulp float drift must be caught")
	}
	c := &Result{
		Features: a.Features,
		Executed: []int{1, 2},
	}
	if DiffState(a, c) == "" {
		t.Fatal("executed-instant divergence must be caught")
	}
	_ = fmt.Sprintf("%s", a.Summary()) // Summary must not panic on sparse results
}
