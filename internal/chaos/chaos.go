// Package chaos is the end-to-end harness proving SOR's exactly-once
// ingest under a faulty network. It stands up a real sensing server behind
// a transport.FaultInjector, drives a fleet of simulated phones through
// participation → sensing → upload while requests and acks are being
// dropped and the network partitions, and then demands that the converged
// server state — feature matrix, coverage timeline, per-user budget
// ledger — is byte-identical to a fault-free run of the same fleet.
//
// The harness is a plain package (not _test) so both the race-enabled
// soak suite and `sorsim -sweep chaos` can run the same experiment.
package chaos

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"
	"sync"
	"time"

	"sor/internal/device"
	"sor/internal/frontend"
	"sor/internal/obs"
	"sor/internal/schedule"
	"sor/internal/store"
	"sor/internal/transport"
	"sor/internal/wire"
	"sor/internal/world"
)

// soakEpoch anchors the virtual experiment clock. It is fixed — not
// time.Now() — so schedules, sample timestamps, and therefore the whole
// converged state are reproducible across runs.
var soakEpoch = time.Date(2013, time.November, 15, 11, 0, 0, 0, time.UTC)

// soakScript is the sensing task: three scalar sensors per instant, enough
// to light up three feature rows without needing GPS bursts.
const soakScript = `
	local t = get_temperature_readings(2, 5000)
	local w = get_wifi_rssi(2, 5000)
	local n = get_noise_readings(2, 5000)
	return #t + #w + #n
`

// soakAppID names the one application the soak fleet joins.
const soakAppID = "app-chaos"

// Config parameterizes one soak run. The zero value of the fault fields is
// a fault-free run — the baseline the chaotic run must converge to.
type Config struct {
	// Phones is the fleet size (default 4).
	Phones int
	// Budget is each phone's sensing budget (default 4).
	Budget int
	// Seed drives every random stream in the run: the fault schedule, the
	// phones' sensor noise, and the retry jitter.
	Seed int64
	// RequestLoss is the probability an upload (or any request) is dropped
	// before the server sees it.
	RequestLoss float64
	// AckLoss is the probability a request is fully processed but its ack
	// never returns — the case that forces retransmission of already-stored
	// reports.
	AckLoss float64
	// SpikeProb/Spike inject latency spikes on surviving requests.
	SpikeProb float64
	Spike     time.Duration
	// Partition cuts the network for this long just as the fleet starts
	// uploading; zero skips the partition.
	Partition time.Duration
	// Timeout bounds the whole run (default 60 s).
	Timeout time.Duration
	// Observer, when set, instruments the whole run — server, client, and
	// every phone's outbox share it, so its registry aggregates the fleet
	// and its tracer sees one request's spans across all hops.
	Observer *obs.Observer
}

// Result is one soak run's converged state plus its delivery telemetry.
type Result struct {
	// Features is the category's feature matrix with the wall-clock Updated
	// stamp zeroed — everything else must match the fault-free run bit for
	// bit.
	Features []store.FeatureRow
	// Executed is the app's coverage timeline (sorted executed instants).
	Executed []int
	// Ledger is the per-user budget accounting.
	Ledger map[string]schedule.UserLedger
	// Stored counts uploads the processor decoded — with exactly-once
	// ingest this equals the fleet size no matter how many retransmissions
	// the chaos forced.
	Stored int
	// Pending counts reports still stranded in device outboxes (0 on a
	// converged run).
	Pending int
	// SeenReports is the app's dedup window (sorted ReportIDs): two runs
	// that stored the same reports must have marked the same IDs.
	SeenReports []string
	// UploadsStored counts raw uploads the store holds (pending plus
	// archived) — the store-level exactly-once check, immune to the
	// processor re-counting refolds after a crash recovery.
	UploadsStored int
	// Fault, Client, Outbox are the run's delivery counters.
	Fault  transport.FaultStats
	Client transport.ClientStats
	Outbox frontend.OutboxStats
}

// RunSoak drives one fleet through the faulty network and returns the
// converged state. The sequence is: clean join (faults off, so every run
// computes identical schedules), chaos on, a partition dropping on the
// fleet as it uploads, concurrent task execution parking reports in device
// outboxes, heal, push-style ping wake-ups, and flush-until-drained while
// request and ack loss continue — then one processing pass and a state
// snapshot.
func RunSoak(cfg Config) (*Result, error) {
	if cfg.Phones <= 0 {
		cfg.Phones = 4
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 4
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}

	w, err := world.Canonical()
	if err != nil {
		return nil, err
	}
	place, err := w.Place(world.Starbucks)
	if err != nil {
		return nil, err
	}
	srv, err := newSoakServer(nil, cfg.Observer)
	if err != nil {
		return nil, err
	}
	var handlerOpts []transport.HandlerOption
	if cfg.Observer != nil {
		handlerOpts = append(handlerOpts, transport.WithHandlerObserver(cfg.Observer))
	}
	httpHandler, err := transport.NewHTTPHandler(srv.Handler(), handlerOpts...)
	if err != nil {
		return nil, err
	}
	fi := transport.NewFaultInjector(transport.FaultConfig{
		Seed:         cfg.Seed,
		RequestLoss:  cfg.RequestLoss,
		ResponseLoss: cfg.AckLoss,
		SpikeProb:    cfg.SpikeProb,
		Spike:        cfg.Spike,
	})
	ts := httptest.NewServer(fi.Handler(httpHandler))
	defer ts.Close()

	// Tight client retry budget: the soak wants the *outbox* to absorb the
	// faults, so individual sends give up fast and park the report.
	clientOpts := []transport.ClientOption{
		transport.WithRetries(3),
		transport.WithBackoff(time.Millisecond),
		transport.WithBackoffCap(20 * time.Millisecond),
		transport.WithRetrySeed(cfg.Seed),
	}
	if cfg.Observer != nil {
		clientOpts = append(clientOpts, transport.WithObserver(cfg.Observer))
	}
	client, err := transport.NewClient(ts.URL, clientOpts...)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
	defer cancel()

	// Join phase, faults off: every run — chaotic or clean — must hand the
	// fleet identical schedules, or "byte-identical convergence" would be
	// comparing different experiments.
	fi.SetEnabled(false)
	type soakPhone struct {
		fe    *frontend.Frontend
		sched *wire.Schedule
	}
	phones := make([]soakPhone, cfg.Phones)
	for i := range phones {
		phone, err := device.New(device.Config{
			ID:    fmt.Sprintf("chaos-phone-%d", i),
			Token: fmt.Sprintf("chaos-token-%d", i),
			Traj:  device.Trajectory{Place: place, Enter: soakEpoch, Leave: soakEpoch.Add(3 * time.Hour)},
			Seed:  cfg.Seed + int64(i),
		})
		if err != nil {
			return nil, err
		}
		feOpts := []frontend.Option{
			frontend.WithOutboxBackoff(time.Millisecond, 20*time.Millisecond),
			frontend.WithOutboxSeed(cfg.Seed + int64(i)),
		}
		if cfg.Observer != nil {
			feOpts = append(feOpts, frontend.WithObserver(cfg.Observer))
		}
		fe, err := frontend.New(phone, client, feOpts...)
		if err != nil {
			return nil, err
		}
		sched, err := fe.Participate(ctx, fmt.Sprintf("chaos-user-%d", i), soakAppID, cfg.Budget, 3*time.Hour)
		if err != nil {
			return nil, fmt.Errorf("chaos: phone %d join: %w", i, err)
		}
		phones[i] = soakPhone{fe: fe, sched: sched}
	}

	// Chaos on. The partition drops on the fleet right as it starts
	// sensing, so first upload attempts fail and reports park in outboxes.
	fi.SetEnabled(true)
	if cfg.Partition > 0 {
		heal := fi.PartitionFor(cfg.Partition)
		defer heal.Stop()
	}
	execErrs := make([]error, cfg.Phones)
	var wg sync.WaitGroup
	for i := range phones {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, execErrs[i] = phones[i].fe.ExecuteSchedule(ctx, phones[i].sched)
		}(i)
	}
	wg.Wait()
	for i, err := range execErrs {
		// Transport failures park the report and return success; an error
		// here means the server *refused* a report, which chaos never
		// excuses.
		if err != nil {
			return nil, fmt.Errorf("chaos: phone %d execute: %w", i, err)
		}
	}

	// Recovery: heal (idempotent if the timer already fired), deliver the
	// push-channel wake-up, and flush until every outbox drains — with
	// request/ack loss still active, so the drain itself is chaotic.
	fi.HealPartition()
	flushErrs := make([]error, cfg.Phones)
	for i := range phones {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Best-effort ping: it both announces the phone and triggers an
			// opportunistic drain; the flush below retries regardless.
			_ = phones[i].fe.HandlePing(ctx)
			flushErrs[i] = phones[i].fe.FlushOutbox(ctx)
		}(i)
	}
	wg.Wait()
	for i, err := range flushErrs {
		if err != nil {
			return nil, fmt.Errorf("chaos: phone %d flush: %w", i, err)
		}
	}

	srv.Processor().Process()
	stored, decodeErrs := srv.Processor().Stats()
	if decodeErrs > 0 {
		return nil, fmt.Errorf("chaos: %d uploads failed to decode", decodeErrs)
	}

	res := &Result{
		Executed:      srv.ExecutedInstants(soakAppID),
		Ledger:        srv.BudgetLedger(soakAppID),
		Stored:        stored,
		SeenReports:   srv.DB().SeenReportIDs(soakAppID),
		UploadsStored: srv.DB().UploadCount(),
		Fault:         fi.Stats(),
		Client:        client.Stats(),
	}
	for _, row := range srv.DB().FeaturesByCategory(world.CategoryCoffee) {
		row.Updated = time.Time{}
		res.Features = append(res.Features, row)
	}
	for _, p := range phones {
		ob := p.fe.Outbox()
		res.Pending += ob.Pending()
		s := ob.Stats()
		res.Outbox.Enqueued += s.Enqueued
		res.Outbox.Delivered += s.Delivered
		res.Outbox.DroppedOverflow += s.DroppedOverflow
		res.Outbox.DroppedRefused += s.DroppedRefused
		res.Outbox.DrainPasses += s.DrainPasses
		res.Outbox.BatchesSent += s.BatchesSent
	}
	return res, nil
}

// DiffState compares two runs' converged server state and returns a
// description of the first difference, or "" when they are byte-identical.
// Feature values are compared by their IEEE-754 bit patterns: "close
// enough" floats would hide an ingest path that feeds extractors in
// arrival order or stores a retransmission twice.
func DiffState(a, b *Result) string {
	if len(a.Features) != len(b.Features) {
		return fmt.Sprintf("feature rows: %d vs %d", len(a.Features), len(b.Features))
	}
	for i := range a.Features {
		fa, fb := a.Features[i], b.Features[i]
		if fa.Category != fb.Category || fa.Place != fb.Place || fa.Feature != fb.Feature {
			return fmt.Sprintf("feature[%d] identity: %s/%s/%s vs %s/%s/%s",
				i, fa.Category, fa.Place, fa.Feature, fb.Category, fb.Place, fb.Feature)
		}
		if math.Float64bits(fa.Value) != math.Float64bits(fb.Value) {
			return fmt.Sprintf("feature %s/%s value bits: %x (%v) vs %x (%v)",
				fa.Place, fa.Feature, math.Float64bits(fa.Value), fa.Value,
				math.Float64bits(fb.Value), fb.Value)
		}
		if fa.Samples != fb.Samples {
			return fmt.Sprintf("feature %s/%s samples: %d vs %d",
				fa.Place, fa.Feature, fa.Samples, fb.Samples)
		}
	}
	if len(a.Executed) != len(b.Executed) {
		return fmt.Sprintf("executed instants: %d vs %d", len(a.Executed), len(b.Executed))
	}
	for i := range a.Executed {
		if a.Executed[i] != b.Executed[i] {
			return fmt.Sprintf("executed[%d]: %d vs %d", i, a.Executed[i], b.Executed[i])
		}
	}
	if len(a.Ledger) != len(b.Ledger) {
		return fmt.Sprintf("ledger users: %d vs %d", len(a.Ledger), len(b.Ledger))
	}
	for user, la := range a.Ledger {
		lb, ok := b.Ledger[user]
		if !ok {
			return fmt.Sprintf("ledger user %s missing in second run", user)
		}
		if la != lb {
			return fmt.Sprintf("ledger %s: %+v vs %+v", user, la, lb)
		}
	}
	if len(a.SeenReports) != len(b.SeenReports) {
		return fmt.Sprintf("dedup window: %d vs %d report ids", len(a.SeenReports), len(b.SeenReports))
	}
	for i := range a.SeenReports {
		if a.SeenReports[i] != b.SeenReports[i] {
			return fmt.Sprintf("dedup window[%d]: %s vs %s", i, a.SeenReports[i], b.SeenReports[i])
		}
	}
	if a.UploadsStored != b.UploadsStored {
		return fmt.Sprintf("stored uploads: %d vs %d", a.UploadsStored, b.UploadsStored)
	}
	return ""
}

// Summary renders the run's delivery telemetry for human eyes (sorsim's
// chaos sweep and verbose soak logs).
func (r *Result) Summary() string {
	return fmt.Sprintf(
		"stored %d reports (outbox: %d enqueued, %d delivered, %d drain passes; "+
			"faults: %d/%d requests lost, %d acks lost, %d refused by partition; "+
			"client: %d sends, %d retries)",
		r.Stored,
		r.Outbox.Enqueued, r.Outbox.Delivered, r.Outbox.DrainPasses,
		r.Fault.RequestsLost, r.Fault.Requests, r.Fault.ResponsesLost, r.Fault.Partitioned,
		r.Client.Sends, r.Client.Retries)
}
