package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"sor/internal/device"
	"sor/internal/frontend"
	"sor/internal/server"
	"sor/internal/store"
	"sor/internal/transport"
	"sor/internal/wire"
	"sor/internal/world"
)

// CrashConfig parameterizes a crash-restart soak: the PR-3 fault schedule
// plus a durable backend and a number of process kills sprayed across the
// run. Kills == 0 is the never-crashed baseline the killed runs must
// match exactly.
type CrashConfig struct {
	Config
	// DataDir roots the durable backend (snapshot + WAL). Required.
	DataDir string
	// Kills is how many times the server process is killed and recovered
	// mid-run (default 3).
	Kills int
	// CheckpointInterval is the backend's snapshot cadence. Short (the
	// 75 ms default) so kills land before, during, and after checkpoints.
	CheckpointInterval time.Duration
	// WALSegmentBytes keeps segments small so kills also land across
	// segment rotations (default 4096).
	WALSegmentBytes int64
}

// hostSwitch is the phones' route to whichever server incarnation is
// currently alive: a RoundTripper rewriting every request onto the live
// httptest listener. An empty target (mid-restart) fails the request the
// way a dead server would; the outbox absorbs it like any other fault.
type hostSwitch struct {
	mu   sync.RWMutex
	host string

	counting atomic.Bool  // armed after the clean join phase
	requests atomic.Int64 // post-arm request count; kill points key on it
}

func (s *hostSwitch) set(host string) {
	s.mu.Lock()
	s.host = host
	s.mu.Unlock()
}

func (s *hostSwitch) RoundTrip(req *http.Request) (*http.Response, error) {
	if s.counting.Load() {
		s.requests.Add(1)
	}
	s.mu.RLock()
	host := s.host
	s.mu.RUnlock()
	if host == "" {
		return nil, errors.New("chaos: server is down")
	}
	clone := req.Clone(req.Context())
	clone.URL.Scheme = "http"
	clone.URL.Host = host
	clone.Host = host
	return http.DefaultTransport.RoundTrip(clone)
}

// crashHarness owns the restartable server side: the durable data dir,
// the live server incarnation, and the fault injector that survives
// every restart (so one seeded fault stream spans the whole run).
type crashHarness struct {
	cfg CrashConfig
	fi  *transport.FaultInjector
	sw  *hostSwitch

	mu       sync.Mutex
	srv      *server.Server
	ts       *httptest.Server
	restarts int
}

// start boots a server incarnation: recover the store from DataDir,
// rebuild scheduling state, and route the phones at the new listener.
func (h *crashHarness) start() error {
	backend := store.NewDurableBackend(h.cfg.DataDir,
		store.WithSnapshotInterval(h.cfg.CheckpointInterval),
		store.WithSegmentBytes(h.cfg.WALSegmentBytes),
	)
	srv, err := server.New(server.Config{
		Storage:  backend,
		Now:      func() time.Time { return soakEpoch },
		Catalog:  server.DefaultCatalog(),
		Observer: h.cfg.Observer,
	})
	if err != nil {
		return err
	}
	if err := srv.Open(); err != nil {
		return fmt.Errorf("chaos: recovering server: %w", err)
	}
	var handlerOpts []transport.HandlerOption
	if h.cfg.Observer != nil {
		handlerOpts = append(handlerOpts, transport.WithHandlerObserver(h.cfg.Observer))
	}
	httpHandler, err := transport.NewHTTPHandler(srv.Handler(), handlerOpts...)
	if err != nil {
		return err
	}
	h.srv = srv
	h.ts = httptest.NewServer(h.fi.Handler(httpHandler))
	h.sw.set(h.ts.Listener.Addr().String())
	return nil
}

// restart kills the live incarnation the way a crash would — no final
// checkpoint, no WAL flush, listener gone — then recovers a fresh one
// from whatever the dead process left on disk.
func (h *crashHarness) restart() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sw.set("")
	h.srv.Kill()
	h.ts.Close()
	h.restarts++
	return h.start()
}

// stop shuts the current incarnation down cleanly.
func (h *crashHarness) stop() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.ts != nil {
		h.ts.Close()
	}
	if h.srv != nil {
		_ = h.srv.Close()
	}
}

// RunCrashSoak drives the PR-3 chaos fleet against a durable server that
// is killed and recovered cfg.Kills times mid-run, and returns the
// converged state. The exactly-once contract under test: every report the
// server acked survives every kill (ack-after-write), no report is stored
// or budget-charged twice across recoveries, and the converged state is
// bit-identical to a never-killed run of the same seed.
func RunCrashSoak(cfg CrashConfig) (*Result, error) {
	if cfg.Phones <= 0 {
		cfg.Phones = 4
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 4
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 120 * time.Second
	}
	if cfg.Kills < 0 {
		cfg.Kills = 0
	}
	if cfg.CheckpointInterval <= 0 {
		cfg.CheckpointInterval = 75 * time.Millisecond
	}
	if cfg.WALSegmentBytes <= 0 {
		cfg.WALSegmentBytes = 4096
	}
	if cfg.DataDir == "" {
		return nil, errors.New("chaos: crash soak needs a data dir")
	}

	w, err := world.Canonical()
	if err != nil {
		return nil, err
	}
	place, err := w.Place(world.Starbucks)
	if err != nil {
		return nil, err
	}
	h := &crashHarness{
		cfg: cfg,
		sw:  &hostSwitch{},
		fi: transport.NewFaultInjector(transport.FaultConfig{
			Seed:         cfg.Seed,
			RequestLoss:  cfg.RequestLoss,
			ResponseLoss: cfg.AckLoss,
			SpikeProb:    cfg.SpikeProb,
			Spike:        cfg.Spike,
		}),
	}
	if err := h.start(); err != nil {
		return nil, err
	}
	defer h.stop()
	if err := h.srv.CreateApp(store.Application{
		ID:       soakAppID,
		Creator:  "chaos-harness",
		Category: world.CategoryCoffee,
		Place:    world.Starbucks,
		Lat:      place.Loc.Lat, Lon: place.Loc.Lon,
		RadiusM:   60,
		Script:    soakScript,
		PeriodSec: 10800,
	}); err != nil {
		return nil, err
	}

	clientOpts := []transport.ClientOption{
		transport.WithRetries(3),
		transport.WithBackoff(time.Millisecond),
		transport.WithBackoffCap(20 * time.Millisecond),
		transport.WithRetrySeed(cfg.Seed),
		transport.WithHTTPClient(&http.Client{Transport: h.sw}),
	}
	if cfg.Observer != nil {
		clientOpts = append(clientOpts, transport.WithObserver(cfg.Observer))
	}
	// The base URL is a placeholder: hostSwitch reroutes every request to
	// the live incarnation.
	client, err := transport.NewClient("http://sor-crash.invalid", clientOpts...)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
	defer cancel()

	// Clean join phase: faults off, kills unarmed, so every run computes
	// identical schedules (see RunSoak).
	h.fi.SetEnabled(false)
	type soakPhone struct {
		fe    *frontend.Frontend
		sched *wire.Schedule
	}
	phones := make([]soakPhone, cfg.Phones)
	for i := range phones {
		phone, err := device.New(device.Config{
			ID:    fmt.Sprintf("chaos-phone-%d", i),
			Token: fmt.Sprintf("chaos-token-%d", i),
			Traj:  device.Trajectory{Place: place, Enter: soakEpoch, Leave: soakEpoch.Add(3 * time.Hour)},
			Seed:  cfg.Seed + int64(i),
		})
		if err != nil {
			return nil, err
		}
		feOpts := []frontend.Option{
			frontend.WithOutboxBackoff(time.Millisecond, 20*time.Millisecond),
			frontend.WithOutboxSeed(cfg.Seed + int64(i)),
		}
		if cfg.Observer != nil {
			feOpts = append(feOpts, frontend.WithObserver(cfg.Observer))
		}
		fe, err := frontend.New(phone, client, feOpts...)
		if err != nil {
			return nil, err
		}
		sched, err := fe.Participate(ctx, fmt.Sprintf("chaos-user-%d", i), soakAppID, cfg.Budget, 3*time.Hour)
		if err != nil {
			return nil, fmt.Errorf("chaos: phone %d join: %w", i, err)
		}
		phones[i] = soakPhone{fe: fe, sched: sched}
	}

	// Chaos on: network faults and the kill controller together. Kill
	// points are request-count thresholds drawn from the seed, with a time
	// fallback so a quiet network cannot stall the controller; where kills
	// land does not need to be reproducible — the contract is that the
	// converged state is identical NO MATTER where they land.
	h.fi.SetEnabled(true)
	h.sw.counting.Store(true)
	if cfg.Partition > 0 {
		heal := h.fi.PartitionFor(cfg.Partition)
		defer heal.Stop()
	}
	killErr := make(chan error, 1)
	killsDone := make(chan struct{})
	go func() {
		defer close(killsDone)
		rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5deece66d))
		for k := 0; k < cfg.Kills; k++ {
			target := h.sw.requests.Load() + 2 + rng.Int63n(16)
			deadline := time.Now().Add(400 * time.Millisecond)
			for h.sw.requests.Load() < target && time.Now().Before(deadline) && ctx.Err() == nil {
				time.Sleep(2 * time.Millisecond)
			}
			if ctx.Err() != nil {
				return
			}
			if err := h.restart(); err != nil {
				killErr <- err
				return
			}
		}
	}()

	execErrs := make([]error, cfg.Phones)
	var wg sync.WaitGroup
	for i := range phones {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, execErrs[i] = phones[i].fe.ExecuteSchedule(ctx, phones[i].sched)
		}(i)
	}
	wg.Wait()
	for i, err := range execErrs {
		if err != nil {
			return nil, fmt.Errorf("chaos: phone %d execute: %w", i, err)
		}
	}

	h.fi.HealPartition()
	flushErrs := make([]error, cfg.Phones)
	for i := range phones {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = phones[i].fe.HandlePing(ctx)
			flushErrs[i] = phones[i].fe.FlushOutbox(ctx)
		}(i)
	}
	wg.Wait()
	for i, err := range flushErrs {
		if err != nil {
			return nil, fmt.Errorf("chaos: phone %d flush: %w", i, err)
		}
	}
	// Wait for any kill still pending its threshold, then flush again:
	// the last kill may have severed acks for reports the flush above
	// already counted delivered-or-parked.
	select {
	case err := <-killErr:
		return nil, err
	case <-killsDone:
	}
	for i := range phones {
		if phones[i].fe.Outbox().Pending() > 0 {
			if err := phones[i].fe.FlushOutbox(ctx); err != nil {
				return nil, fmt.Errorf("chaos: phone %d final flush: %w", i, err)
			}
		}
	}

	h.mu.Lock()
	srv := h.srv
	restarts := h.restarts
	h.mu.Unlock()
	if restarts != cfg.Kills {
		return nil, fmt.Errorf("chaos: %d kills requested, %d performed", cfg.Kills, restarts)
	}

	srv.Processor().Process()
	stored, decodeErrs := srv.Processor().Stats()
	if decodeErrs > 0 {
		return nil, fmt.Errorf("chaos: %d uploads failed to decode", decodeErrs)
	}
	res := &Result{
		Executed:      srv.ExecutedInstants(soakAppID),
		Ledger:        srv.BudgetLedger(soakAppID),
		Stored:        stored,
		SeenReports:   srv.DB().SeenReportIDs(soakAppID),
		UploadsStored: srv.DB().UploadCount(),
		Fault:         h.fi.Stats(),
		Client:        client.Stats(),
	}
	for _, row := range srv.DB().FeaturesByCategory(world.CategoryCoffee) {
		row.Updated = time.Time{}
		res.Features = append(res.Features, row)
	}
	for _, p := range phones {
		ob := p.fe.Outbox()
		res.Pending += ob.Pending()
		s := ob.Stats()
		res.Outbox.Enqueued += s.Enqueued
		res.Outbox.Delivered += s.Delivered
		res.Outbox.DroppedOverflow += s.DroppedOverflow
		res.Outbox.DroppedRefused += s.DroppedRefused
		res.Outbox.DrainPasses += s.DrainPasses
		res.Outbox.BatchesSent += s.BatchesSent
	}
	return res, nil
}
