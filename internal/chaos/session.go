package chaos

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"sor/internal/device"
	"sor/internal/frontend"
	"sor/internal/obs"
	"sor/internal/server"
	"sor/internal/store"
	"sor/internal/transport"
	"sor/internal/transport/session"
	"sor/internal/wire"
	"sor/internal/world"
)

// newSoakServer stands up the sensing server plus the one soak app both
// harnesses (HTTP and stream) drive, with push wired to the given fabric.
func newSoakServer(push transport.Notifier, obsv *obs.Observer) (*server.Server, error) {
	w, err := world.Canonical()
	if err != nil {
		return nil, err
	}
	place, err := w.Place(world.Starbucks)
	if err != nil {
		return nil, err
	}
	srv, err := server.New(server.Config{
		DB:       store.New(),
		Now:      func() time.Time { return soakEpoch },
		Catalog:  server.DefaultCatalog(),
		Push:     push,
		Observer: obsv,
	})
	if err != nil {
		return nil, err
	}
	if err := srv.CreateApp(store.Application{
		ID:       soakAppID,
		Creator:  "chaos-harness",
		Category: world.CategoryCoffee,
		Place:    world.Starbucks,
		Lat:      place.Loc.Lat, Lon: place.Loc.Lon,
		RadiusM:   60,
		Script:    soakScript,
		PeriodSec: 10800,
	}); err != nil {
		return nil, err
	}
	return srv, nil
}

// SessionConfig parameterizes one stream-transport soak run. TCP gives the
// stream reliable delivery, so its chaos is connection-shaped: partitions
// that sever every live session and forced kills that cut streams with
// requests in flight. The zero value of the fault fields is the fault-free
// baseline.
type SessionConfig struct {
	// Phones is the fleet size (default 4).
	Phones int
	// Budget is each phone's sensing budget (default 4).
	Budget int
	// Seed drives the phones' sensor noise and all retry jitter.
	Seed int64
	// Partition cuts the network for this long as the fleet starts
	// uploading: dials are refused and every live session is severed.
	Partition time.Duration
	// Kills forcibly severs every live connection this many times while
	// the fleet drains (spread ~15 ms apart).
	Kills int
	// KillMidBatch severs every connection immediately after the server
	// processes an upload (single or batched) — but before the reply frame
	// is written — this many times. The client cannot tell delivery from
	// loss and must retransmit; only ReportID dedup keeps the store
	// exactly-once.
	KillMidBatch int
	// Timeout bounds the whole run (default 60 s).
	Timeout time.Duration
	// Observer instruments the run (shared registry across all layers).
	Observer *obs.Observer
}

// SessionResult is a stream soak's converged state plus stream telemetry.
type SessionResult struct {
	Result
	// WakesSent counts wake-up notifications the registry delivered.
	WakesSent int
	// Reconnects counts successful client re-dials after severed streams.
	Reconnects int64
	// PushesReceived counts server-initiated messages the fleet saw.
	PushesReceived int64
}

// RunSessionSoak drives one fleet through the stream transport: every
// phone holds a single multiplexed session, schedules arrive as
// server-initiated pushes, and the chaos is partition severs plus forced
// session kills (including mid-batch, after the server committed but
// before it acked). The converged state must be byte-identical to a
// fault-free run — exactly-once across connection death.
func RunSessionSoak(cfg SessionConfig) (*SessionResult, error) {
	if cfg.Phones <= 0 {
		cfg.Phones = 4
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 4
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}

	var regOpts []session.RegistryOption
	if cfg.Observer != nil {
		regOpts = append(regOpts, session.WithRegistryMetrics(cfg.Observer.Metrics()))
	}
	registry := session.NewRegistry(regOpts...)
	srv, err := newSoakServer(registry, cfg.Observer)
	if err != nil {
		return nil, err
	}

	fi := transport.NewFaultInjector(transport.FaultConfig{Seed: cfg.Seed})

	// Mid-batch kills wrap the dispatch path: the batch commits, then the
	// stream dies before the ack frame leaves the server.
	var killMu sync.Mutex
	killsLeft := cfg.KillMidBatch
	var ss *session.Server
	handler := srv.Handler()
	wrapped := func(ctx context.Context, m wire.Message) (wire.Message, error) {
		resp, err := handler(ctx, m)
		isUpload := false
		switch m.(type) {
		case *wire.DataUpload, *wire.DataUploadBatch:
			isUpload = true
		}
		if isUpload && err == nil {
			killMu.Lock()
			kill := killsLeft > 0
			if kill {
				killsLeft--
			}
			killMu.Unlock()
			if kill {
				ss.CloseConns()
			}
		}
		return resp, err
	}
	var ssOpts []session.ServerOption
	if cfg.Observer != nil {
		ssOpts = append(ssOpts, session.WithServerObserver(cfg.Observer))
	}
	ss, err = session.NewServer(wrapped, registry, ssOpts...)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go func() { _ = ss.Serve(ln) }()
	defer func() { _ = ss.Close() }()
	addr := ln.Addr().String()

	dial := session.FaultDialer(fi, func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	})

	ctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
	defer cancel()

	w, err := world.Canonical()
	if err != nil {
		return nil, err
	}
	place, err := w.Place(world.Starbucks)
	if err != nil {
		return nil, err
	}

	type soakPhone struct {
		fe    *frontend.Frontend
		conn  *session.Client
		sched *wire.Schedule
	}
	phones := make([]soakPhone, cfg.Phones)
	fi.SetEnabled(false)
	for i := range phones {
		phone, err := device.New(device.Config{
			ID:    fmt.Sprintf("chaos-phone-%d", i),
			Token: fmt.Sprintf("chaos-token-%d", i),
			Traj:  device.Trajectory{Place: place, Enter: soakEpoch, Leave: soakEpoch.Add(3 * time.Hour)},
			Seed:  cfg.Seed + int64(i),
		})
		if err != nil {
			return nil, err
		}
		connOpts := []session.ClientOption{
			session.WithClientRetries(6),
			session.WithClientBackoff(time.Millisecond, 20*time.Millisecond),
			session.WithClientSeed(cfg.Seed + int64(i)),
		}
		if cfg.Observer != nil {
			connOpts = append(connOpts, session.WithClientObserver(cfg.Observer))
		}
		conn, err := session.NewClient(dial, fmt.Sprintf("chaos-token-%d", i), connOpts...)
		if err != nil {
			return nil, err
		}
		feOpts := []frontend.Option{
			frontend.WithOutboxBackoff(time.Millisecond, 20*time.Millisecond),
			frontend.WithOutboxSeed(cfg.Seed + int64(i)),
		}
		if cfg.Observer != nil {
			feOpts = append(feOpts, frontend.WithObserver(cfg.Observer))
		}
		fe, err := frontend.New(phone, conn, feOpts...)
		if err != nil {
			return nil, err
		}
		// Reconnect resume drains the outbox: reports in flight when the
		// stream died are retransmitted and deduped server-side.
		conn.SetOnResume(func() { _ = fe.FlushOutbox(context.Background()) })
		sched, err := fe.Participate(ctx, fmt.Sprintf("chaos-user-%d", i), soakAppID, cfg.Budget, 3*time.Hour)
		if err != nil {
			return nil, fmt.Errorf("chaos: phone %d join: %w", i, err)
		}
		phones[i] = soakPhone{fe: fe, conn: conn, sched: sched}
	}
	defer func() {
		for _, p := range phones {
			if p.conn != nil {
				_ = p.conn.Close()
			}
		}
	}()

	// Chaos on: a partition drops on the fleet as it starts sensing
	// (severing every live stream), and forced kills keep cutting
	// connections while the drain runs.
	fi.SetEnabled(true)
	if cfg.Partition > 0 {
		heal := fi.PartitionFor(cfg.Partition)
		defer heal.Stop()
	}
	killCtx, stopKills := context.WithCancel(ctx)
	defer stopKills()
	var killWG sync.WaitGroup
	if cfg.Kills > 0 {
		killWG.Add(1)
		go func() {
			defer killWG.Done()
			for k := 0; k < cfg.Kills; k++ {
				select {
				case <-time.After(15 * time.Millisecond):
					ss.CloseConns()
				case <-killCtx.Done():
					return
				}
			}
		}()
	}

	execErrs := make([]error, cfg.Phones)
	var wg sync.WaitGroup
	for i := range phones {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, execErrs[i] = phones[i].fe.ExecuteSchedule(ctx, phones[i].sched)
		}(i)
	}
	wg.Wait()
	for i, err := range execErrs {
		if err != nil {
			return nil, fmt.Errorf("chaos: phone %d execute: %w", i, err)
		}
	}

	// Recovery: heal, stop killing, then flush until every outbox drains.
	fi.HealPartition()
	stopKills()
	killWG.Wait()
	flushErrs := make([]error, cfg.Phones)
	for i := range phones {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = phones[i].fe.HandlePing(ctx)
			flushErrs[i] = phones[i].fe.FlushOutbox(ctx)
		}(i)
	}
	wg.Wait()
	for i, err := range flushErrs {
		if err != nil {
			return nil, fmt.Errorf("chaos: phone %d flush: %w", i, err)
		}
	}

	srv.Processor().Process()
	stored, decodeErrs := srv.Processor().Stats()
	if decodeErrs > 0 {
		return nil, fmt.Errorf("chaos: %d uploads failed to decode", decodeErrs)
	}

	res := &SessionResult{}
	res.Executed = srv.ExecutedInstants(soakAppID)
	res.Ledger = srv.BudgetLedger(soakAppID)
	res.Stored = stored
	res.SeenReports = srv.DB().SeenReportIDs(soakAppID)
	res.UploadsStored = srv.DB().UploadCount()
	res.Fault = fi.Stats()
	for _, row := range srv.DB().FeaturesByCategory(world.CategoryCoffee) {
		row.Updated = time.Time{}
		res.Features = append(res.Features, row)
	}
	for _, p := range phones {
		ob := p.fe.Outbox()
		res.Pending += ob.Pending()
		s := ob.Stats()
		res.Outbox.Enqueued += s.Enqueued
		res.Outbox.Delivered += s.Delivered
		res.Outbox.DroppedOverflow += s.DroppedOverflow
		res.Outbox.DroppedRefused += s.DroppedRefused
		res.Outbox.DrainPasses += s.DrainPasses
		res.Outbox.BatchesSent += s.BatchesSent
		cs := p.conn.Stats()
		res.Client.Sends += cs.Sends
		res.Client.Retries += cs.Retries
		res.Reconnects += cs.Reconnects
		res.PushesReceived += cs.PushesReceived
	}
	res.WakesSent = registry.Sent()
	return res, nil
}

// SessionSummary renders the stream run's telemetry.
func (r *SessionResult) SessionSummary() string {
	return fmt.Sprintf(
		"stored %d reports (outbox: %d enqueued, %d delivered; "+
			"stream: %d sends, %d retries, %d reconnects, %d pushes received, %d sessions severed by partition)",
		r.Stored,
		r.Outbox.Enqueued, r.Outbox.Delivered,
		r.Client.Sends, r.Client.Retries, r.Reconnects, r.PushesReceived,
		r.Fault.SessionsSevered)
}
