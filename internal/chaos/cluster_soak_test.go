package chaos

import (
	"testing"
)

// TestClusterSoakConvergesToBaselines is the scale-out tentpole proof:
// two shards of two nodes each behind a rendezvous-routing router — all
// on one virtual clock — survive random kill -9s on every role, timed
// follower partitions, seeded checkpoints, one planned failover per
// shard (one reconciled by the operator, one left for the router's own
// discovery probes), and one follower deliberately orphaned past
// compaction that rejoins via snapshot-ship resync. Afterward every
// node of each shard carries a state digest byte-identical to a
// never-crashed single-node baseline that applied only that shard's
// category workload: sharding, routing, failover, and resync are all
// invisible in the final state.
func TestClusterSoakConvergesToBaselines(t *testing.T) {
	kills := 6
	seeds := []int64{1, 42, 1337}
	if testing.Short() {
		kills = 2
		seeds = seeds[:1]
	}
	if replay := soakSeed(t, 0); replay != 0 {
		// SOR_SOAK_SEED narrows the sweep to the seed being replayed.
		seeds = []int64{replay}
	}
	for _, seed := range seeds {
		res, err := RunClusterSoak(ClusterSoakConfig{
			Seed:    seed,
			Kills:   kills,
			BaseDir: t.TempDir(),
		})
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, repro(t, seed))
		}
		if res.Kills != kills {
			t.Fatalf("seed %d: %d kills requested, %d performed\n%s",
				seed, kills, res.Kills, repro(t, seed))
		}
		if res.Failovers != 2 {
			t.Fatalf("seed %d: %d planned failovers performed, want 2\n%s",
				seed, res.Failovers, repro(t, seed))
		}
		if res.RouterFailovers == 0 {
			t.Fatalf("seed %d: the router never discovered a promotion\n%s",
				seed, repro(t, seed))
		}
		if res.Resyncs != 1 {
			t.Fatalf("seed %d: %d snapshot-ship resyncs performed, want 1\n%s",
				seed, res.Resyncs, repro(t, seed))
		}
		if len(res.Digests) != 2 {
			t.Fatalf("seed %d: %d category digests, want 2\n%s",
				seed, len(res.Digests), repro(t, seed))
		}
		t.Logf("seed %d converged: %s", seed, res.Summary())
	}
}

// TestClusterSoakDeterministic pins that the cluster soak driver is a
// pure function of its seed — same seed, same digests AND same chaos
// telemetry — so a failure report's repro instructions actually
// reproduce the failing run.
func TestClusterSoakDeterministic(t *testing.T) {
	cfg := ClusterSoakConfig{Seed: 7, Kills: 3}
	cfg.BaseDir = t.TempDir()
	a, err := RunClusterSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.BaseDir = t.TempDir()
	b, err := RunClusterSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary() != b.Summary() {
		t.Fatalf("same seed, different runs:\n%s\n%s", a.Summary(), b.Summary())
	}
	for cat, d := range a.Digests {
		if b.Digests[cat] != d {
			t.Fatalf("same seed, different %s digest: %.12s vs %.12s", cat, d, b.Digests[cat])
		}
	}
}
