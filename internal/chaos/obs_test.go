package chaos

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sor/internal/device"
	"sor/internal/frontend"
	"sor/internal/obs"
	"sor/internal/server"
	"sor/internal/store"
	"sor/internal/transport"
	"sor/internal/wire"
	"sor/internal/world"
)

// counter reads one counter series out of a registry snapshot (0 when the
// series was never registered).
func counter(snap obs.Snapshot, series string) int64 {
	return snap.Counters[series]
}

// TestSoakMetricsConsistentUnderChaos runs the chaotic soak with a shared
// observer wired through every hop and demands the metrics tell the same
// exactly-once story the store does:
//
//   - every report that entered the ingest handler left through exactly one
//     of the three exits (accepted / duplicate / rejected) — no report is
//     double-counted, none slips through unaccounted;
//   - the accepted counter equals the number of reports the processor
//     actually stored (one per phone, however many retransmissions the
//     chaos forced);
//   - the duplicate counter equals the replays the ack loss injected —
//     reports over accepted — and under heavy ack loss there are some;
//   - the registry's mirrors of the client and outbox counters agree with
//     the structs those components report directly.
func TestSoakMetricsConsistentUnderChaos(t *testing.T) {
	cfg := soakConfig(t)
	// Heavier ack loss than the headline soak: every stored-but-unacked
	// report forces a retransmission the server must dedup, which is the
	// path whose accounting this test exists to check.
	cfg.RequestLoss = 0.2
	cfg.AckLoss = 0.7
	cfg.Observer = obs.NewObserver()

	res, err := RunSoak(cfg)
	if err != nil {
		t.Fatalf("chaotic run: %v", err)
	}
	t.Logf("run: %s", res.Summary())
	snap := cfg.Observer.Metrics().Snapshot()

	reports := counter(snap, "sor_ingest_reports_total")
	accepted := counter(snap, "sor_ingest_accepted_total")
	duplicates := counter(snap, "sor_ingest_duplicate_total")
	rejected := counter(snap, "sor_ingest_rejected_total")

	// Exactly-once, as told by the counters: one acceptance per phone,
	// matching what the processor stored.
	if accepted != int64(cfg.Phones) {
		t.Errorf("ingest accepted = %d, want %d (one per phone)", accepted, cfg.Phones)
	}
	if accepted != int64(res.Stored) {
		t.Errorf("ingest accepted = %d but processor stored %d", accepted, res.Stored)
	}
	if rejected != 0 {
		t.Errorf("ingest rejected = %d, want 0 (chaos never excuses a refusal)", rejected)
	}
	// Conservation: the entry counter and the three exit counters are
	// incremented on different code paths; their balance proves every
	// report took exactly one exit.
	if reports != accepted+duplicates+rejected {
		t.Errorf("ingest reports = %d, want accepted+duplicates+rejected = %d",
			reports, accepted+duplicates+rejected)
	}
	// The injected replays: with 70%% ack loss each stored report's ack is
	// usually lost, so the outbox re-sends already-stored reports and the
	// dedup window must absorb them.
	if duplicates == 0 {
		t.Error("no duplicate reports under 70% ack loss — the replay path went unexercised")
	}
	if res.Fault.ResponsesLost == 0 {
		t.Error("no acks were lost — chaos did not engage")
	}

	// The registry mirrors of component counters must agree with the
	// structs those components report directly.
	if got, want := counter(snap, "sor_client_sends_total"), res.Client.Sends; got != want {
		t.Errorf("sor_client_sends_total = %d, client.Stats().Sends = %d", got, want)
	}
	if got, want := counter(snap, "sor_client_retries_total"), res.Client.Retries; got != want {
		t.Errorf("sor_client_retries_total = %d, client.Stats().Retries = %d", got, want)
	}
	if got, want := counter(snap, "sor_outbox_enqueued_total"), int64(res.Outbox.Enqueued); got != want {
		t.Errorf("sor_outbox_enqueued_total = %d, summed outbox stats say %d", got, want)
	}
	if got, want := counter(snap, "sor_outbox_delivered_total"), int64(res.Outbox.Delivered); got != want {
		t.Errorf("sor_outbox_delivered_total = %d, summed outbox stats say %d", got, want)
	}
	// All outboxes drained, so the fleet-aggregated depth gauge is back to
	// zero — deltas balanced across enqueue, ack-removal, and overflow.
	if depth := snap.Gauges["sor_outbox_depth"]; depth != 0 {
		t.Errorf("sor_outbox_depth = %d after full drain, want 0", depth)
	}
	if got := counter(snap, "sor_processor_uploads_total"); got != int64(res.Stored) {
		t.Errorf("sor_processor_uploads_total = %d, want %d", got, res.Stored)
	}
}

// flakyGate drops (502s) requests while its budget is positive and records
// the raw body of every request it lets through to the inner handler. The
// retryable 502 stands in for a crashed LB: the client must re-send the
// same frame, so every attempt carries the same trace RequestID.
type flakyGate struct {
	inner http.Handler

	drops atomic.Int64 // requests still to reject

	mu     sync.Mutex
	bodies [][]byte // raw frames that reached the inner handler
}

func (g *flakyGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	body, err := func() ([]byte, error) {
		defer func() { _ = r.Body.Close() }()
		var buf bytes.Buffer
		_, err := buf.ReadFrom(r.Body)
		return buf.Bytes(), err
	}()
	if err != nil {
		http.Error(w, "read error", http.StatusBadRequest)
		return
	}
	if g.drops.Add(-1) >= 0 {
		http.Error(w, "injected outage", http.StatusBadGateway)
		return
	}
	g.mu.Lock()
	g.bodies = append(g.bodies, append([]byte(nil), body...))
	g.mu.Unlock()
	r.Body = nopCloser{bytes.NewReader(body)}
	g.inner.ServeHTTP(w, r)
}

type nopCloser struct{ *bytes.Reader }

func (nopCloser) Close() error { return nil }

// passedUploads returns the recorded raw frames that decode to data
// uploads, with their trace ids.
func (g *flakyGate) passedUploads(t *testing.T) (frames [][]byte, ids []string) {
	t.Helper()
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, b := range g.bodies {
		msg, id, err := wire.DecodeTraced(b)
		if err != nil {
			t.Fatalf("gate recorded an undecodable frame: %v", err)
		}
		if msg.Type() == wire.TypeDataUpload {
			frames = append(frames, b)
			ids = append(ids, id)
		}
	}
	return frames, ids
}

// spansNamed filters spans by name.
func spansNamed(spans []obs.SpanRecord, name string) []obs.SpanRecord {
	var out []obs.SpanRecord
	for _, s := range spans {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// attr returns the value of a span annotation ("" when absent).
func attr(s obs.SpanRecord, key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// TestTraceFollowsRequestAcrossRetriesAndFold is the end-to-end trace
// proof: one phone's upload is dropped twice at the HTTP layer before
// getting through, then the exact stored frame is replayed twice more at
// the wire level. The RequestID the client minted for the upload must
// appear on a span for every retry attempt, the server handler, the dedup
// decision (fresh once, duplicate for each replay), and the asynchronous
// processor fold — one trace stitching every hop of the ingest pipeline.
func TestTraceFollowsRequestAcrossRetriesAndFold(t *testing.T) {
	o := obs.NewObserver()
	w, err := world.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	place, err := w.Place(world.Starbucks)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		DB:       store.New(),
		Now:      func() time.Time { return soakEpoch },
		Catalog:  server.DefaultCatalog(),
		Observer: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.CreateApp(store.Application{
		ID: soakAppID, Creator: "chaos-harness",
		Category: world.CategoryCoffee, Place: world.Starbucks,
		Lat: place.Loc.Lat, Lon: place.Loc.Lon, RadiusM: 60,
		Script: soakScript, PeriodSec: 10800,
	}); err != nil {
		t.Fatal(err)
	}
	h, err := transport.NewHTTPHandler(srv.Handler(), transport.WithHandlerObserver(o))
	if err != nil {
		t.Fatal(err)
	}
	gate := &flakyGate{inner: h}
	ts := httptest.NewServer(gate)
	defer ts.Close()

	// Retry budget 4 > the 2 injected drops: the upload survives inside a
	// single Send call, so all its attempts share one minted RequestID.
	client, err := transport.NewClient(ts.URL,
		transport.WithRetries(4),
		transport.WithBackoff(time.Millisecond),
		transport.WithBackoffCap(5*time.Millisecond),
		transport.WithRetrySeed(11),
		transport.WithObserver(o))
	if err != nil {
		t.Fatal(err)
	}
	phone, err := device.New(device.Config{
		ID: "trace-phone", Token: "trace-token",
		Traj: device.Trajectory{Place: place, Enter: soakEpoch, Leave: soakEpoch.Add(3 * time.Hour)},
		Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	fe, err := frontend.New(phone, client,
		frontend.WithOutboxBackoff(time.Millisecond, 5*time.Millisecond),
		frontend.WithOutboxSeed(11),
		frontend.WithObserver(o))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sched, err := fe.Participate(ctx, "trace-user", soakAppID, 3, 3*time.Hour)
	if err != nil {
		t.Fatal(err)
	}

	// Two drops land on the upload's first two attempts; attempt 3 gets
	// through and is stored.
	gate.drops.Store(2)
	if _, err := fe.ExecuteSchedule(ctx, sched); err != nil {
		t.Fatalf("execute: %v", err)
	}
	if err := fe.FlushOutbox(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
	frames, ids := gate.passedUploads(t)
	if len(frames) != 1 {
		t.Fatalf("%d upload frames reached the server, want 1", len(frames))
	}
	requestID := obs.RequestID(ids[0])
	if requestID == "" {
		t.Fatal("stored upload frame carried no trace RequestID")
	}

	// Replay the stored frame twice at the wire level — byte-for-byte
	// retransmissions, same RequestID, which the dedup window must absorb.
	const replays = 2
	for i := 0; i < replays; i++ {
		resp, err := http.Post(ts.URL+transport.Path, "application/x-sor", bytes.NewReader(frames[0]))
		if err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replay %d: HTTP %d", i, resp.StatusCode)
		}
	}

	// Fold the stored upload — the trace's final, asynchronous hop.
	if got := srv.Processor().Process(); got != 1 {
		t.Fatalf("processor folded %d uploads, want 1", got)
	}

	trace := o.Tracer().SpansFor(requestID)
	if len(trace) == 0 {
		t.Fatal("no spans recorded for the upload's RequestID")
	}

	// Every client attempt: two rejected by the gate, one success.
	sends := spansNamed(trace, "client.send")
	if len(sends) != 3 {
		t.Fatalf("client.send spans = %d, want 3 (two drops + success)", len(sends))
	}
	for i, s := range sends {
		if got := attr(s, "attempt"); got != string(rune('1'+i)) {
			t.Errorf("client.send span %d attempt = %q, want %d", i, got, i+1)
		}
		if got := attr(s, "type"); got != "data-upload" {
			t.Errorf("client.send span %d type = %q, want data-upload", i, got)
		}
	}
	if attr(sends[0], "error") == "" || attr(sends[1], "error") == "" {
		t.Error("dropped attempts must carry an error annotation")
	}
	if attr(sends[2], "error") != "" {
		t.Errorf("final attempt recorded an error: %q", attr(sends[2], "error"))
	}

	// The server handler ran for the surviving attempt and both replays.
	handles := spansNamed(trace, "server.handle")
	if len(handles) != 1+replays {
		t.Fatalf("server.handle spans = %d, want %d", len(handles), 1+replays)
	}

	// The dedup decision: fresh exactly once, duplicate for each replay.
	var fresh, dup int
	for _, s := range spansNamed(trace, "server.dedup") {
		switch attr(s, "duplicate") {
		case "false":
			fresh++
		case "true":
			dup++
		default:
			t.Errorf("server.dedup span without a duplicate annotation: %+v", s)
		}
	}
	if fresh != 1 || dup != replays {
		t.Fatalf("dedup spans: fresh=%d dup=%d, want fresh=1 dup=%d", fresh, dup, replays)
	}

	// The processor folded the stored report under the same id, once.
	folds := spansNamed(trace, "processor.fold")
	if len(folds) != 1 {
		t.Fatalf("processor.fold spans = %d, want 1 (exactly-once)", len(folds))
	}
	if got := attr(folds[0], "app"); got != soakAppID {
		t.Errorf("processor.fold app = %q, want %q", got, soakAppID)
	}

	// And the counters agree: one accepted, two duplicates.
	snap := o.Metrics().Snapshot()
	if got := snap.Counters["sor_ingest_accepted_total"]; got != 1 {
		t.Errorf("sor_ingest_accepted_total = %d, want 1", got)
	}
	if got := snap.Counters["sor_ingest_duplicate_total"]; got != int64(replays) {
		t.Errorf("sor_ingest_duplicate_total = %d, want %d (the injected replays)", got, replays)
	}
}
