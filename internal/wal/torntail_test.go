package wal

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// segmentBytes builds a segment image: header (magic + firstLSN) followed
// by one framed record per payload.
func segmentBytes(firstLSN uint64, payloads ...string) []byte {
	b := make([]byte, 0, headerSize)
	b = append(b, magic[:]...)
	b = binary.LittleEndian.AppendUint64(b, firstLSN)
	for _, p := range payloads {
		b = appendRecord(b, []byte(p))
	}
	return b
}

// TestTornTailClassification is the table-driven crash-residue taxonomy:
// every way a segment tail can end — clean boundary, preallocated zeros,
// a record cut mid-header or mid-payload, a mangled length field, bit rot
// mid-segment — and whether the scanner calls it torn (crash residue,
// recover silently) or corrupt (must be reported).
func TestTornTailClassification(t *testing.T) {
	base := segmentBytes(1, "alpha", "beta", "gamma")
	recOff := func(n int) int64 { // offset of record n (0-based)
		off := int64(headerSize)
		for _, p := range []string{"alpha", "beta", "gamma"}[:n] {
			off += recordSize([]byte(p))
		}
		return off
	}

	cases := []struct {
		name  string
		bytes func() []byte
		// expectations
		records   int
		torn      bool
		corruptAt int64 // -1 means no corruption
	}{
		{
			name:      "truncation exactly at record boundary",
			bytes:     func() []byte { return append([]byte(nil), base...) },
			records:   3,
			corruptAt: -1,
		},
		{
			name: "zero-length tail (preallocated zeros)",
			bytes: func() []byte {
				b := append([]byte(nil), base...)
				return append(b, make([]byte, 256)...)
			},
			records:   3,
			corruptAt: -1,
		},
		{
			name: "partial header at tail",
			bytes: func() []byte {
				b := append([]byte(nil), base...)
				// 3 bytes of a fourth record's header, then EOF.
				return append(b, 0xA1, 0xB2, 0xC3)
			},
			records:   3,
			torn:      true,
			corruptAt: -1,
		},
		{
			name: "partial payload at EOF",
			bytes: func() []byte {
				b := append([]byte(nil), base...)
				b = appendRecord(b, []byte("delta-delta-delta"))
				// The crash cut the last record's payload short.
				return b[:len(b)-10]
			},
			records:   3,
			torn:      true,
			corruptAt: -1,
		},
		{
			name: "partial payload inside preallocated zeros",
			bytes: func() []byte {
				b := append([]byte(nil), base...)
				b = appendRecord(b, []byte("delta-delta-delta"))
				cut := append(b[:len(b)-10:len(b)-10], make([]byte, 200)...)
				return cut
			},
			records:   3,
			torn:      true,
			corruptAt: -1,
		},
		{
			name: "garbage length field, nothing beyond",
			bytes: func() []byte {
				b := append([]byte(nil), base...)
				var hdr [recHdrSize]byte
				binary.LittleEndian.PutUint32(hdr[0:4], uint32(MaxRecord)+7)
				b = append(b, hdr[:]...)
				return append(b, make([]byte, 64)...)
			},
			records:   3,
			torn:      true,
			corruptAt: -1,
		},
		{
			name: "garbage length field with data beyond",
			bytes: func() []byte {
				b := append([]byte(nil), base...)
				var hdr [recHdrSize]byte
				binary.LittleEndian.PutUint32(hdr[0:4], uint32(MaxRecord)+7)
				b = append(b, hdr[:]...)
				b = append(b, make([]byte, 64)...)
				return append(b, 0xFF) // bit rot, not a tear
			},
			records:   3,
			corruptAt: recOff(3),
		},
		{
			name: "CRC mismatch mid-segment",
			bytes: func() []byte {
				b := append([]byte(nil), base...)
				// Flip one payload byte of "beta": records after it still
				// exist, so this is rot, never a tear.
				b[recOff(1)+recHdrSize] ^= 0xFF
				return b
			},
			records:   1,
			corruptAt: recOff(1),
		},
		{
			name: "stray data after zero-length frame",
			bytes: func() []byte {
				b := append([]byte(nil), base...)
				b = append(b, make([]byte, recHdrSize)...) // zero length, zero CRC
				return append(b, "junk"...)
			},
			records:   3,
			corruptAt: recOff(3),
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "000001.wal")
			if err := os.WriteFile(path, tc.bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			scan, err := scanSegment(path)
			if err != nil {
				t.Fatalf("scanSegment: %v", err)
			}
			if scan.Records != tc.records {
				t.Errorf("records = %d, want %d", scan.Records, tc.records)
			}
			if scan.Torn != tc.torn {
				t.Errorf("torn = %t, want %t", scan.Torn, tc.torn)
			}
			switch {
			case tc.corruptAt < 0 && scan.Corrupt != nil:
				t.Errorf("unexpected corruption: %+v", scan.Corrupt)
			case tc.corruptAt >= 0 && scan.Corrupt == nil:
				t.Errorf("corruption at %d not detected", tc.corruptAt)
			case tc.corruptAt >= 0 && scan.Corrupt.Offset != tc.corruptAt:
				t.Errorf("corruption at %d, want %d", scan.Corrupt.Offset, tc.corruptAt)
			}

			// Replay must mirror the classification: torn tails replay
			// silently up to the tear, corruption refuses the whole replay.
			var got int
			stats, err := Replay(dir, 0, func(lsn uint64, payload []byte) error {
				got++
				return nil
			})
			if tc.corruptAt >= 0 {
				if err == nil {
					t.Fatalf("replay accepted a corrupt segment")
				}
				return
			}
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if got != tc.records || stats.Records != tc.records {
				t.Errorf("replayed %d (stats %d), want %d", got, stats.Records, tc.records)
			}
			if tc.torn && stats.TornBytes == 0 {
				t.Errorf("torn tail not reflected in stats: %+v", stats)
			}
			if !tc.torn && stats.TornBytes != 0 {
				t.Errorf("phantom torn bytes: %+v", stats)
			}
		})
	}
}

// TestTornBoundarySegmentPair pins the multi-segment boundary case: a
// sealed segment that ends exactly at a record boundary followed by a
// torn final segment replays everything good and reports only the tear.
func TestTornBoundarySegmentPair(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "000001.wal"),
		segmentBytes(1, "one", "two"), 0o644); err != nil {
		t.Fatal(err)
	}
	torn := segmentBytes(3, "three", "four-four-four")
	torn = torn[:len(torn)-5]
	if err := os.WriteFile(filepath.Join(dir, "000002.wal"), torn, 0o644); err != nil {
		t.Fatal(err)
	}
	var lsns []uint64
	stats, err := Replay(dir, 0, func(lsn uint64, payload []byte) error {
		lsns = append(lsns, lsn)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(lsns) != 3 || lsns[0] != 1 || lsns[2] != 3 {
		t.Fatalf("replayed lsns %v, want [1 2 3]", lsns)
	}
	if stats.TornBytes == 0 {
		t.Fatalf("tear on the final segment not reported: %+v", stats)
	}
	segs, err := Inspect(dir)
	if err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if len(segs) != 2 || segs[0].Torn || !segs[1].Torn {
		t.Fatalf("inspect = %+v, want tear only on the second segment", segs)
	}
}
