// Record and segment framing for the write-ahead log.
//
// A segment file is a fixed 16-byte header followed by back-to-back
// records:
//
//	header:  magic "SORWAL1\n" (8 bytes) | firstLSN uint64 LE
//	record:  length uint32 LE | crc32c(payload) uint32 LE | payload
//
// Records never span segments; a record's LSN is implicit — the segment's
// firstLSN plus its ordinal position — so the framing stays 8 bytes per
// record. The CRC is Castagnoli (the polynomial with hardware support on
// both amd64 and arm64), covering the payload only; the length field is
// implicitly validated by the CRC landing on the right bytes.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Segment header layout.
const (
	headerSize = 16
	recHdrSize = 8
)

var magic = [8]byte{'S', 'O', 'R', 'W', 'A', 'L', '1', '\n'}

// MaxRecord bounds one record's payload. Anything larger in the length
// field is corruption, not a record: the biggest legitimate payload is a
// full upload batch, far under this.
const MaxRecord = 64 << 20

// Framing errors. A torn record (clean truncation mid-record — the tail a
// crash leaves behind) is distinguished from corruption (CRC mismatch or
// an insane length — bit rot, overwritten bytes) because recovery
// tolerates the first silently and must report the second.
var (
	ErrTorn    = errors.New("wal: torn record (truncated mid-record)")
	ErrCorrupt = errors.New("wal: corrupt record")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendRecord appends the framed record to dst and returns the result.
func appendRecord(dst []byte, payload []byte) []byte {
	var hdr [recHdrSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// recordSize returns the on-disk size of a record with this payload.
func recordSize(payload []byte) int64 { return int64(recHdrSize + len(payload)) }

// putRecord frames the record into dst, which the caller has sized to at
// least recordSize(payload). This is the append hot path: one header
// store and one memcpy into the live segment's mapping.
func putRecord(dst []byte, payload []byte) {
	binary.LittleEndian.PutUint32(dst[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[4:8], crc32.Checksum(payload, castagnoli))
	copy(dst[recHdrSize:], payload)
}

// DecodeRecord decodes the first record in b. It returns the payload
// (aliasing b), the total bytes consumed, and an error: ErrTorn when b
// ends mid-record, ErrCorrupt when the length is implausible or the CRC
// does not match. An empty b is a clean end of stream (io-free: n == 0,
// err == nil, payload == nil).
func DecodeRecord(b []byte) (payload []byte, n int, err error) {
	if len(b) == 0 {
		return nil, 0, nil
	}
	if len(b) < recHdrSize {
		return nil, 0, ErrTorn
	}
	length := binary.LittleEndian.Uint32(b[0:4])
	if length > MaxRecord {
		return nil, 0, fmt.Errorf("%w: length %d exceeds %d", ErrCorrupt, length, MaxRecord)
	}
	end := recHdrSize + int(length)
	if len(b) < end {
		return nil, 0, ErrTorn
	}
	payload = b[recHdrSize:end]
	want := binary.LittleEndian.Uint32(b[4:8])
	if crc32.Checksum(payload, castagnoli) != want {
		return nil, 0, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}
	return payload, end, nil
}

// encodeHeader renders a segment header.
func encodeHeader(firstLSN uint64) []byte {
	hdr := make([]byte, headerSize)
	copy(hdr, magic[:])
	binary.LittleEndian.PutUint64(hdr[8:16], firstLSN)
	return hdr
}

// decodeHeader parses a segment header.
func decodeHeader(b []byte) (firstLSN uint64, err error) {
	if len(b) < headerSize {
		return 0, fmt.Errorf("%w: short segment header", ErrCorrupt)
	}
	if [8]byte(b[:8]) != magic {
		return 0, fmt.Errorf("%w: bad segment magic", ErrCorrupt)
	}
	return binary.LittleEndian.Uint64(b[8:16]), nil
}
