package wal

// This file is the log's replication surface: retention floors that keep
// TruncateThrough from dropping segments a follower still needs, and
// ReadAfter, the torn-read-free record reader the leader-side WAL shipper
// streams from.

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
)

// ErrCompacted reports that the records a reader asked for were already
// truncated away: the reader is too far behind the retention floor and
// must rebuild from a snapshot instead of the log tail.
var ErrCompacted = errors.New("wal: records compacted")

// Retain registers reader id as having durably applied every record
// through lsn: TruncateThrough keeps every record above lsn on disk until
// the reader advances or is released. Re-registering may move the floor
// in either direction — a follower that lost its unsynced tail in a crash
// legitimately re-registers lower.
func (l *Log) Retain(id string, lsn uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.retained == nil {
		l.retained = make(map[string]uint64)
	}
	l.retained[id] = lsn
}

// ReleaseRetain drops reader id's retention floor, letting truncation
// advance past whatever it was holding.
func (l *Log) ReleaseRetain(id string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.retained, id)
}

// Retained snapshots the registered readers and their applied LSNs.
func (l *Log) Retained() map[string]uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]uint64, len(l.retained))
	for id, lsn := range l.retained {
		out[id] = lsn
	}
	return out
}

// retainFloorLocked returns the lowest applied LSN across registered
// readers. Called with mu held.
func (l *Log) retainFloorLocked() (uint64, bool) {
	var floor uint64
	ok := false
	for _, lsn := range l.retained {
		if !ok || lsn < floor {
			floor, ok = lsn, true
		}
	}
	return floor, ok
}

// shipSpan is one file's worth of a ReadAfter plan, captured under mu.
// For the live segment, end is the append offset at capture time: every
// byte below it was fully memcpy'd before the lock was released (Enqueue
// writes the frame and advances off under the same mu), and later appends
// only touch bytes at or beyond it — which is why reading the file after
// unlocking can never observe a torn record.
type shipSpan struct {
	path     string
	firstLSN uint64
	end      int64 // read only bytes below this offset; 0 = whole file
}

// ReadAfter returns the payloads of up to maxRecords records (or maxBytes
// payload bytes, whichever limit lands first; at least one record is
// always returned when available) with LSNs strictly above after, in LSN
// order starting at after+1. Limits at or below zero mean unlimited.
// A nil slice with a nil error means the caller is caught up. If after+1
// was truncated away it returns ErrCompacted.
//
// File I/O happens outside the log's lock: the lock only captures the
// sealed-segment list and the live segment's append offset. Sealed
// segments are immutable, live bytes below the captured offset are
// immutable, and retention floors (Retain) keep the planned files on
// disk — a concurrent TruncateThrough past an unretained position is
// reported as ErrCompacted, never as a torn or partial read.
func (l *Log) ReadAfter(after uint64, maxRecords int, maxBytes int64) ([][]byte, error) {
	if maxRecords <= 0 {
		maxRecords = math.MaxInt
	}
	if maxBytes <= 0 {
		maxBytes = math.MaxInt64
	}
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return nil, err
	}
	last := l.nextLSN - 1
	if after >= last {
		l.mu.Unlock()
		return nil, nil
	}
	oldest := l.segFirst
	if len(l.sealed) > 0 {
		oldest = l.sealed[0].firstLSN
	}
	if after+1 < oldest {
		l.mu.Unlock()
		return nil, fmt.Errorf("%w: need LSN %d, oldest on disk is %d", ErrCompacted, after+1, oldest)
	}
	var plan []shipSpan
	for _, s := range l.sealed {
		if s.lastLSN > after {
			plan = append(plan, shipSpan{path: s.path, firstLSN: s.firstLSN})
		}
	}
	if l.off > headerSize {
		plan = append(plan, shipSpan{path: l.f.Name(), firstLSN: l.segFirst, end: l.off})
	}
	l.mu.Unlock()

	var out [][]byte
	var outBytes int64
	next := after + 1
	for _, sp := range plan {
		b, err := os.ReadFile(sp.path)
		if err != nil {
			if os.IsNotExist(err) {
				// Truncated between planning and reading: the reader was
				// not retained at this position.
				return nil, fmt.Errorf("%w: segment %s removed mid-read", ErrCompacted, filepath.Base(sp.path))
			}
			return nil, err
		}
		first, err := decodeHeader(b)
		if err != nil {
			return nil, fmt.Errorf("wal: segment %s: %w", filepath.Base(sp.path), err)
		}
		if sp.end > 0 && sp.end < int64(len(b)) {
			b = b[:sp.end]
		}
		off := int64(headerSize)
		lsn := first
		for off < int64(len(b)) {
			payload, n, derr := DecodeRecord(b[off:])
			if derr != nil || len(payload) == 0 {
				// Zero-filled preallocated tail, or (on a just-sealed
				// segment read past the captured plan) the same clean end
				// the replayer tolerates. Records below the captured
				// offsets never decode short.
				break
			}
			if lsn > after {
				if lsn != next {
					return nil, fmt.Errorf("wal: segment %s: expected LSN %d, decoded %d", filepath.Base(sp.path), next, lsn)
				}
				if len(out) > 0 && (len(out) >= maxRecords || outBytes+int64(len(payload)) > maxBytes) {
					return out, nil
				}
				out = append(out, payload)
				outBytes += int64(len(payload))
				next++
			}
			off += int64(n)
			lsn++
		}
	}
	return out, nil
}
