// Package wal implements the segmented write-ahead log under the durable
// store backend.
//
// Segments are preallocated, memory-mapped files. An append frames its
// record straight into the live segment's MAP_SHARED mapping with a
// memcpy under the log mutex — no syscall, no goroutine handoff. Dirty
// pages of a shared file mapping belong to the kernel page cache, so by
// the time Enqueue returns the record survives a process crash exactly
// as a completed write(2) would. Three sync policies then trade latency
// for machine-crash durability:
//
//   - SyncOS (default): Append returns once the memcpy lands. A
//     background loop fsyncs on an interval to bound the machine-crash
//     window.
//   - SyncGrouped: Append returns after an fsync covering the record.
//     The syncer lingers a group window and issues one fsync per batch,
//     so N concurrent appenders share one disk flush (group commit).
//   - SyncEach: one fsync per record, inline. Exists as the baseline
//     that BenchmarkWALAppend compares group commit against.
//
// Preallocation means a segment's tail is zero bytes, and a zero length
// field marks end-of-data; appending an empty record is therefore
// refused. It also changes what a crash leaves behind: instead of a file
// ending mid-record, a torn append is a final record whose frame claims
// more than was memcpy'd, with nothing but zeros after it. The scan side
// (read.go) classifies exactly that shape as a tear and anything else
// undecodable as corruption.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"sor/internal/vclock"
)

// SyncPolicy selects when Append acknowledges durability.
type SyncPolicy int

const (
	SyncOS      SyncPolicy = iota // ack after the memcpy; background fsync loop
	SyncGrouped                   // ack after a coalesced fsync
	SyncEach                      // ack after a per-record fsync (benchmark baseline)
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncOS:
		return "os"
	case SyncGrouped:
		return "grouped"
	case SyncEach:
		return "each"
	}
	return "unknown"
}

// Lifecycle errors.
var (
	ErrClosed = errors.New("wal: log closed")
	ErrKilled = errors.New("wal: log killed")
)

// Metrics carries optional counter hooks; any field may be nil.
type Metrics struct {
	Appends   func(n int) // records landed in the live segment
	Bytes     func(n int) // bytes landed, framing included
	Fsyncs    func()      // fsync(2) calls on segment files
	Seals     func()      // segments sealed by rotation
	Truncates func(n int) // sealed segments deleted by TruncateThrough
}

func (m Metrics) appends(n int) {
	if m.Appends != nil {
		m.Appends(n)
	}
}
func (m Metrics) bytes(n int) {
	if m.Bytes != nil {
		m.Bytes(n)
	}
}
func (m Metrics) fsyncs() {
	if m.Fsyncs != nil {
		m.Fsyncs()
	}
}
func (m Metrics) seals() {
	if m.Seals != nil {
		m.Seals()
	}
}
func (m Metrics) truncates(n int) {
	if m.Truncates != nil {
		m.Truncates(n)
	}
}

// Options configures Open. The zero value is usable.
type Options struct {
	// SegmentBytes is the preallocated segment size. A record never
	// splits across segments; a record too big for an empty segment gets
	// a segment preallocated to its own size instead.
	SegmentBytes int64
	// Sync is the acknowledgement policy.
	Sync SyncPolicy
	// FlushInterval is the background fsync cadence under SyncOS.
	FlushInterval time.Duration
	// GroupWindow is how long the syncer lingers before an fsync under
	// SyncGrouped, letting appenders just acked by the previous sync get
	// their next record into this one. Costs one window of latency per
	// commit, buys near-full coalescing at saturation.
	GroupWindow time.Duration
	// SyncWait, when positive, adds a fixed wait to every acked flush
	// (the SyncEach inline fsync and the SyncGrouped batch fsync),
	// modeling a dedicated commit device with that service time.
	// Capacity benchmarks on shared hosts use it to measure software
	// scalability where the host's one disk would otherwise be a
	// bottleneck shared across logs that deploy to separate machines.
	// It has no place in production configurations.
	SyncWait time.Duration
	// Metrics receives counter callbacks.
	Metrics Metrics
	// FirstLSN seeds the log's numbering when the directory holds no
	// segments yet (0 means start at 1, the normal fresh-boot case).
	// A snapshot-shipped replica sets it to the shipped snapshot's
	// watermark + 1 so its first replicated append lands at exactly the
	// LSN the leader assigned it. Ignored whenever segments exist — an
	// established log already knows its own position.
	FirstLSN uint64
	// Clock backs the SyncOS background flusher's cadence. Nil means the
	// wall clock; simulations pass a *vclock.Virtual so flush ticks ride
	// virtual time. The group-commit linger window deliberately stays on
	// the wall clock — it is a sub-millisecond performance window paced
	// against real disk latency, not simulated event time.
	Clock vclock.Clock
}

const (
	defaultSegmentBytes  = 8 << 20
	defaultFlushInterval = 50 * time.Millisecond
	defaultGroupWindow   = 100 * time.Microsecond
)

type segMeta struct {
	path     string
	firstLSN uint64
	lastLSN  uint64
}

// Log is a segmented write-ahead log. All methods are safe for concurrent
// use.
type Log struct {
	dir  string
	opts Options

	mu        sync.Mutex
	work      *sync.Cond // wakes the syncer
	progress  *sync.Cond // wakes Wait/Sync callers
	nextLSN   uint64     // next LSN to assign
	synced    uint64     // highest LSN covered by an fsync
	wantSync  uint64     // highest LSN someone wants fsynced
	err       error      // sticky; set on I/O failure, Close, or Kill
	closed    bool
	killed    bool
	lastBatch int       // records covered by the previous fsync
	sealed    []segMeta // full segments, oldest first
	// retained maps reader ids (replication followers) to the highest LSN
	// each has durably applied; TruncateThrough never removes a segment
	// holding records above the lowest of these floors (see ship.go).
	retained map[string]uint64

	// Live segment, guarded by mu. data is the MAP_SHARED mapping of f;
	// off is where the next record's frame begins.
	f        *os.File
	data     []byte
	off      int64
	segFirst uint64

	syncerDone chan struct{}
	flushStop  chan struct{}
}

func segName(firstLSN uint64) string { return fmt.Sprintf("%020d.wal", firstLSN) }

// listSegments returns the segment paths in dir with their firstLSNs,
// ordered by firstLSN.
func listSegments(dir string) ([]segMeta, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segMeta
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".wal") {
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(name, ".wal"), 10, 64)
		if err != nil {
			continue
		}
		segs = append(segs, segMeta{path: filepath.Join(dir, name), firstLSN: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstLSN < segs[j].firstLSN })
	// A sealed segment's lastLSN is one below its successor's firstLSN;
	// the live segment's lastLSN is filled in by scanning.
	for i := range segs {
		if i+1 < len(segs) {
			segs[i].lastLSN = segs[i+1].firstLSN - 1
		}
	}
	return segs, nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Open opens (creating if needed) the log in dir. A torn record at the
// tail of the newest segment — the residue of a crash mid-append — is
// zeroed away; corruption anywhere else is an error.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if opts.FlushInterval <= 0 {
		opts.FlushInterval = defaultFlushInterval
	}
	if opts.GroupWindow <= 0 && opts.Sync == SyncGrouped {
		opts.GroupWindow = defaultGroupWindow
	}
	opts.Clock = vclock.Or(opts.Clock)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{
		dir:        dir,
		opts:       opts,
		syncerDone: make(chan struct{}),
		flushStop:  make(chan struct{}),
	}
	l.work = sync.NewCond(&l.mu)
	l.progress = sync.NewCond(&l.mu)

	if len(segs) == 0 {
		first := opts.FirstLSN
		if first == 0 {
			first = 1
		}
		if err := l.openSegment(first, 0); err != nil {
			return nil, err
		}
		l.nextLSN = first
	} else {
		l.sealed = segs[:len(segs)-1]
		live := segs[len(segs)-1]
		scan, err := scanSegment(live.path)
		if err != nil {
			return nil, err
		}
		if scan.Corrupt != nil {
			return nil, fmt.Errorf("wal: segment %s: %w at offset %d",
				filepath.Base(live.path), scan.Corrupt.Err, scan.Corrupt.Offset)
		}
		if scan.Torn {
			// Zero the residue so the next append starts on a clean
			// tail: shrinking deallocates the torn bytes, re-extending
			// restores the preallocated size as a hole of zeros.
			if err := os.Truncate(live.path, scan.GoodBytes); err != nil {
				return nil, err
			}
			if err := os.Truncate(live.path, scan.FileBytes); err != nil {
				return nil, err
			}
		}
		f, err := os.OpenFile(live.path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, err
		}
		if scan.Torn {
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, err
			}
		}
		if err := l.mapSegment(f, scan.FileBytes, live.firstLSN, scan.GoodBytes); err != nil {
			f.Close()
			return nil, err
		}
		l.nextLSN = live.firstLSN + uint64(scan.Records)
	}
	l.synced = l.nextLSN - 1

	go l.runSyncer()
	if opts.Sync == SyncOS {
		go l.runFlusher()
	}
	return l, nil
}

// mapSegment installs f (size bytes, first record firstLSN, next append
// at off) as the live segment. MAP_POPULATE prefaults every page at map
// time, so appends never stall on a page fault mid-memcpy.
func (l *Log) mapSegment(f *os.File, size int64, firstLSN uint64, off int64) error {
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE)
	if err != nil {
		return fmt.Errorf("wal: mmap %s: %w", f.Name(), err)
	}
	l.f = f
	l.data = data
	l.off = off
	l.segFirst = firstLSN
	return nil
}

// openSegment creates a fresh segment whose first record will carry
// firstLSN, preallocated to SegmentBytes (or the record that forced it,
// if bigger), writes its header, and fsyncs file and directory so an
// empty-but-named segment never greets recovery headerless.
func (l *Log) openSegment(firstLSN uint64, need int64) error {
	size := l.opts.SegmentBytes
	if headerSize+need > size {
		size = headerSize + need
	}
	path := filepath.Join(l.dir, segName(firstLSN))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if err := preallocate(f, size); err != nil {
		f.Close()
		return err
	}
	if err := l.mapSegment(f, size, firstLSN, headerSize); err != nil {
		f.Close()
		return err
	}
	copy(l.data, encodeHeader(firstLSN))
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	l.opts.Metrics.fsyncs()
	return syncDir(l.dir)
}

// Append logs one record and returns its LSN. The payload is copied; the
// caller may reuse it. When Append returns nil, the record is durable to
// the degree the sync policy promises.
func (l *Log) Append(payload []byte) (uint64, error) {
	lsn, err := l.Enqueue(payload)
	if err != nil {
		return 0, err
	}
	return lsn, l.Wait(lsn)
}

// Enqueue lands one record in the live segment and returns its assigned
// LSN without waiting for an fsync. It is the group-commit half-call: a
// caller ordering its records under its own locks enqueues inside them
// (LSN order = lock order) and calls Wait(lsn) after releasing them, so
// concurrent callers share one fsync instead of serializing on it. The
// payload is copied; once Enqueue returns, the record is in the kernel
// page cache and survives a process crash.
func (l *Log) Enqueue(payload []byte) (uint64, error) {
	if len(payload) == 0 {
		// A zero length field marks a segment's end-of-data.
		return 0, errors.New("wal: empty record")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	need := recordSize(payload)
	if l.off+need > int64(len(l.data)) {
		var err error
		if l.off == headerSize {
			err = l.growLocked(need) // oversize record on an empty segment
		} else {
			err = l.rotateLocked(need)
		}
		if err != nil {
			l.setErr(err)
			return 0, err
		}
	}
	lsn := l.nextLSN
	l.nextLSN++
	putRecord(l.data[l.off:], payload)
	l.off += need
	l.opts.Metrics.appends(1)
	l.opts.Metrics.bytes(int(need))
	switch l.opts.Sync {
	case SyncEach:
		if err := l.f.Sync(); err != nil {
			l.setErr(err)
			return 0, err
		}
		if l.opts.SyncWait > 0 {
			time.Sleep(l.opts.SyncWait)
		}
		l.opts.Metrics.fsyncs()
		l.synced = lsn
		l.progress.Broadcast()
	case SyncGrouped:
		if lsn > l.wantSync {
			l.wantSync = lsn
			l.work.Signal()
		}
	}
	return lsn, nil
}

// Wait blocks until lsn is covered by the sync policy's promise. Under
// SyncOS that held the moment Enqueue's memcpy returned; under the fsync
// policies it waits for a flush covering lsn. It returns nil if the
// record landed even when the log has since died.
func (l *Log) Wait(lsn uint64) error {
	if l.opts.Sync == SyncOS {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.synced < lsn && l.err == nil {
		l.progress.Wait()
	}
	if l.synced >= lsn {
		return nil // landed before the log died
	}
	return l.err
}

// Sync blocks until everything appended so far is fsynced.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	target := l.nextLSN - 1
	if target > l.wantSync {
		l.wantSync = target
		l.work.Signal()
	}
	for l.synced < target && l.err == nil {
		l.progress.Wait()
	}
	if l.synced >= target {
		return nil
	}
	return l.err
}

// LastLSN returns the highest LSN assigned so far (0 if none).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// SyncedLSN returns the highest fsync-covered LSN.
func (l *Log) SyncedLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.synced
}

// TruncateThrough deletes sealed segments wholly at or below lsn. The
// live segment is never touched, so truncation granularity is a segment:
// a segment is removed only once a checkpoint covers its every record.
// Retained readers (replication followers, see Retain) clamp the cut: a
// checkpoint may cover LSN 900, but if the slowest follower has applied
// only 300, every segment holding records above 300 stays on disk.
func (l *Log) TruncateThrough(lsn uint64) error {
	l.mu.Lock()
	if floor, ok := l.retainFloorLocked(); ok && floor < lsn {
		lsn = floor
	}
	var victims []segMeta
	keep := l.sealed[:0]
	for _, s := range l.sealed {
		if s.lastLSN <= lsn {
			victims = append(victims, s)
		} else {
			keep = append(keep, s)
		}
	}
	l.sealed = keep
	l.mu.Unlock()
	for _, s := range victims {
		if err := os.Remove(s.path); err != nil {
			return err
		}
	}
	if len(victims) > 0 {
		l.opts.Metrics.truncates(len(victims))
		return syncDir(l.dir)
	}
	return nil
}

// Close fsyncs the log, then releases the mapping and the file. Further
// Appends fail with ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed || l.killed {
		l.mu.Unlock()
		<-l.syncerDone
		return nil
	}
	l.closed = true
	if t := l.nextLSN - 1; t > l.wantSync {
		l.wantSync = t
	}
	l.work.Signal()
	l.mu.Unlock()
	close(l.flushStop)
	<-l.syncerDone
	l.mu.Lock()
	defer l.mu.Unlock()
	l.releaseLocked()
	if l.err == nil || errors.Is(l.err, ErrClosed) {
		l.setErr(ErrClosed)
		return nil
	}
	return l.err
}

// Kill simulates a crash: the mapping is dropped with no fsync. Dirty
// pages of a MAP_SHARED mapping stay in the kernel page cache, so every
// record whose Enqueue returned survives — exactly what a SIGKILL
// leaves behind.
func (l *Log) Kill() {
	l.mu.Lock()
	if l.closed || l.killed {
		l.mu.Unlock()
		<-l.syncerDone
		return
	}
	l.killed = true
	l.err = ErrKilled
	l.releaseLocked()
	l.work.Signal()
	l.progress.Broadcast()
	l.mu.Unlock()
	close(l.flushStop)
	<-l.syncerDone
}

// releaseLocked unmaps and closes the live segment. Called with mu held.
func (l *Log) releaseLocked() {
	if l.data != nil {
		_ = syscall.Munmap(l.data)
		l.data = nil
	}
	if l.f != nil {
		_ = l.f.Close()
		l.f = nil
	}
}

func (l *Log) setErr(err error) {
	if l.err == nil {
		l.err = err
	}
	l.progress.Broadcast()
	l.work.Signal()
}

// runFlusher periodically fsyncs under SyncOS, bounding the machine-crash
// window to roughly one FlushInterval.
func (l *Log) runFlusher() {
	t := l.opts.Clock.NewTicker(l.opts.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-l.flushStop:
			return
		case <-t.C():
			if l.Sync() != nil {
				return
			}
		}
	}
}

// runSyncer is the goroutine that performs coalesced fsyncs: group
// commits under SyncGrouped, background and explicit Sync flushes under
// SyncOS. Rotation seals segments inline on the append path, so the
// syncer's only job is flushing the live segment.
func (l *Log) runSyncer() {
	defer close(l.syncerDone)
	lingered := false // one group window spent since the last fsync
	l.mu.Lock()
	for {
		for l.wantSync <= l.synced && !l.closed && !l.killed && l.err == nil {
			l.work.Wait()
		}
		if l.killed || l.err != nil {
			break
		}
		if l.wantSync > l.synced {
			if l.opts.GroupWindow > 0 && !lingered && !l.closed {
				lingered = true
				l.lingerLocked()
				continue // pick up records that arrived during the window
			}
			l.fsyncLocked()
			lingered = false
			continue
		}
		if l.closed {
			break
		}
	}
	l.mu.Unlock()
}

// growLocked re-preallocates an empty live segment to fit one oversize
// record: rotating would seal a record-less segment, whose name would
// collide with its successor's. Called with mu held.
func (l *Log) growLocked(need int64) error {
	f, first := l.f, l.segFirst
	if err := syscall.Munmap(l.data); err != nil {
		return err
	}
	l.data = nil
	if err := preallocate(f, headerSize+need); err != nil {
		return err
	}
	return l.mapSegment(f, headerSize+need, first, headerSize)
}

// preallocate sizes a fresh segment. fallocate gives it real extents up
// front, so appends dirty already-allocated pages and writeback never
// pays ext4 block allocation; filesystems without it (tmpfs) fall back
// to a sparse file, which costs nothing there anyway.
func preallocate(f *os.File, size int64) error {
	if err := syscall.Fallocate(int(f.Fd()), 0, 0, size); err == nil {
		return nil
	}
	return f.Truncate(size)
}

// rotateLocked seals the live segment (fsync + unmap + close) and opens
// the next one, preallocated to fit at least the record that triggered
// the rotation. Everything in the sealed segment is durable afterwards.
// Called with mu held; rotation is rare enough (once per SegmentBytes)
// that holding the lock across the fsync costs nothing measurable.
func (l *Log) rotateLocked(need int64) error {
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.opts.Metrics.fsyncs()
	path := l.f.Name()
	l.releaseLocked()
	last := l.nextLSN - 1
	l.sealed = append(l.sealed, segMeta{path: path, firstLSN: l.segFirst, lastLSN: last})
	if last > l.synced {
		l.synced = last
		l.progress.Broadcast()
	}
	l.opts.Metrics.seals()
	return l.openSegment(last+1, need)
}

// lingerLocked waits out the group-commit window before an fsync: the
// appenders acked by the previous sync are, at saturation, about to hand
// us their next record, and folding those in before flushing is what
// makes the commit "group". It exits early once as many records arrived
// as the previous fsync covered, so the window's full length is paid only
// when load drops. Yield-spins rather than time.Sleep because the sleep
// floor on common kernels (~1ms) dwarfs the window, and yielding is
// precisely what lets the parked appenders run. Called with mu held;
// drops it around each yield.
func (l *Log) lingerLocked() {
	expect := uint64(l.lastBatch)
	deadline := time.Now().Add(l.opts.GroupWindow)
	for l.nextLSN-1-l.synced < expect && !l.closed && !l.killed {
		l.mu.Unlock()
		runtime.Gosched()
		if !time.Now().Before(deadline) {
			l.mu.Lock()
			return
		}
		l.mu.Lock()
	}
}

// fsyncLocked flushes the live segment; every record appended before the
// call is durable afterwards (sealed segments were flushed when sealed).
// Called with mu held; drops it around the fsync so appends keep landing
// while the disk works — a record arriving mid-flush has an LSN above
// covered and waits for the next one.
func (l *Log) fsyncLocked() {
	covered := l.nextLSN - 1
	f := l.f
	l.mu.Unlock()
	err := f.Sync()
	if err == nil && l.opts.SyncWait > 0 {
		time.Sleep(l.opts.SyncWait)
	}
	l.mu.Lock()
	if err != nil {
		// ErrClosed means rotation sealed the segment mid-flush — and
		// rotation fsyncs before it closes, so every record this flush
		// claims is already down. A killed log closes without syncing;
		// there the claim must not be made.
		if !errors.Is(err, os.ErrClosed) {
			l.setErr(err)
			return
		}
		if l.killed {
			return
		}
	} else {
		l.opts.Metrics.fsyncs()
	}
	if covered > l.synced {
		l.lastBatch = int(covered - l.synced)
		l.synced = covered
	}
	l.progress.Broadcast()
}
