package wal

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// shipLog opens a log with tiny segments so a handful of records spans
// several files, and appends n records "rec-%04d" (LSN i+1 holds rec-i).
func shipLog(t *testing.T, n int) (*Log, string) {
	t.Helper()
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rec-%04d", i))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	return l, dir
}

// oldestAvailable reports the lowest LSN still readable from the log.
func oldestAvailable(t *testing.T, l *Log) uint64 {
	t.Helper()
	for after := uint64(0); ; after++ {
		recs, err := l.ReadAfter(after, 1, 0)
		if err == nil {
			if len(recs) == 0 {
				t.Fatalf("log drained while probing oldest LSN (after=%d)", after)
			}
			return after + 1
		}
		if !errors.Is(err, ErrCompacted) {
			t.Fatalf("ReadAfter(%d): %v", after, err)
		}
	}
}

// TestRetainClampsTruncation pins the retention guard: TruncateThrough
// never removes a segment holding records above the slowest registered
// follower's applied LSN, whatever the checkpoint watermark says.
func TestRetainClampsTruncation(t *testing.T) {
	cases := []struct {
		name     string
		retained map[string]uint64
		truncate uint64
		// maxOldest: every LSN above the effective floor must survive, so
		// the oldest readable LSN must be at or below floor+1.
		maxOldest uint64
	}{
		{"no-followers", nil, 60, 61},
		{"one-follower-behind", map[string]uint64{"f1": 10}, 60, 11},
		{"slowest-wins", map[string]uint64{"f1": 10, "f2": 55}, 60, 11},
		{"follower-ahead-of-cut", map[string]uint64{"f1": 70}, 60, 61},
		{"floor-zero-holds-everything", map[string]uint64{"f1": 0}, 60, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l, _ := shipLog(t, 80)
			defer l.Close()
			for id, lsn := range tc.retained {
				l.Retain(id, lsn)
			}
			if err := l.TruncateThrough(tc.truncate); err != nil {
				t.Fatalf("TruncateThrough: %v", err)
			}
			oldest := oldestAvailable(t, l)
			if oldest > tc.maxOldest {
				t.Fatalf("oldest readable LSN %d, want <= %d: truncation crossed the retention floor", oldest, tc.maxOldest)
			}
			// Everything from the oldest survivor to the head must read
			// back intact.
			recs, err := l.ReadAfter(oldest-1, 0, 0)
			if err != nil {
				t.Fatalf("ReadAfter(%d): %v", oldest-1, err)
			}
			if want := 80 - int(oldest) + 1; len(recs) != want {
				t.Fatalf("read %d records from LSN %d, want %d", len(recs), oldest, want)
			}
			for i, rec := range recs {
				if want := fmt.Sprintf("rec-%04d", int(oldest)+i-1); string(rec) != want {
					t.Fatalf("record %d = %q, want %q", int(oldest)+i, rec, want)
				}
			}
		})
	}
}

// TestReleaseRetainUnblocksTruncation pins that dropping a follower's
// floor lets the next truncation advance.
func TestReleaseRetainUnblocksTruncation(t *testing.T) {
	l, _ := shipLog(t, 80)
	defer l.Close()
	l.Retain("f1", 5)
	if err := l.TruncateThrough(60); err != nil {
		t.Fatal(err)
	}
	if oldest := oldestAvailable(t, l); oldest > 6 {
		t.Fatalf("oldest %d with floor 5", oldest)
	}
	l.ReleaseRetain("f1")
	if err := l.TruncateThrough(60); err != nil {
		t.Fatal(err)
	}
	if _, err := l.ReadAfter(5, 1, 0); !errors.Is(err, ErrCompacted) {
		t.Fatalf("ReadAfter(5) after release+truncate: %v, want ErrCompacted", err)
	}
}

// TestReadAfterSegmentBoundary pins the segment-handoff contract: a
// bounded read that stops mid-log resumes exactly one LSN later across
// every segment boundary, with every payload intact — the shipper's
// no-torn-read guarantee at the file seam.
func TestReadAfterSegmentBoundary(t *testing.T) {
	const n = 80
	l, _ := shipLog(t, n)
	defer l.Close()
	for _, batch := range []int{1, 3, 7, n} {
		t.Run(fmt.Sprintf("batch-%d", batch), func(t *testing.T) {
			var got []string
			after := uint64(0)
			for {
				recs, err := l.ReadAfter(after, batch, 0)
				if err != nil {
					t.Fatalf("ReadAfter(%d): %v", after, err)
				}
				if len(recs) == 0 {
					break
				}
				if len(recs) > batch {
					t.Fatalf("ReadAfter returned %d records, cap %d", len(recs), batch)
				}
				for _, r := range recs {
					got = append(got, string(r))
				}
				after += uint64(len(recs))
			}
			if len(got) != n {
				t.Fatalf("read %d records, want %d", len(got), n)
			}
			for i, g := range got {
				if want := fmt.Sprintf("rec-%04d", i); g != want {
					t.Fatalf("record %d = %q, want %q", i+1, g, want)
				}
			}
		})
	}
}

// TestReadAfterMaxBytes pins the byte budget: batches stop before the
// budget, except that the first record always ships (a record larger
// than the budget must not wedge the stream).
func TestReadAfterMaxBytes(t *testing.T) {
	l, _ := shipLog(t, 20)
	defer l.Close()
	recs, err := l.ReadAfter(0, 0, 20) // each payload is 8 bytes
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("20-byte budget shipped %d records, want 2", len(recs))
	}
	recs, err = l.ReadAfter(0, 0, 3) // budget below one record
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("tiny budget shipped %d records, want exactly 1", len(recs))
	}
}

// TestReadAfterCaughtUp pins that a reader at the head gets an empty,
// error-free batch.
func TestReadAfterCaughtUp(t *testing.T) {
	l, _ := shipLog(t, 5)
	defer l.Close()
	recs, err := l.ReadAfter(5, 0, 0)
	if err != nil || recs != nil {
		t.Fatalf("caught-up read = (%v, %v), want (nil, nil)", recs, err)
	}
	recs, err = l.ReadAfter(99, 0, 0)
	if err != nil || recs != nil {
		t.Fatalf("read past head = (%v, %v), want (nil, nil)", recs, err)
	}
}

// TestReadAfterRacingAppendsAndTruncation is the open-reader race from
// the issue: one goroutine appends, one checkpoints and truncates up to
// the reader's acked floor, while the reader streams the log in small
// batches. Every batch must decode exactly the records that were
// appended — a torn read, a gap, or a vanished segment above the floor
// all fail the test. Run with -race this also pins the locking.
func TestReadAfterRacingAppendsAndTruncation(t *testing.T) {
	const total = 400
	l, _ := shipLog(t, 1)
	defer l.Close()
	l.Retain("reader", 0)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // appender
		defer wg.Done()
		for i := 1; i < total; i++ {
			if _, err := l.Append([]byte(fmt.Sprintf("rec-%04d", i))); err != nil {
				t.Errorf("append: %v", err)
				return
			}
		}
	}()
	go func() { // truncator: keeps cutting at the head watermark
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := l.TruncateThrough(l.LastLSN()); err != nil {
				t.Errorf("truncate: %v", err)
				return
			}
		}
	}()

	after := uint64(0)
	for after < total {
		recs, err := l.ReadAfter(after, 7, 0)
		if err != nil {
			t.Fatalf("ReadAfter(%d): %v", after, err)
		}
		for i, rec := range recs {
			lsn := after + uint64(i) + 1
			if want := fmt.Sprintf("rec-%04d", lsn-1); string(rec) != want {
				t.Fatalf("LSN %d = %q, want %q", lsn, rec, want)
			}
		}
		after += uint64(len(recs))
		l.Retain("reader", after) // ack: truncation may now pass here
	}
	close(stop)
	wg.Wait()
}
