package wal

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzWALDecode feeds arbitrary bytes to the record decoder the way
// recovery does: walk the stream record by record. It must never panic,
// must never consume more bytes than exist, and must stop cleanly at the
// first torn or corrupt record.
func FuzzWALDecode(f *testing.F) {
	// Seed with a healthy stream, then damaged variants of it.
	var healthy []byte
	for _, p := range []string{"", "a", "hello world", string(make([]byte, 300))} {
		healthy = appendRecord(healthy, []byte(p))
	}
	f.Add(healthy)
	f.Add(healthy[:len(healthy)-3]) // torn tail
	flipped := bytes.Clone(healthy)
	flipped[recHdrSize+1] ^= 0x01 // payload bit flip -> CRC mismatch
	f.Add(flipped)
	badLen := bytes.Clone(healthy)
	badLen[2] = 0xff // insane length field
	f.Add(badLen)
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		off := 0
		for off <= len(data) {
			payload, n, err := DecodeRecord(data[off:])
			if err != nil {
				// Must stop at a classified error, never something else.
				if !errors.Is(err, ErrTorn) && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("unclassified decode error at offset %d: %v", off, err)
				}
				if n != 0 {
					t.Fatalf("error with n=%d at offset %d, want 0", n, off)
				}
				return
			}
			if n == 0 {
				if len(data[off:]) != 0 {
					t.Fatalf("clean stop with %d bytes left at offset %d", len(data)-off, off)
				}
				return // clean end of stream
			}
			if n < recHdrSize || off+n > len(data) {
				t.Fatalf("decoder consumed %d bytes at offset %d of %d", n, off, len(data))
			}
			if len(payload) != n-recHdrSize {
				t.Fatalf("payload %d bytes for frame of %d", len(payload), n)
			}
			off += n
		}
	})
}
