package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// CorruptInfo reports a record the scanner refused: where it sits and why.
type CorruptInfo struct {
	Offset int64 // byte offset of the bad record within the segment file
	Err    error
}

// zeroFrom reports whether b[off:] is entirely zero bytes — the clean
// tail of a preallocated segment.
func zeroFrom(b []byte, off int64) bool {
	for _, c := range b[off:] {
		if c != 0 {
			return false
		}
	}
	return true
}

// dataEnd returns the offset just past the last nonzero byte of b.
func dataEnd(b []byte) int64 {
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] != 0 {
			return int64(i + 1)
		}
	}
	return 0
}

// tornTail reports whether the undecodable bytes at off look like the
// residue of one append cut short by a crash: a frame that claims more
// than was ever memcpy'd, with nothing but zeros after its claimed
// extent. Anything decodable-but-wrong that is FOLLOWED by more data is
// bit rot instead — a crash never writes past the record it tore.
// decodeErr is the DecodeRecord failure at off; nil means a zero-length
// frame decoded even though nonzero bytes follow it, which no writer
// produces (empty records are refused at Enqueue).
func tornTail(b []byte, off int64, decodeErr error) bool {
	if errors.Is(decodeErr, ErrTorn) {
		return true // frame runs past the end of the file
	}
	if !errors.Is(decodeErr, ErrCorrupt) {
		return false // stray data after a zero frame
	}
	length := int64(binary.LittleEndian.Uint32(b[off : off+4]))
	if length > MaxRecord {
		// A garbage length field: a tear only if nothing was written
		// beyond the header it mangled.
		return zeroFrom(b, off+recHdrSize)
	}
	end := off + recHdrSize + length
	return end >= int64(len(b)) || zeroFrom(b, end)
}

// scanErr names the error for a record the scanner stopped at.
func scanErr(decodeErr error) error {
	if decodeErr != nil {
		return decodeErr
	}
	return fmt.Errorf("%w: stray data after zero-length frame", ErrCorrupt)
}

// segScan is the result of walking one segment file to its end.
type segScan struct {
	FirstLSN  uint64
	Records   int
	GoodBytes int64 // offset just past the last valid record
	FileBytes int64
	Torn      bool         // tail record torn by a crash (see tornTail)
	Corrupt   *CorruptInfo // CRC mismatch, insane length, or stray data
}

// scanSegment reads a whole segment and walks its records. A short or
// bad header is reported as corruption at offset 0.
func scanSegment(path string) (segScan, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return segScan{}, err
	}
	s := segScan{FileBytes: int64(len(b))}
	first, err := decodeHeader(b)
	if err != nil {
		s.Corrupt = &CorruptInfo{Offset: 0, Err: err}
		return s, nil
	}
	s.FirstLSN = first
	off := int64(headerSize)
	for off < int64(len(b)) {
		payload, n, err := DecodeRecord(b[off:])
		if err == nil && len(payload) > 0 {
			off += int64(n)
			s.Records++
			continue
		}
		if zeroFrom(b, off) {
			break // clean preallocated tail
		}
		if tornTail(b, off, err) {
			s.Torn = true
		} else {
			s.Corrupt = &CorruptInfo{Offset: off, Err: scanErr(err)}
		}
		break
	}
	s.GoodBytes = off
	return s, nil
}

// ReplayStats summarizes a Replay pass.
type ReplayStats struct {
	Segments  int
	Records   int   // records delivered to fn (after the `after` filter)
	Scanned   int   // records decoded, including skipped ones
	TornBytes int64 // residue bytes of the torn record on the last segment
}

// Replay walks every record in dir in LSN order, calling fn for records
// with lsn > after. A torn record at the tail of the newest segment — a
// crash mid-append leaves one — is tolerated; a torn or corrupt record
// anywhere else aborts with an error naming the segment and byte offset,
// without calling fn for it or anything after it.
func Replay(dir string, after uint64, fn func(lsn uint64, payload []byte) error) (ReplayStats, error) {
	var stats ReplayStats
	segs, err := listSegments(dir)
	if os.IsNotExist(err) {
		return stats, nil
	}
	if err != nil {
		return stats, err
	}
	for i, seg := range segs {
		last := i == len(segs)-1
		b, err := os.ReadFile(seg.path)
		if err != nil {
			return stats, err
		}
		first, err := decodeHeader(b)
		if err != nil {
			return stats, fmt.Errorf("wal: segment %s: %w", filepath.Base(seg.path), err)
		}
		stats.Segments++
		off := int64(headerSize)
		lsn := first
		for off < int64(len(b)) {
			payload, n, err := DecodeRecord(b[off:])
			if err == nil && len(payload) > 0 {
				stats.Scanned++
				if lsn > after {
					if err := fn(lsn, payload); err != nil {
						return stats, err
					}
					stats.Records++
				}
				off += int64(n)
				lsn++
				continue
			}
			if zeroFrom(b, off) {
				break // clean preallocated tail
			}
			if last && tornTail(b, off, err) {
				stats.TornBytes = dataEnd(b) - off
				break
			}
			return stats, fmt.Errorf("wal: segment %s: %w at offset %d",
				filepath.Base(seg.path), scanErr(err), off)
		}
	}
	return stats, nil
}

// SegmentInfo describes one segment for inspection tooling.
type SegmentInfo struct {
	Name     string
	FirstLSN uint64
	Records  int
	Bytes    int64
	Torn     bool
	TornAt   int64 // offset of the torn record, if Torn
	Corrupt  *CorruptInfo
}

// Inspect scans every segment in dir and reports headers, record counts,
// and the offset of any torn or corrupt record. Unlike Replay it never
// aborts: damage is recorded per segment so an operator sees all of it.
func Inspect(dir string) ([]SegmentInfo, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	infos := make([]SegmentInfo, 0, len(segs))
	for _, seg := range segs {
		scan, err := scanSegment(seg.path)
		if err != nil {
			return infos, err
		}
		info := SegmentInfo{
			Name:     filepath.Base(seg.path),
			FirstLSN: scan.FirstLSN,
			Records:  scan.Records,
			Bytes:    scan.FileBytes,
			Torn:     scan.Torn,
			Corrupt:  scan.Corrupt,
		}
		if scan.Torn {
			info.TornAt = scan.GoodBytes
		}
		infos = append(infos, info)
	}
	return infos, nil
}
