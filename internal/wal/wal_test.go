package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func collect(t *testing.T, dir string, after uint64) map[uint64]string {
	t.Helper()
	got := map[uint64]string{}
	_, err := Replay(dir, after, func(lsn uint64, payload []byte) error {
		got[lsn] = string(payload)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		lsn, err := l.Append([]byte(fmt.Sprintf("rec-%03d", i)))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn = %d, want %d", lsn, i+1)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got := collect(t, dir, 0)
	if len(got) != 100 {
		t.Fatalf("replayed %d records, want 100", len(got))
	}
	if got[1] != "rec-000" || got[100] != "rec-099" {
		t.Fatalf("unexpected payloads: %q %q", got[1], got[100])
	}
	if after := collect(t, dir, 60); len(after) != 40 {
		t.Fatalf("replay after 60: %d records, want 40", len(after))
	}
}

func TestConcurrentAppendAssignsDenseLSNs(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncOS, SyncGrouped} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{Sync: pol})
			if err != nil {
				t.Fatal(err)
			}
			const workers, per = 8, 50
			var wg sync.WaitGroup
			var mu sync.Mutex
			seen := map[uint64]string{}
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						p := fmt.Sprintf("w%d-%d", w, i)
						lsn, err := l.Append([]byte(p))
						if err != nil {
							t.Errorf("append: %v", err)
							return
						}
						mu.Lock()
						seen[lsn] = p
						mu.Unlock()
					}
				}(w)
			}
			wg.Wait()
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			if len(seen) != workers*per {
				t.Fatalf("got %d distinct LSNs, want %d", len(seen), workers*per)
			}
			got := collect(t, dir, 0)
			for lsn, p := range seen {
				if got[lsn] != p {
					t.Fatalf("lsn %d: replayed %q, want %q", lsn, got[lsn], p)
				}
			}
		})
	}
}

func TestRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 64)
	for i := 0; i < 40; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	segs, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce >= 3 segments, got %d", len(segs))
	}
	total := 0
	for _, s := range segs {
		total += s.Records
	}
	if total != 40 {
		t.Fatalf("segments hold %d records, want 40", total)
	}

	// Truncating through LSN 20 must drop only segments fully covered.
	if err := l.TruncateThrough(20); err != nil {
		t.Fatal(err)
	}
	got := collect(t, dir, 20)
	if len(got) != 20 {
		t.Fatalf("replay after truncate: %d records beyond LSN 20, want 20", len(got))
	}
	// Everything still on disk replays without error from 0 too (records
	// below the cut may be gone, but none may be damaged).
	if _, err := Replay(dir, 0, func(uint64, []byte) error { return nil }); err != nil {
		t.Fatalf("full replay after truncate: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen continues the LSN sequence.
	l2, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := l2.Append([]byte("after-reopen"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 41 {
		t.Fatalf("lsn after reopen = %d, want 41", lsn)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rec%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the final record the way a crash mid-memcpy does: its frame
	// is in place but the payload never fully landed, so the tail of the
	// record is still the segment's preallocated zeros. Each record here
	// is recHdrSize+4 bytes; zero the last 3 payload bytes of the fifth.
	path := filepath.Join(dir, segName(1))
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	tornEnd := int64(headerSize + 5*(recHdrSize+4))
	if _, err := f.WriteAt(make([]byte, 3), tornEnd-3); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay tolerates the torn tail.
	var stats ReplayStats
	if stats, err = Replay(dir, 0, func(uint64, []byte) error { return nil }); err != nil {
		t.Fatalf("replay over torn tail: %v", err)
	}
	if stats.Records != 4 || stats.TornBytes == 0 {
		t.Fatalf("stats = %+v, want 4 records and a torn tail", stats)
	}

	// Open truncates it away and appends continue from LSN 5.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := l2.Append([]byte("rec4b"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 5 {
		t.Fatalf("lsn after torn-tail open = %d, want 5", lsn)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	got := collect(t, dir, 0)
	if got[5] != "rec4b" || len(got) != 5 {
		t.Fatalf("replay after repair: %v", got)
	}
}

func TestCorruptMidSegmentRejected(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte("payload-payload")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a bit inside the second record's payload.
	path := filepath.Join(dir, segName(1))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := recHdrSize + len("payload-payload")
	b[headerSize+rec+recHdrSize+2] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	var delivered int
	_, err = Replay(dir, 0, func(uint64, []byte) error { delivered++; return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay error = %v, want ErrCorrupt", err)
	}
	if delivered != 1 {
		t.Fatalf("delivered %d records before corruption, want 1", delivered)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over corruption = %v, want ErrCorrupt", err)
	}
	infos, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if infos[0].Corrupt == nil || infos[0].Corrupt.Offset != int64(headerSize+rec) {
		t.Fatalf("Inspect corrupt info = %+v, want offset %d", infos[0].Corrupt, headerSize+rec)
	}
}

func TestKillLosesOnlyUnackedTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var acked []uint64
	for i := 0; i < 20; i++ {
		lsn, err := l.Append([]byte(fmt.Sprintf("r%02d", i)))
		if err != nil {
			t.Fatal(err)
		}
		acked = append(acked, lsn)
	}
	l.Kill()
	if _, err := l.Append([]byte("late")); !errors.Is(err, ErrKilled) {
		t.Fatalf("append after kill = %v, want ErrKilled", err)
	}
	// Every acked record survives a process kill: Append under SyncOS
	// returns only after the memcpy into the MAP_SHARED segment, and
	// the kernel owns those dirty pages.
	got := collect(t, dir, 0)
	for _, lsn := range acked {
		if _, ok := got[lsn]; !ok {
			t.Fatalf("acked LSN %d lost after Kill", lsn)
		}
	}
}

func TestCloseIsIdempotentAndSyncs(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("y")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
}

func TestMetricsFire(t *testing.T) {
	dir := t.TempDir()
	var appends, bytes, fsyncs, seals int
	l, err := Open(dir, Options{
		SegmentBytes: 128,
		Sync:         SyncGrouped,
		Metrics: Metrics{
			Appends: func(n int) { appends += n },
			Bytes:   func(n int) { bytes += n },
			Fsyncs:  func() { fsyncs++ },
			Seals:   func() { seals++ },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append(make([]byte, 48)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if appends != 10 || bytes == 0 || fsyncs == 0 || seals == 0 {
		t.Fatalf("metrics appends=%d bytes=%d fsyncs=%d seals=%d", appends, bytes, fsyncs, seals)
	}
}

func TestOpenFirstLSNSeedsEmptyLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{FirstLSN: 42})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.LastLSN(); got != 41 {
		t.Fatalf("LastLSN on a seeded empty log = %d, want 41", got)
	}
	lsn, err := l.Append([]byte("first"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 42 {
		t.Fatalf("first append landed at %d, want 42", lsn)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopening an established log ignores the seed: the segments on disk
	// already carry the numbering.
	l2, err := Open(dir, Options{FirstLSN: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.LastLSN(); got != 42 {
		t.Fatalf("reopened LastLSN = %d, want 42", got)
	}
	if lsn, err := l2.Append([]byte("second")); err != nil || lsn != 43 {
		t.Fatalf("append after reopen = (%d, %v), want (43, nil)", lsn, err)
	}
}

func TestReplayAfterSeededFirstLSN(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{FirstLSN: 101})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := collect(t, dir, 100)
	if len(got) != 5 || got[101] != "r0" || got[105] != "r4" {
		t.Fatalf("replay after 100 = %v", got)
	}
}
