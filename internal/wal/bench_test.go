package wal

import (
	"fmt"
	"sync"
	"testing"
)

// BenchmarkWALAppend contrasts the three sync policies at exactly 8
// concurrent writers. The acceptance bar: grouped fsync must beat
// per-record fsync by >= 5x, because one disk flush amortizes over every
// appender parked in the batch.
func BenchmarkWALAppend(b *testing.B) {
	const writers = 8
	payload := make([]byte, 256)
	for _, pol := range []SyncPolicy{SyncEach, SyncGrouped, SyncOS} {
		b.Run(fmt.Sprintf("sync=%s/writers=%d", pol, writers), func(b *testing.B) {
			l, err := Open(b.TempDir(), Options{Sync: pol})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					n := b.N / writers
					if w < b.N%writers {
						n++
					}
					for i := 0; i < n; i++ {
						if _, err := l.Append(payload); err != nil {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}
