package submodular

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"sor/internal/coverage"
	"sor/internal/matroid"
)

// setCover is a classic monotone submodular objective: each element covers
// a subset of a universe; f(S) = |union of covered subsets|.
type setCover struct {
	covers  [][]int
	covered map[int]bool
}

func newSetCover(covers [][]int) *setCover {
	return &setCover{covers: covers, covered: make(map[int]bool)}
}

func (s *setCover) Gain(e int) float64 {
	var g float64
	for _, u := range s.covers[e] {
		if !s.covered[u] {
			g++
		}
	}
	return g
}

func (s *setCover) Add(e int) {
	for _, u := range s.covers[e] {
		s.covered[u] = true
	}
}

func (s *setCover) eval(set []int) float64 {
	seen := make(map[int]bool)
	for _, e := range set {
		for _, u := range s.covers[e] {
			seen[u] = true
		}
	}
	return float64(len(seen))
}

func TestGreedyNilArgs(t *testing.T) {
	u, err := matroid.NewUniform(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Greedy(nil, u, 0); err != ErrNilArgs {
		t.Fatalf("nil objective: %v", err)
	}
	if _, err := Greedy(&FuncObjective{}, nil, 0); err != ErrNilArgs {
		t.Fatalf("nil matroid: %v", err)
	}
	if _, err := LazyGreedy(nil, u, 0); err != ErrNilArgs {
		t.Fatalf("lazy nil objective: %v", err)
	}
	if _, err := LazyGreedy(&FuncObjective{}, nil, 0); err != ErrNilArgs {
		t.Fatalf("lazy nil matroid: %v", err)
	}
}

func TestGreedySetCoverPicksObviousBest(t *testing.T) {
	covers := [][]int{
		{1, 2, 3, 4}, // big element
		{1, 2},
		{5},
		{3, 4},
	}
	sc := newSetCover(covers)
	u, err := matroid.NewUniform(len(covers), 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Greedy(sc, u, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chosen) != 2 {
		t.Fatalf("chose %v", res.Chosen)
	}
	if res.Chosen[0] != 0 {
		t.Fatalf("first pick = %d, want 0", res.Chosen[0])
	}
	if res.Chosen[1] != 2 {
		t.Fatalf("second pick = %d, want 2 (the only element adding new coverage)", res.Chosen[1])
	}
	if res.Value != 5 {
		t.Fatalf("value = %v, want 5", res.Value)
	}
}

func TestGreedyStopsWhenNoPositiveGain(t *testing.T) {
	covers := [][]int{{1}, {1}, {1}}
	sc := newSetCover(covers)
	u, err := matroid.NewUniform(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Greedy(sc, u, 0)
	if err != nil {
		t.Fatal(err)
	}
	// After the first pick the others add nothing; minGain=0 stops them.
	if len(res.Chosen) != 1 {
		t.Fatalf("chose %v, want a single element", res.Chosen)
	}
}

func TestGreedyRespectsPartitionBudgets(t *testing.T) {
	covers := [][]int{{1}, {2}, {3}, {4}, {5}, {6}}
	sc := newSetCover(covers)
	// Elements 0-2 belong to user 0 (budget 1), 3-5 to user 1 (budget 2).
	m, err := matroid.NewPartition([]int{0, 0, 0, 1, 1, 1}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Greedy(sc, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chosen) != 3 {
		t.Fatalf("chose %d elements, want 3", len(res.Chosen))
	}
	var user0 int
	for _, e := range res.Chosen {
		if e < 3 {
			user0++
		}
	}
	if user0 != 1 {
		t.Fatalf("user 0 scheduled %d times, budget 1", user0)
	}
}

func TestLazyGreedyMatchesGreedyValue(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(25)
		universe := 5 + rng.Intn(40)
		covers := make([][]int, n)
		for i := range covers {
			sz := 1 + rng.Intn(6)
			for j := 0; j < sz; j++ {
				covers[i] = append(covers[i], rng.Intn(universe))
			}
		}
		part := make([]int, n)
		for i := range part {
			part[i] = rng.Intn(3)
		}
		capacity := []int{1 + rng.Intn(3), 1 + rng.Intn(3), 1 + rng.Intn(3)}

		mkMatroid := func() matroid.Matroid {
			m, err := matroid.NewPartition(part, capacity)
			if err != nil {
				t.Fatal(err)
			}
			return m
		}
		g, err := Greedy(newSetCover(covers), mkMatroid(), 0)
		if err != nil {
			t.Fatal(err)
		}
		l, err := LazyGreedy(newSetCover(covers), mkMatroid(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(g.Value-l.Value) > 1e-9 {
			t.Fatalf("trial %d: greedy=%v lazy=%v", trial, g.Value, l.Value)
		}
		if l.OracleCalls > g.OracleCalls {
			t.Fatalf("trial %d: lazy used MORE oracle calls (%d > %d)",
				trial, l.OracleCalls, g.OracleCalls)
		}
	}
}

// brute-force optimum for tiny instances.
func bruteForceOpt(covers [][]int, part, capacity []int) float64 {
	n := len(covers)
	best := 0.0
	for s := 0; s < 1<<n; s++ {
		used := make([]int, len(capacity))
		feasible := true
		var set []int
		for e := 0; e < n; e++ {
			if s&(1<<e) == 0 {
				continue
			}
			used[part[e]]++
			if used[part[e]] > capacity[part[e]] {
				feasible = false
				break
			}
			set = append(set, e)
		}
		if !feasible {
			continue
		}
		if v := newSetCover(covers).eval(set); v > best {
			best = v
		}
	}
	return best
}

// Property: greedy achieves at least 1/2 of the optimum over a partition
// matroid — the paper's approximation guarantee for Algorithm 1.
func TestGreedyHalfApproximationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(9) // <= 10 so brute force is cheap
		universe := 3 + rng.Intn(12)
		covers := make([][]int, n)
		for i := range covers {
			sz := 1 + rng.Intn(4)
			for j := 0; j < sz; j++ {
				covers[i] = append(covers[i], rng.Intn(universe))
			}
		}
		parts := 1 + rng.Intn(3)
		part := make([]int, n)
		for i := range part {
			part[i] = rng.Intn(parts)
		}
		capacity := make([]int, parts)
		for i := range capacity {
			capacity[i] = rng.Intn(3)
		}
		res, err := Greedy(newSetCover(covers), mustPartition(t, part, capacity), 0)
		if err != nil {
			return false
		}
		opt := bruteForceOpt(covers, part, capacity)
		return res.Value >= opt/2-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func mustPartition(t *testing.T, part, capacity []int) matroid.Matroid {
	t.Helper()
	m, err := matroid.NewPartition(part, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// coverageObjective adapts the coverage accumulator; this is exactly the
// objective the SOR scheduler maximizes.
type coverageObjective struct{ acc *coverage.Accumulator }

func (c *coverageObjective) Gain(e int) float64 { return c.acc.Gain(e) }
func (c *coverageObjective) Add(e int)          { c.acc.Add(e) }

func TestGreedyOnCoverageSpreadsMeasurements(t *testing.T) {
	start := time.Date(2013, time.November, 17, 11, 0, 0, 0, time.UTC)
	tl, err := coverage.NewTimeline(start, 10*time.Second, 120)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := coverage.NewAccumulator(tl, coverage.GaussianKernel{Sigma: 10})
	if err != nil {
		t.Fatal(err)
	}
	u, err := matroid.NewUniform(tl.N(), 12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Greedy(&coverageObjective{acc: acc}, u, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chosen) != 12 {
		t.Fatalf("chose %d instants", len(res.Chosen))
	}
	// Greedy should spread: no two chosen instants adjacent.
	seen := make(map[int]bool)
	for _, e := range res.Chosen {
		if seen[e-1] || seen[e] || seen[e+1] {
			t.Fatalf("greedy clustered instants: %v", res.Chosen)
		}
		seen[e] = true
	}
	// And beat a clustered baseline schedule of the same size.
	baseline := coverage.Eval(tl, coverage.GaussianKernel{Sigma: 10}, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	if res.Value <= baseline {
		t.Fatalf("greedy %v should beat clustered baseline %v", res.Value, baseline)
	}
}

func TestLazyGreedyOnCoverageMatchesGreedy(t *testing.T) {
	start := time.Date(2013, time.November, 17, 11, 0, 0, 0, time.UTC)
	tl, err := coverage.NewTimeline(start, 10*time.Second, 300)
	if err != nil {
		t.Fatal(err)
	}
	run := func(lazy bool) *Result {
		acc, err := coverage.NewAccumulator(tl, coverage.GaussianKernel{Sigma: 10})
		if err != nil {
			t.Fatal(err)
		}
		u, err := matroid.NewUniform(tl.N(), 40)
		if err != nil {
			t.Fatal(err)
		}
		var res *Result
		if lazy {
			res, err = LazyGreedy(&coverageObjective{acc: acc}, u, 1e-9)
		} else {
			res, err = Greedy(&coverageObjective{acc: acc}, u, 1e-9)
		}
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	g, l := run(false), run(true)
	// Ties between equal-gain instants may break differently between the
	// two variants, so compare values with a small tolerance.
	if math.Abs(g.Value-l.Value) > 1e-3 {
		t.Fatalf("greedy=%v lazy=%v", g.Value, l.Value)
	}
	if l.OracleCalls >= g.OracleCalls {
		t.Fatalf("lazy greedy gave no oracle savings: %d vs %d", l.OracleCalls, g.OracleCalls)
	}
}

func BenchmarkGreedyCoverage(b *testing.B) {
	benchGreedy(b, false)
}

func BenchmarkLazyGreedyCoverage(b *testing.B) {
	benchGreedy(b, true)
}

func benchGreedy(b *testing.B, lazy bool) {
	start := time.Date(2013, time.November, 17, 11, 0, 0, 0, time.UTC)
	tl, err := coverage.NewTimeline(start, 10*time.Second, 1080)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc, err := coverage.NewAccumulator(tl, coverage.GaussianKernel{Sigma: 10})
		if err != nil {
			b.Fatal(err)
		}
		u, err := matroid.NewUniform(tl.N(), 100)
		if err != nil {
			b.Fatal(err)
		}
		if lazy {
			_, err = LazyGreedy(&coverageObjective{acc: acc}, u, 1e-9)
		} else {
			_, err = Greedy(&coverageObjective{acc: acc}, u, 1e-9)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}
