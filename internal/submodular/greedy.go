// Package submodular implements greedy maximization of a monotone
// submodular set function subject to a matroid constraint — the engine
// behind Algorithm 1 in SOR §III. For this class of problems the greedy
// algorithm is a 1/2-approximation (Fisher–Nemhauser–Wolsey; the paper
// cites Gargano & Hammar [10]).
//
// Two variants are provided: the textbook greedy that re-scans all
// candidates each round (the paper's Algorithm 1, O(n²) oracle calls) and a
// lazy greedy that exploits diminishing returns with a max-heap of stale
// upper bounds (identical output for submodular objectives, far fewer
// oracle calls — measured by the ablation benchmarks).
package submodular

import (
	"container/heap"
	"errors"
	"fmt"

	"sor/internal/matroid"
)

// Objective is the oracle for a set function being maximized. The greedy
// algorithms only ever extend the current set by single elements, so the
// oracle is stateful: Gain reports the marginal value of adding e to the
// current set, Add commits it.
type Objective interface {
	// Gain returns f(S ∪ {e}) − f(S) for the current set S.
	Gain(e int) float64
	// Add commits element e to the current set.
	Add(e int)
}

// Result reports the outcome of a greedy run.
type Result struct {
	// Chosen lists the selected elements in selection order.
	Chosen []int
	// Value is the accumulated objective value Σ of realized gains.
	Value float64
	// OracleCalls counts Gain evaluations (for the lazy-greedy ablation).
	OracleCalls int
}

// ErrNilArgs is returned when the objective or matroid is nil.
var ErrNilArgs = errors.New("submodular: nil objective or matroid")

// Greedy runs the paper's Algorithm 1: repeatedly add the feasible element
// with the maximum marginal gain until no feasible element remains or the
// best gain drops below minGain (use 0 to emulate the paper exactly; gains
// of a monotone function are never negative).
func Greedy(obj Objective, m matroid.Matroid, minGain float64) (*Result, error) {
	if obj == nil || m == nil {
		return nil, ErrNilArgs
	}
	n := m.GroundSize()
	taken := make([]bool, n)
	res := &Result{}
	for {
		best, bestGain := -1, minGain
		for e := 0; e < n; e++ {
			if taken[e] || !m.CanAdd(e) {
				continue
			}
			res.OracleCalls++
			if g := obj.Gain(e); g > bestGain {
				best, bestGain = e, g
			}
		}
		if best < 0 {
			return res, nil
		}
		if err := m.Add(best); err != nil {
			return nil, fmt.Errorf("submodular: matroid rejected feasible element %d: %w", best, err)
		}
		obj.Add(best)
		taken[best] = true
		res.Chosen = append(res.Chosen, best)
		res.Value += bestGain
	}
}

// lazyItem is a heap entry carrying a possibly stale upper bound on an
// element's marginal gain.
type lazyItem struct {
	elem  int
	bound float64
	round int // selection round at which bound was computed
}

type lazyHeap []lazyItem

func (h lazyHeap) Len() int { return len(h) }

// Less orders by bound descending, breaking ties by element index so the
// lazy variant replicates the eager greedy's deterministic tie-breaking.
func (h lazyHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound > h[j].bound
	}
	return h[i].elem < h[j].elem
}
func (h lazyHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *lazyHeap) Push(x interface{}) { *h = append(*h, x.(lazyItem)) }
func (h *lazyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// LazyGreedy produces the same selection as Greedy for monotone submodular
// objectives (diminishing returns make cached gains valid upper bounds) but
// re-evaluates only elements whose cached bound could still win.
func LazyGreedy(obj Objective, m matroid.Matroid, minGain float64) (*Result, error) {
	if obj == nil || m == nil {
		return nil, ErrNilArgs
	}
	n := m.GroundSize()
	res := &Result{}
	h := make(lazyHeap, 0, n)
	for e := 0; e < n; e++ {
		if !m.CanAdd(e) {
			continue
		}
		res.OracleCalls++
		if g := obj.Gain(e); g > minGain {
			h = append(h, lazyItem{elem: e, bound: g, round: 0})
		}
	}
	heap.Init(&h)
	round := 0
	for h.Len() > 0 {
		top := h[0]
		if !m.CanAdd(top.elem) {
			heap.Pop(&h)
			continue
		}
		if top.round != round {
			// Stale bound: refresh and reconsider.
			res.OracleCalls++
			g := obj.Gain(top.elem)
			if g <= minGain {
				heap.Pop(&h)
				continue
			}
			h[0].bound = g
			h[0].round = round
			heap.Fix(&h, 0)
			continue
		}
		heap.Pop(&h)
		if err := m.Add(top.elem); err != nil {
			return nil, fmt.Errorf("submodular: matroid rejected feasible element %d: %w", top.elem, err)
		}
		obj.Add(top.elem)
		res.Chosen = append(res.Chosen, top.elem)
		res.Value += top.bound
		round++
	}
	return res, nil
}

// FuncObjective adapts plain functions to the Objective interface; handy in
// tests.
type FuncObjective struct {
	GainFunc func(e int) float64
	AddFunc  func(e int)
}

var _ Objective = (*FuncObjective)(nil)

// Gain implements Objective.
func (f *FuncObjective) Gain(e int) float64 { return f.GainFunc(e) }

// Add implements Objective.
func (f *FuncObjective) Add(e int) { f.AddFunc(e) }
