package server

import (
	"sor/internal/ranking"
	"sor/internal/world"
)

// DefaultCatalog returns the feature catalogs for the paper's two
// categories, with the default preferences §IV-B describes: 73 °F for
// temperature "based on common sense", PrefMax for the-more-the-better
// features such as WiFi signal strength, PrefMin for nuisances such as
// background noise.
func DefaultCatalog() map[string][]ranking.Feature {
	return map[string][]ranking.Feature{
		world.CategoryTrail: {
			{Name: "temperature", Unit: "°F",
				Default: ranking.Preference{Kind: ranking.PrefValue, Value: 73}},
			{Name: "humidity", Unit: "%",
				Default: ranking.Preference{Kind: ranking.PrefValue, Value: 45}},
			{Name: "roughness", Unit: "m/s²",
				Default: ranking.Preference{Kind: ranking.PrefMin}},
			{Name: "curvature", Unit: "°/100m",
				Default: ranking.Preference{Kind: ranking.PrefMin}},
			{Name: "altitude change", Unit: "m",
				Default: ranking.Preference{Kind: ranking.PrefMin}},
		},
		world.CategoryCoffee: {
			{Name: "temperature", Unit: "°F",
				Default: ranking.Preference{Kind: ranking.PrefValue, Value: 73}},
			{Name: "brightness", Unit: "lux",
				Default: ranking.Preference{Kind: ranking.PrefMax}},
			{Name: "noise", Unit: "",
				Default: ranking.Preference{Kind: ranking.PrefMin}},
			{Name: "wifi", Unit: "dBm",
				Default: ranking.Preference{Kind: ranking.PrefMax}},
		},
	}
}
