package server

import (
	"testing"
	"time"

	"sor/internal/store"
	"sor/internal/wire"
	"sor/internal/world"
)

// TestRestartFromSnapshot documents the restart semantics: durable state
// (users, apps, participations, schedules, features, raw uploads) survives
// through the store snapshot; the in-memory scheduling period state does
// not — uploads keep landing, features keep refining, ranking keeps
// working, but budget accounting for the interrupted period is
// best-effort, matching the paper's database-centric design.
func TestRestartFromSnapshot(t *testing.T) {
	s1, clock := newTestServer(t)
	if err := s1.CreateApp(starbucksApp()); err != nil {
		t.Fatal(err)
	}
	sched := participate(t, s1, "alice", "tok-a", 6)

	// One upload lands before the crash and stays unprocessed.
	upload := &wire.DataUpload{
		TaskID: sched.TaskID, AppID: "app-sb", UserID: "alice",
		Series: []wire.SensorSeries{{
			Sensor: "temperature",
			Samples: []wire.SensorSample{
				{AtUnixMilli: t0.UnixMilli(), WindowMilli: 5000, Readings: []float64{72}},
			},
		}},
	}
	if _, err := s1.Handler()(nil, upload); err != nil {
		t.Fatal(err)
	}

	snap, err := s1.DB().Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// "Restart": a brand-new server over the restored store.
	db, err := store.Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(Config{DB: db, Now: clock.Now, Catalog: DefaultCatalog()})
	if err != nil {
		t.Fatal(err)
	}

	// The stored schedule is still served to the phone via ping.
	resp, err := s2.Handler()(nil, &wire.Ping{Token: "tok-a"})
	if err != nil {
		t.Fatal(err)
	}
	ack := resp.(*wire.Ack)
	if !ack.OK || len(ack.Payload) == 0 {
		t.Fatalf("ping after restart = %+v", ack)
	}
	inner, err := wire.Decode(ack.Payload)
	if err != nil {
		t.Fatal(err)
	}
	restored := inner.(*wire.Schedule)
	if restored.TaskID != sched.TaskID || len(restored.AtUnix) != len(sched.AtUnix) {
		t.Fatalf("schedule changed across restart: %+v vs %+v", restored, sched)
	}

	// Pre-crash uploads process fine after restart.
	if n := s2.Processor().Process(); n != 1 {
		t.Fatalf("processed %d uploads after restart", n)
	}
	if _, err := s2.DB().Feature(world.CategoryCoffee, world.Starbucks, "temperature"); err != nil {
		t.Fatal(err)
	}

	// Post-restart uploads for the surviving task are accepted.
	upload2 := &wire.DataUpload{
		TaskID: sched.TaskID, AppID: "app-sb", UserID: "alice",
		Series: []wire.SensorSeries{{
			Sensor: "wifi",
			Samples: []wire.SensorSample{
				{AtUnixMilli: t0.Add(time.Minute).UnixMilli(), WindowMilli: 1000, Readings: []float64{-70}},
			},
		}},
	}
	resp, err = s2.Handler()(nil, upload2)
	if err != nil {
		t.Fatal(err)
	}
	if ack := resp.(*wire.Ack); !ack.OK {
		t.Fatalf("post-restart upload refused: %+v", ack)
	}

	// The user cannot double-join the same app after restart (the
	// participation row survived).
	resp, err = s2.Handler()(nil, &wire.Participate{
		UserID: "alice", Token: "tok-a", AppID: "app-sb",
		Loc:    wire.Location{Lat: 43.0413, Lon: -76.1350},
		Budget: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ack := resp.(*wire.Ack); ack.OK {
		t.Fatal("double join across restart should be refused")
	}

	// A brand-new user CAN join after restart: the restarted server's
	// in-memory task counter lags the persisted task IDs, so the server
	// must skip over them instead of colliding.
	resp, err = s2.Handler()(nil, &wire.Participate{
		UserID: "bob", Token: "tok-b", AppID: "app-sb",
		Loc:    wire.Location{Lat: 43.0413, Lon: -76.1350},
		Budget: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ack := resp.(*wire.Ack); !ack.OK {
		t.Fatalf("new join after restart refused: %s", ack.Message)
	}
}

// TestProcessorCountsDecodeErrors injects a corrupt blob directly into the
// store (a crashed upload, bit rot, …) and checks the Data Processor
// drops it with accounting instead of wedging.
func TestProcessorCountsDecodeErrors(t *testing.T) {
	s, _ := newTestServer(t)
	if err := s.CreateApp(starbucksApp()); err != nil {
		t.Fatal(err)
	}
	s.DB().AppendUpload("coffee-shop-3", []byte("corrupt garbage"), t0)
	// A well-formed frame of the wrong type is also a decode error for
	// the processor.
	wrongType, err := wire.Encode(&wire.Ping{Token: "x"})
	if err != nil {
		t.Fatal(err)
	}
	s.DB().AppendUpload("coffee-shop-3", wrongType, t0)
	if n := s.Processor().Process(); n != 2 {
		t.Fatalf("drained %d", n)
	}
	processed, decodeErrors := s.Processor().Stats()
	if processed != 0 || decodeErrors != 2 {
		t.Fatalf("processed=%d decodeErrors=%d", processed, decodeErrors)
	}
	if s.DB().PendingUploads() != 0 {
		t.Fatal("corrupt blobs must not wedge the queue")
	}
}

// TestUploadForUnknownAppIsAccountedNotFatal covers an upload whose app
// vanished (e.g. restored snapshot missing the app): the blob decodes but
// the refresh is skipped.
func TestUploadForUnknownAppSkipsRefresh(t *testing.T) {
	s, _ := newTestServer(t)
	raw, err := wire.Encode(&wire.DataUpload{
		TaskID: "t-ghost", AppID: "ghost-app", UserID: "u",
		Series: []wire.SensorSeries{{
			Sensor: "temperature",
			Samples: []wire.SensorSample{
				{AtUnixMilli: t0.UnixMilli(), WindowMilli: 1000, Readings: []float64{1}},
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.DB().AppendUpload("ghost-app", raw, t0)
	if n := s.Processor().Process(); n != 1 {
		t.Fatalf("drained %d", n)
	}
	processed, decodeErrors := s.Processor().Stats()
	if processed != 1 || decodeErrors != 0 {
		t.Fatalf("processed=%d decodeErrors=%d", processed, decodeErrors)
	}
	if rows := s.DB().FeaturesByCategory(world.CategoryCoffee); len(rows) != 0 {
		t.Fatalf("phantom features: %+v", rows)
	}
}
