package server

import (
	"strings"
	"sync"
	"testing"
	"time"

	"sor/internal/store"
	"sor/internal/transport"
	"sor/internal/wire"
	"sor/internal/world"
)

var t0 = time.Date(2013, time.November, 15, 11, 0, 0, 0, time.UTC)

// virtualClock is a settable clock for tests.
type virtualClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *virtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *virtualClock) Set(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = t
}

const testScript = `
	local t = get_temperature_readings(3, 5000)
	return #t
`

func newTestServer(t *testing.T) (*Server, *virtualClock) {
	t.Helper()
	clock := &virtualClock{now: t0}
	s, err := New(Config{
		DB:      store.New(),
		Now:     clock.Now,
		Catalog: DefaultCatalog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, clock
}

func starbucksApp() store.Application {
	return store.Application{
		ID:       "app-sb",
		Creator:  "owner",
		Category: world.CategoryCoffee,
		Place:    world.Starbucks,
		Lat:      43.0413, Lon: -76.1350,
		RadiusM:   60,
		Script:    testScript,
		PeriodSec: 10800,
	}
}

func participate(t *testing.T, s *Server, userID, token string, budget int) *wire.Schedule {
	t.Helper()
	resp, err := s.Handler()(nil, &wire.Participate{
		UserID: userID, Token: token, AppID: "app-sb",
		Loc:    wire.Location{Lat: 43.0413, Lon: -76.1350},
		Budget: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	ack := resp.(*wire.Ack)
	if !ack.OK {
		t.Fatalf("participation refused: %s", ack.Message)
	}
	inner, err := wire.Decode(ack.Payload)
	if err != nil {
		t.Fatal(err)
	}
	return inner.(*wire.Schedule)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Catalog: DefaultCatalog()}); err == nil {
		t.Fatal("nil store must error")
	}
	if _, err := New(Config{DB: store.New()}); err == nil {
		t.Fatal("empty catalog must error")
	}
}

func TestCreateAppValidation(t *testing.T) {
	s, _ := newTestServer(t)
	app := starbucksApp()
	app.PeriodSec = 0
	if err := s.CreateApp(app); err == nil {
		t.Fatal("zero period must error")
	}
	app = starbucksApp()
	app.RadiusM = 0
	if err := s.CreateApp(app); err == nil {
		t.Fatal("zero radius must error")
	}
	app = starbucksApp()
	app.Script = ""
	if err := s.CreateApp(app); err == nil {
		t.Fatal("empty script must error")
	}
	if err := s.CreateApp(starbucksApp()); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateApp(starbucksApp()); err == nil {
		t.Fatal("duplicate app must error")
	}
}

func TestParticipateHappyPath(t *testing.T) {
	s, _ := newTestServer(t)
	if err := s.CreateApp(starbucksApp()); err != nil {
		t.Fatal(err)
	}
	sched := participate(t, s, "alice", "tok-a", 10)
	if sched.UserID != "alice" || sched.AppID != "app-sb" {
		t.Fatalf("schedule = %+v", sched)
	}
	if sched.Script != testScript {
		t.Fatal("schedule must carry the app's Lua script")
	}
	if len(sched.AtUnix) != 10 {
		t.Fatalf("scheduled %d instants, want full budget 10", len(sched.AtUnix))
	}
	// Instants are inside the period and sorted.
	for i, at := range sched.AtUnix {
		tm := time.Unix(at, 0).UTC()
		if tm.Before(t0) || tm.After(t0.Add(3*time.Hour+time.Minute)) {
			t.Fatalf("instant %v outside period", tm)
		}
		if i > 0 && at <= sched.AtUnix[i-1] {
			t.Fatalf("instants not sorted: %v", sched.AtUnix)
		}
	}
	// Participation row exists and is running.
	p, err := s.DB().ActiveParticipationByUser("app-sb", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if p.Status != store.TaskRunning || p.Budget != 10 {
		t.Fatalf("participation = %+v", p)
	}
	// User auto-registered.
	if _, err := s.DB().User("alice"); err != nil {
		t.Fatal(err)
	}
}

func TestParticipateGeofenceRefusal(t *testing.T) {
	s, _ := newTestServer(t)
	if err := s.CreateApp(starbucksApp()); err != nil {
		t.Fatal(err)
	}
	resp, err := s.Handler()(nil, &wire.Participate{
		UserID: "cheater", Token: "tok", AppID: "app-sb",
		Loc:    wire.Location{Lat: 40.7128, Lon: -74.0060}, // NYC
		Budget: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ack := resp.(*wire.Ack)
	if ack.OK || !strings.Contains(ack.Message, "location check failed") {
		t.Fatalf("ack = %+v", ack)
	}
}

func TestParticipateValidationRefusals(t *testing.T) {
	s, _ := newTestServer(t)
	if err := s.CreateApp(starbucksApp()); err != nil {
		t.Fatal(err)
	}
	cases := []*wire.Participate{
		{Token: "t", AppID: "app-sb", Budget: 1},             // no user
		{UserID: "u", AppID: "app-sb", Budget: 1},            // no token
		{UserID: "u", Token: "t", AppID: "app-sb"},           // no budget
		{UserID: "u", Token: "t", AppID: "ghost", Budget: 1}, // unknown app
	}
	for i, msg := range cases {
		resp, err := s.Handler()(nil, msg)
		if err != nil {
			t.Fatal(err)
		}
		if ack := resp.(*wire.Ack); ack.OK {
			t.Fatalf("case %d accepted: %+v", i, ack)
		}
	}
}

func TestParticipateDoubleJoinRefused(t *testing.T) {
	s, _ := newTestServer(t)
	if err := s.CreateApp(starbucksApp()); err != nil {
		t.Fatal(err)
	}
	participate(t, s, "alice", "tok-a", 5)
	resp, err := s.Handler()(nil, &wire.Participate{
		UserID: "alice", Token: "tok-a", AppID: "app-sb",
		Loc:    wire.Location{Lat: 43.0413, Lon: -76.1350},
		Budget: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ack := resp.(*wire.Ack); ack.OK || !strings.Contains(ack.Message, "already participating") {
		t.Fatalf("ack = %+v", ack)
	}
}

func TestSecondJoinRedistributesSchedules(t *testing.T) {
	s, clock := newTestServer(t)
	if err := s.CreateApp(starbucksApp()); err != nil {
		t.Fatal(err)
	}
	first := participate(t, s, "alice", "tok-a", 8)
	clock.Set(t0.Add(5 * time.Minute))
	participate(t, s, "bob", "tok-b", 8)
	// Alice's stored schedule was recomputed at Bob's join.
	row, err := s.DB().Schedule(first.TaskID)
	if err != nil {
		t.Fatal(err)
	}
	if len(row.AtUnix) == 0 {
		t.Fatal("alice lost her schedule entirely")
	}
	// Combined coverage should exceed a single user's plan.
	plan, err := s.PlanSnapshot("app-sb")
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalCoverage <= 0 {
		t.Fatal("plan has no coverage")
	}
	// No instant is double-booked between the two users.
	bobRow, err := s.DB().Schedule("task-2")
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool)
	for _, at := range row.AtUnix {
		seen[at] = true
	}
	for _, at := range bobRow.AtUnix {
		if seen[at] {
			t.Fatalf("instant %d double-booked", at)
		}
	}
}

func TestPingReturnsLatestSchedule(t *testing.T) {
	s, clock := newTestServer(t)
	if err := s.CreateApp(starbucksApp()); err != nil {
		t.Fatal(err)
	}
	participate(t, s, "alice", "tok-a", 6)
	clock.Set(t0.Add(3 * time.Minute))
	participate(t, s, "bob", "tok-b", 6)
	resp, err := s.Handler()(nil, &wire.Ping{Token: "tok-a"})
	if err != nil {
		t.Fatal(err)
	}
	ack := resp.(*wire.Ack)
	if !ack.OK || len(ack.Payload) == 0 {
		t.Fatalf("ping ack = %+v", ack)
	}
	inner, err := wire.Decode(ack.Payload)
	if err != nil {
		t.Fatal(err)
	}
	sched := inner.(*wire.Schedule)
	if sched.UserID != "alice" {
		t.Fatalf("ping returned %s's schedule", sched.UserID)
	}
	// Unknown token.
	resp, err = s.Handler()(nil, &wire.Ping{Token: "ghost"})
	if err != nil {
		t.Fatal(err)
	}
	if ack := resp.(*wire.Ack); ack.OK {
		t.Fatal("unknown token should be refused")
	}
}

func TestLeaveFinishesAndReplans(t *testing.T) {
	s, clock := newTestServer(t)
	if err := s.CreateApp(starbucksApp()); err != nil {
		t.Fatal(err)
	}
	sched := participate(t, s, "alice", "tok-a", 6)
	participate(t, s, "bob", "tok-b", 6)
	clock.Set(t0.Add(10 * time.Minute))
	resp, err := s.Handler()(nil, &wire.Leave{UserID: "alice", AppID: "app-sb"})
	if err != nil {
		t.Fatal(err)
	}
	if ack := resp.(*wire.Ack); !ack.OK {
		t.Fatalf("leave refused: %+v", ack)
	}
	p, err := s.DB().Participation(sched.TaskID)
	if err != nil {
		t.Fatal(err)
	}
	if p.Status != store.TaskFinished || p.Left.IsZero() {
		t.Fatalf("participation after leave = %+v", p)
	}
	// Second leave refused.
	resp, err = s.Handler()(nil, &wire.Leave{UserID: "alice", AppID: "app-sb"})
	if err != nil {
		t.Fatal(err)
	}
	if ack := resp.(*wire.Ack); ack.OK {
		t.Fatal("double leave should be refused")
	}
}

func TestDataUploadStoredAndProcessed(t *testing.T) {
	s, _ := newTestServer(t)
	if err := s.CreateApp(starbucksApp()); err != nil {
		t.Fatal(err)
	}
	sched := participate(t, s, "alice", "tok-a", 6)
	upload := &wire.DataUpload{
		TaskID: sched.TaskID, AppID: "app-sb", UserID: "alice",
		Series: []wire.SensorSeries{{
			Sensor: "temperature",
			Samples: []wire.SensorSample{
				{AtUnixMilli: t0.UnixMilli(), WindowMilli: 5000, Readings: []float64{72.5, 73.5}},
				{AtUnixMilli: t0.Add(time.Minute).UnixMilli(), WindowMilli: 5000, Readings: []float64{73.0}},
			},
		}},
	}
	resp, err := s.Handler()(nil, upload)
	if err != nil {
		t.Fatal(err)
	}
	if ack := resp.(*wire.Ack); !ack.OK {
		t.Fatalf("upload refused: %+v", ack)
	}
	if s.DB().PendingUploads() != 1 {
		t.Fatal("raw blob not landed")
	}
	if n := s.Processor().Process(); n != 1 {
		t.Fatalf("processed %d uploads", n)
	}
	row, err := s.DB().Feature(world.CategoryCoffee, world.Starbucks, "temperature")
	if err != nil {
		t.Fatal(err)
	}
	if row.Value != 73 || row.Samples != 2 {
		t.Fatalf("feature row = %+v", row)
	}
}

func TestDataUploadValidation(t *testing.T) {
	s, _ := newTestServer(t)
	if err := s.CreateApp(starbucksApp()); err != nil {
		t.Fatal(err)
	}
	sched := participate(t, s, "alice", "tok-a", 6)
	// Unknown task.
	resp, err := s.Handler()(nil, &wire.DataUpload{TaskID: "ghost", AppID: "app-sb", UserID: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if ack := resp.(*wire.Ack); ack.OK {
		t.Fatal("unknown task should be refused")
	}
	// Mismatched user.
	resp, err = s.Handler()(nil, &wire.DataUpload{TaskID: sched.TaskID, AppID: "app-sb", UserID: "mallory"})
	if err != nil {
		t.Fatal(err)
	}
	if ack := resp.(*wire.Ack); ack.OK {
		t.Fatal("mismatched upload should be refused")
	}
}

func TestRankRequestEndToEnd(t *testing.T) {
	s, _ := newTestServer(t)
	// Three coffee-shop apps with direct feature rows (bypassing sensing).
	shops := []struct {
		id, place                  string
		temp, bright, noiseV, wifi float64
	}{
		{"app-th", world.TimHortons, 66, 1000, 0.05, -62},
		{"app-bn", world.BNCafe, 71, 400, 0.08, -50},
		{"app-sb", world.Starbucks, 73, 150, 0.18, -72},
	}
	for _, sh := range shops {
		if err := s.CreateApp(store.Application{
			ID: sh.id, Category: world.CategoryCoffee, Place: sh.place,
			Lat: 43, Lon: -76, RadiusM: 60, Script: "return 0", PeriodSec: 10800,
		}); err != nil {
			t.Fatal(err)
		}
		for f, v := range map[string]float64{
			"temperature": sh.temp, "brightness": sh.bright,
			"noise": sh.noiseV, "wifi": sh.wifi,
		} {
			if err := s.DB().UpsertFeature(store.FeatureRow{
				Category: world.CategoryCoffee, Place: sh.place, Feature: f, Value: v,
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Emma's profile (Table II): B&N, Tim Hortons, Starbucks.
	resp, err := s.Handler()(nil, &wire.RankRequest{
		Category: world.CategoryCoffee,
		UserID:   "emma",
		Prefs: []wire.PrefEntry{
			{Feature: "temperature", Kind: 1, Value: 71, Weight: 4},
			{Feature: "noise", Kind: 2, Weight: 4},
			{Feature: "wifi", Kind: 3, Weight: 5},
			{Feature: "brightness", Kind: 3, Weight: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rr, ok := resp.(*wire.RankResponse)
	if !ok {
		t.Fatalf("response = %+v", resp)
	}
	want := []string{world.BNCafe, world.TimHortons, world.Starbucks}
	for i, place := range want {
		if rr.Ranked[i].Place != place {
			t.Fatalf("rank %d = %s, want %s (full: %+v)", i+1, rr.Ranked[i].Place, place, rr.Ranked)
		}
	}
	if len(rr.Features) != 4 || len(rr.Ranked[0].FeatureValues) != 4 {
		t.Fatalf("feature data missing: %+v", rr)
	}
	// Unknown category refused.
	resp, err = s.Handler()(nil, &wire.RankRequest{Category: "nope", UserID: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if ack, ok := resp.(*wire.Ack); !ok || ack.OK {
		t.Fatalf("unknown category should be refused, got %+v", resp)
	}
}

func TestRankRequestKindValueTranslation(t *testing.T) {
	// Kind 4 in the previous test was PrefDefault; make sure explicit
	// PrefValue (kind 1) also works through the wire.
	s, _ := newTestServer(t)
	if err := s.CreateApp(store.Application{
		ID: "a1", Category: world.CategoryCoffee, Place: "P1",
		Lat: 43, Lon: -76, RadiusM: 10, Script: "return 0", PeriodSec: 60,
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateApp(store.Application{
		ID: "a2", Category: world.CategoryCoffee, Place: "P2",
		Lat: 43, Lon: -76, RadiusM: 10, Script: "return 0", PeriodSec: 60,
	}); err != nil {
		t.Fatal(err)
	}
	for place, temp := range map[string]float64{"P1": 60, "P2": 70} {
		for _, f := range []string{"temperature", "brightness", "noise", "wifi"} {
			v := temp
			if f != "temperature" {
				v = 1
			}
			if err := s.DB().UpsertFeature(store.FeatureRow{
				Category: world.CategoryCoffee, Place: place, Feature: f, Value: v,
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	resp, err := s.Handler()(nil, &wire.RankRequest{
		Category: world.CategoryCoffee, UserID: "u",
		Prefs: []wire.PrefEntry{
			{Feature: "temperature", Kind: 1, Value: 59, Weight: 5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rr := resp.(*wire.RankResponse)
	if rr.Ranked[0].Place != "P1" {
		t.Fatalf("PrefValue 59 should rank P1 first: %+v", rr.Ranked)
	}
}

func TestPushNotificationsOnReplan(t *testing.T) {
	push := transport.NewPush()
	clock := &virtualClock{now: t0}
	s, err := New(Config{
		DB: store.New(), Now: clock.Now, Catalog: DefaultCatalog(), Push: push,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateApp(starbucksApp()); err != nil {
		t.Fatal(err)
	}
	chA, err := push.Subscribe("tok-a")
	if err != nil {
		t.Fatal(err)
	}
	participate(t, s, "alice", "tok-a", 4)
	select {
	case <-chA:
	default:
		t.Fatal("alice got no push after her own join")
	}
	participate(t, s, "bob", "tok-b", 4)
	select {
	case <-chA:
	default:
		t.Fatal("alice got no push after bob's join replan")
	}
}

func TestUnsupportedMessage(t *testing.T) {
	s, _ := newTestServer(t)
	if _, err := s.Handler()(nil, &wire.RankResponse{}); err == nil {
		t.Fatal("rank response to server must error")
	}
}

func TestFeatureMatrixSkipsIncompletePlaces(t *testing.T) {
	s, _ := newTestServer(t)
	for _, id := range []string{"x1", "x2"} {
		if err := s.CreateApp(store.Application{
			ID: id, Category: world.CategoryCoffee, Place: "Place" + id,
			Lat: 43, Lon: -76, RadiusM: 10, Script: "return 0", PeriodSec: 60,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Only x1 gets full features.
	for _, f := range []string{"temperature", "brightness", "noise", "wifi"} {
		if err := s.DB().UpsertFeature(store.FeatureRow{
			Category: world.CategoryCoffee, Place: "Placex1", Feature: f, Value: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	m, err := s.FeatureMatrix(world.CategoryCoffee)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Places) != 1 || m.Places[0] != "Placex1" {
		t.Fatalf("matrix places = %v", m.Places)
	}
	if _, err := s.FeatureMatrix("ghost-category"); err == nil {
		t.Fatal("unknown category must error")
	}
}
