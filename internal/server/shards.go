package server

import (
	"hash/fnv"
	"sync"
)

// numStateShards is the bucket count of the per-app scheduling-state map.
// Events for apps in different buckets never contend on a lock; events for
// one app serialize only on that app's own state.
const numStateShards = 32

// stateShard is one bucket of the app-state map. The shard lock guards
// only the map itself (lookup + lazy creation); each appSchedState carries
// its own lock for its mutable fields.
type stateShard struct {
	mu   sync.Mutex
	apps map[string]*appSchedState
}

// shardedStates is the sharded replacement for the old global
// Server.mu + online map: uploads, joins, leaves and schedule queries for
// different applications proceed in parallel.
type shardedStates struct {
	shards [numStateShards]stateShard
}

func newShardedStates() *shardedStates {
	s := &shardedStates{}
	for i := range s.shards {
		s.shards[i].apps = make(map[string]*appSchedState)
	}
	return s
}

func (s *shardedStates) shard(appID string) *stateShard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(appID))
	return &s.shards[h.Sum32()%numStateShards]
}

// get returns the app's state, or nil if it has no scheduling state yet.
func (s *shardedStates) get(appID string) *appSchedState {
	sh := s.shard(appID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.apps[appID]
}

// getOrCreate returns the app's state, lazily building it via create. The
// shard lock is held across create so exactly one caller constructs the
// state; create must not call back into shardedStates.
func (s *shardedStates) getOrCreate(appID string, create func() (*appSchedState, error)) (*appSchedState, error) {
	sh := s.shard(appID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if st, ok := sh.apps[appID]; ok {
		return st, nil
	}
	st, err := create()
	if err != nil {
		return nil, err
	}
	sh.apps[appID] = st
	return st, nil
}
