package server

import (
	"errors"
	"time"
)

// This file is the server side of replica mode (see internal/replica for
// the WAL shipping itself). A replica is a warm standby: it owns a full
// DurableBackend whose log is a byte-for-byte copy of the leader's,
// applied through store.ApplyReplicated, and serves rank and ping reads
// off its own columnar snapshots. It never mutates — mutating messages
// are refused retryably (dispatch), the data processor never runs
// (rebuildSnapshot), and recovery's write-backs are deferred until
// Promote — so the only writer of its log is the replication stream.

// ReplicaLagProbe reports how far the replica trails the leader: age is
// the time since the last confirmed leader contact (a successful pull,
// even an empty heartbeat), records is the known record lag at that
// contact. The replication layer installs it via SetReplicaLagProbe.
type ReplicaLagProbe func() (age time.Duration, records uint64)

// OpenAsReplica opens the storage backend like Open but leaves the
// server in replica mode: recoverState is skipped entirely — it writes
// (orphaning waiting tasks, refolding features through the processor),
// and every derived fact it rebuilds either arrives via the replicated
// WAL or is rebuilt at Promote time.
func (s *Server) OpenAsReplica() error {
	if s.storage == nil {
		return errors.New("server: no storage backend configured")
	}
	if s.db != nil {
		return errors.New("server: already open")
	}
	db, err := s.storage.Open()
	if err != nil {
		return err
	}
	s.replica.Store(true)
	s.db = db
	s.processor.db = db
	return nil
}

// IsReplica reports whether the server is currently in replica mode.
func (s *Server) IsReplica() bool { return s.replica.Load() }

// SetReplicaLagProbe installs the staleness probe rank queries consult.
func (s *Server) SetReplicaLagProbe(p ReplicaLagProbe) { s.lagProbe.Store(&p) }

// Promote turns a caught-up replica into the leader: replica mode ends
// (mutations accepted, the processor runs again) and recoverState
// rebuilds the scheduling state Open would have — timelines from the
// replicated anchors, memberships and ledgers from the replicated
// participations and uploads. recoverState's writes (orphaned waiting
// tasks, refolded features) now append to this node's log as the new
// head of replication history. The caller must first stop the follower
// pull loop; the operator runbook additionally waits until the applied
// LSN matches the old leader's head, or acked mutations are lost.
func (s *Server) Promote() error {
	if s.db == nil {
		return errors.New("server: not open")
	}
	if !s.replica.CompareAndSwap(true, false) {
		return errors.New("server: not a replica")
	}
	return s.recoverState()
}

// Demote is the first step of a planned failover: the old leader stops
// accepting mutations (refusing them retryably, like a replica) so its
// log stops growing and a follower can catch up to a fixed head. Its
// scheduling state stays in memory but unreachable; after the peer's
// Promote, this node rejoins as a follower of the new leader and the
// state is simply never consulted again.
func (s *Server) Demote() {
	s.replica.Store(true)
}

// replicaStale gates a rank read on the replica's lag. It returns
// refuse=true when the staleness bound is configured and exceeded —
// serving would silently hand out data older than the operator allows —
// and stale=true when the reply should carry the explicit Stale flag
// because the replica knows records are in flight behind it.
func (s *Server) replicaStale() (stale, refuse bool) {
	if !s.replica.Load() {
		return false, false
	}
	p := s.lagProbe.Load()
	if p == nil {
		// No replication stream attached yet: the replica cannot bound
		// its lag at all. Within-bound serving is unprovable, so refuse
		// when a bound is configured.
		return true, s.maxReplicaLag > 0
	}
	age, records := (*p)()
	if s.maxReplicaLag > 0 && age > s.maxReplicaLag {
		return true, true
	}
	return records > 0, false
}
