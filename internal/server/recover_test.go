package server

import (
	"strings"
	"testing"
	"time"

	"sor/internal/store"
	"sor/internal/wire"
	"sor/internal/world"
)

// openDurable builds a server over a durable backend rooted at dir and
// recovers it. Each call is one server incarnation.
func openDurable(t *testing.T, dir string, clock *virtualClock) *Server {
	t.Helper()
	s, err := New(Config{
		Storage: store.NewDurableBackend(dir),
		Now:     clock.Now,
		Catalog: DefaultCatalog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDurableServerCrashRecovery is the server-level recovery contract:
// after a kill (no checkpoint, no WAL flush beyond acked writes), a new
// incarnation over the same data dir serves the same schedules, keeps the
// budget ledger and dedup window, refolds the feature matrix, and never
// reissues a persisted task ID.
func TestDurableServerCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	clock := &virtualClock{now: t0}

	s1 := openDurable(t, dir, clock)
	if err := s1.CreateApp(starbucksApp()); err != nil {
		t.Fatal(err)
	}
	sched := participate(t, s1, "alice", "tok-a", 6)
	up := uploadFor(sched, "tok-a/"+sched.TaskID+"/1")
	if resp, err := s1.Handler()(nil, up); err != nil {
		t.Fatal(err)
	} else if ack := resp.(*wire.Ack); !ack.OK {
		t.Fatalf("upload refused: %+v", ack)
	}
	wantExecuted := len(s1.ExecutedInstants("app-sb"))
	wantConsumed := s1.BudgetLedger("app-sb")["alice"].Consumed

	// A participation row whose scheduler join never committed (crash
	// mid-participate): recovery must orphan it, not resurrect it.
	if err := s1.DB().PutParticipation(store.Participation{
		TaskID: "task-999", AppID: "app-sb", UserID: "carol", Token: "tok-c",
		Status: store.TaskWaiting, Joined: clock.Now(), Budget: 3,
	}); err != nil {
		t.Fatal(err)
	}

	s1.Kill() // crash: no checkpoint, acked writes only

	s2 := openDurable(t, dir, clock)
	defer s2.Close()

	// The phone's schedule survives and is re-served on ping.
	resp, err := s2.Handler()(nil, &wire.Ping{Token: "tok-a"})
	if err != nil {
		t.Fatal(err)
	}
	ack := resp.(*wire.Ack)
	if !ack.OK || len(ack.Payload) == 0 {
		t.Fatalf("ping after recovery = %+v", ack)
	}
	inner, err := wire.Decode(ack.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if restored := inner.(*wire.Schedule); restored.TaskID != sched.TaskID ||
		len(restored.AtUnix) != len(sched.AtUnix) {
		t.Fatalf("schedule changed across crash: %+v vs %+v", restored, sched)
	}

	// Budget ledger and coverage replayed from the stored uploads.
	if got := s2.BudgetLedger("app-sb")["alice"].Consumed; got != wantConsumed {
		t.Fatalf("consumed after recovery = %d, want %d", got, wantConsumed)
	}
	if got := len(s2.ExecutedInstants("app-sb")); got != wantExecuted {
		t.Fatalf("executed after recovery = %d, want %d", got, wantExecuted)
	}

	// Feature matrix refolded during Open — no manual Process needed.
	if _, err := s2.DB().Feature(world.CategoryCoffee, world.Starbucks, "temperature"); err != nil {
		t.Fatalf("features not refolded on recovery: %v", err)
	}

	// The dedup window survives: a pre-crash report retransmitted to the
	// new incarnation acks OK but is a duplicate — stored and charged once.
	resp, err = s2.Handler()(nil, up)
	if err != nil {
		t.Fatal(err)
	}
	if ack := resp.(*wire.Ack); !ack.OK || !strings.Contains(ack.Message, "duplicate") {
		t.Fatalf("replay across crash = %+v, want duplicate ack", ack)
	}
	if got := s2.BudgetLedger("app-sb")["alice"].Consumed; got != wantConsumed {
		t.Fatalf("replay across crash double-charged: %d", got)
	}

	// The orphaned Waiting row was flipped to TaskError, and carol can
	// join for real now.
	if p, err := s2.DB().Participation("task-999"); err != nil || p.Status != store.TaskError {
		t.Fatalf("waiting row after recovery = %+v, %v (want TaskError)", p, err)
	}
	carolSched := participate(t, s2, "carol", "tok-c2", 3)

	// taskSeq recovered past every persisted ID: new tasks collide with
	// neither alice's nor the orphaned task-999.
	for _, taken := range []string{sched.TaskID, "task-999"} {
		if carolSched.TaskID == taken {
			t.Fatalf("task ID %s reissued after crash", taken)
		}
	}
	if n := taskNumber(carolSched.TaskID); n <= 999 {
		t.Fatalf("task counter not recovered: issued %s after task-999", carolSched.TaskID)
	}

	// Post-recovery uploads for the surviving task keep working.
	up2 := uploadFor(sched, "tok-a/"+sched.TaskID+"/2")
	up2.Series[0].Samples = up2.Series[0].Samples[:1]
	up2.Series[0].Samples[0].AtUnixMilli = t0.Add(2 * time.Minute).UnixMilli()
	if resp, err := s2.Handler()(nil, up2); err != nil {
		t.Fatal(err)
	} else if ack := resp.(*wire.Ack); !ack.OK || strings.Contains(ack.Message, "duplicate") {
		t.Fatalf("fresh post-recovery upload = %+v", ack)
	}
}

// TestDurableServerOpenClose pins the Open/Close lifecycle errors: a
// Config.DB server is born open, a Storage server must be opened exactly
// once, and dispatch before Open refuses cleanly instead of panicking.
func TestDurableServerOpenClose(t *testing.T) {
	clock := &virtualClock{now: t0}
	s, err := New(Config{
		Storage: store.NewDurableBackend(t.TempDir()),
		Now:     clock.Now,
		Catalog: DefaultCatalog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Handler()(nil, &wire.Ping{Token: "tok"}); err == nil {
		t.Fatal("dispatch before Open must error")
	}
	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	if err := s.Open(); err == nil {
		t.Fatal("double Open must error")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	memory, err := New(Config{DB: store.New(), Now: clock.Now, Catalog: DefaultCatalog()})
	if err != nil {
		t.Fatal(err)
	}
	if err := memory.Open(); err == nil {
		t.Fatal("Open without a storage backend must error")
	}
	if err := memory.Close(); err != nil {
		t.Fatalf("Close on a Config.DB server must be a no-op: %v", err)
	}

	if _, err := New(Config{
		DB:      store.New(),
		Storage: store.NewDurableBackend(t.TempDir()),
		Now:     clock.Now,
		Catalog: DefaultCatalog(),
	}); err == nil {
		t.Fatal("DB and Storage together must be rejected")
	}
}
