package server

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"sor/internal/schedule"
	"sor/internal/store"
	"sor/internal/wire"
)

// Open recovers the store from the configured storage backend and
// rebuilds the server's in-memory state from it: per-app timelines on
// their persisted anchors, scheduler membership from the participation
// table, budget ledgers by replaying the stored uploads in sequence
// order, and the feature matrix by refolding the full upload history.
// Servers constructed with Config.DB are open already.
func (s *Server) Open() error {
	if s.storage == nil {
		return errors.New("server: no storage backend configured")
	}
	if s.db != nil {
		return errors.New("server: already open")
	}
	db, err := s.storage.Open()
	if err != nil {
		return err
	}
	s.db = db
	s.processor.db = db
	return s.recoverState()
}

// Close shuts the storage backend down (final checkpoint, clean WAL
// close). No-op for servers constructed with Config.DB.
func (s *Server) Close() error {
	if s.storage == nil {
		return nil
	}
	return s.storage.Close()
}

// Kill abandons the storage backend the way a crash would — no final
// checkpoint, no WAL flush. The chaos suite uses it to prove recovery.
func (s *Server) Kill() {
	if s.storage != nil {
		s.storage.Kill()
	}
}

// recoverState rebuilds every in-memory structure a restart loses.
// Apps without a persisted anchor (data from before anchors existed)
// keep the legacy behavior: schedule rows still serve reads, and a new
// timeline is anchored at the next participation.
func (s *Server) recoverState() error {
	for _, ar := range s.db.Anchors() {
		app, err := s.db.App(ar.AppID)
		if err != nil {
			continue // anchor for a vanished app; nothing to rebuild
		}
		if _, err := s.schedState(app, time.Unix(ar.AnchorUnix, 0).UTC()); err != nil {
			return fmt.Errorf("server: recovering %s: %w", ar.AppID, err)
		}
	}
	var maxTask int64
	for _, app := range s.db.Apps() {
		st := s.states.get(app.ID)
		for _, p := range s.db.ParticipationsByApp(app.ID) {
			if n := taskNumber(p.TaskID); n > maxTask {
				maxTask = n
			}
			if st == nil || p.Status == store.TaskError {
				continue
			}
			if p.Status == store.TaskWaiting {
				// The row was persisted but the scheduler join never
				// committed (crash mid-participate, or a refused join).
				// The phone never got a schedule; orphan the task so the
				// user can scan again.
				_ = s.db.UpdateParticipation(p.TaskID, func(row *store.Participation) {
					row.Status = store.TaskError
				})
				continue
			}
			leave := p.LeaveBy
			if leave.IsZero() {
				leave = st.timeline.End()
			}
			if _, err := st.online.Join(p.Joined, schedule.Participant{
				UserID: p.UserID,
				Arrive: p.Joined,
				Leave:  leave,
				Budget: p.Budget,
			}); err != nil {
				return fmt.Errorf("server: rejoining %s: %w", p.TaskID, err)
			}
			if p.Status == store.TaskFinished {
				_, _ = st.online.Leave(p.Left, p.UserID)
				continue
			}
			st.mu.Lock()
			st.taskOf[p.UserID] = p.TaskID
			st.tokenOf[p.UserID] = p.Token
			st.mu.Unlock()
		}
	}
	// Never reissue a task ID that is already in the store.
	if cur := s.taskSeq.Load(); maxTask > cur {
		s.taskSeq.Store(maxTask)
	}
	// Charge replay: walking the uploads in global sequence order repeats
	// the original budget accounting exactly — RecordExecutions is
	// idempotent per (user, instant) and caps at the budget in order.
	for _, up := range s.db.AllUploads() {
		m, err := wire.Decode(up.Body)
		if err != nil {
			continue // the processor counts decode failures; skip here
		}
		du, ok := m.(*wire.DataUpload)
		if !ok {
			continue
		}
		if st := s.states.get(du.AppID); st != nil {
			_, _ = st.online.RecordExecutions(du.UserID, uploadInstants(st.timeline, du))
		}
	}
	// Refold the feature matrix from the full upload history (the
	// processor's accumulators died with the old process).
	s.db.RequeueUploads()
	s.processor.Process()
	return nil
}

// taskNumber extracts the counter from a "task-N" ID; 0 if it is not one.
func taskNumber(taskID string) int64 {
	num, ok := strings.CutPrefix(taskID, "task-")
	if !ok {
		return 0
	}
	n, err := strconv.ParseInt(num, 10, 64)
	if err != nil {
		return 0
	}
	return n
}
