package server

import (
	"context"
	"strings"
	"testing"
	"time"

	"sor/internal/store"
	"sor/internal/wire"
	"sor/internal/world"
)

func TestChartsFromFeatureTable(t *testing.T) {
	s, _ := newTestServer(t)
	for place, vals := range map[string][]float64{
		world.TimHortons: {66, 1000},
		world.BNCafe:     {71, 400},
	} {
		for i, f := range []string{"temperature", "brightness"} {
			if err := s.DB().UpsertFeature(store.FeatureRow{
				Category: world.CategoryCoffee, Place: place, Feature: f, Value: vals[i],
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	charts, err := s.Charts(world.CategoryCoffee)
	if err != nil {
		t.Fatal(err)
	}
	if len(charts) != 2 {
		t.Fatalf("charts = %d", len(charts))
	}
	// Sorted by feature name: brightness first.
	if charts[0].Title != "brightness" || charts[1].Title != "temperature" {
		t.Fatalf("chart titles = %s, %s", charts[0].Title, charts[1].Title)
	}
	if charts[1].Unit != "°F" {
		t.Fatalf("temperature unit = %q", charts[1].Unit)
	}
	if len(charts[0].Categories) != 2 || charts[0].Categories[0] != world.BNCafe {
		t.Fatalf("categories = %v", charts[0].Categories)
	}
	// Values align with categories.
	if charts[0].Values[0] != 400 || charts[0].Values[1] != 1000 {
		t.Fatalf("brightness values = %v", charts[0].Values)
	}
	// Each chart renders.
	for _, c := range charts {
		svg, err := c.SVG(400, 300)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(svg, "<svg") {
			t.Fatal("bad svg")
		}
	}
	if _, err := s.Charts("empty-category"); err == nil {
		t.Fatal("empty category must error")
	}
}

func TestStartProcessingDrainsPeriodically(t *testing.T) {
	s, _ := newTestServer(t)
	if err := s.CreateApp(starbucksApp()); err != nil {
		t.Fatal(err)
	}
	sched := participate(t, s, "alice", "tok-a", 6)
	if _, err := s.StartProcessing(context.Background(), 0); err == nil {
		t.Fatal("zero interval must error")
	}
	ctx, cancel := context.WithCancel(context.Background())
	done, err := s.StartProcessing(ctx, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	upload := &wire.DataUpload{
		TaskID: sched.TaskID, AppID: "app-sb", UserID: "alice",
		Series: []wire.SensorSeries{{
			Sensor: "temperature",
			Samples: []wire.SensorSample{
				{AtUnixMilli: t0.UnixMilli(), WindowMilli: 5000, Readings: []float64{70}},
			},
		}},
	}
	if _, err := s.Handler()(nil, upload); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for s.DB().PendingUploads() > 0 {
		select {
		case <-deadline:
			t.Fatal("processor never drained the upload")
		case <-time.After(5 * time.Millisecond):
		}
	}
	if _, err := s.DB().Feature(world.CategoryCoffee, world.Starbucks, "temperature"); err != nil {
		t.Fatalf("feature not produced: %v", err)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("processing loop did not stop")
	}
}

func TestStartProcessingFinalDrainOnCancel(t *testing.T) {
	s, _ := newTestServer(t)
	if err := s.CreateApp(starbucksApp()); err != nil {
		t.Fatal(err)
	}
	sched := participate(t, s, "bob", "tok-b", 3)
	// Long interval: the tick will not fire before cancellation, so the
	// drain must happen on shutdown.
	ctx, cancel := context.WithCancel(context.Background())
	done, err := s.StartProcessing(ctx, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	upload := &wire.DataUpload{
		TaskID: sched.TaskID, AppID: "app-sb", UserID: "bob",
		Series: []wire.SensorSeries{{
			Sensor: "wifi",
			Samples: []wire.SensorSample{
				{AtUnixMilli: t0.UnixMilli(), WindowMilli: 1000, Readings: []float64{-60}},
			},
		}},
	}
	if _, err := s.Handler()(nil, upload); err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("loop did not exit")
	}
	if s.DB().PendingUploads() != 0 {
		t.Fatal("final drain did not run")
	}
}
