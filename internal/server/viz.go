package server

import (
	"context"
	"fmt"
	"sort"
	"time"

	"sor/internal/viz"
)

// Charts implements the paper's Visualization module (§II-B: "a simple
// Visualization module, which can generate figures for feature data in the
// database such that users can view them easily"): one bar chart per
// feature of a category, places on the x-axis — the shape of the paper's
// Fig. 6 and Fig. 10.
func (s *Server) Charts(category string) ([]viz.BarChart, error) {
	rows := s.db.FeaturesByCategory(category)
	if len(rows) == 0 {
		return nil, fmt.Errorf("server: no feature data for category %q", category)
	}
	byFeature := make(map[string]map[string]float64)
	units := make(map[string]string)
	for _, f := range s.catalog[category] {
		units[f.Name] = f.Unit
	}
	for _, row := range rows {
		m, ok := byFeature[row.Feature]
		if !ok {
			m = make(map[string]float64)
			byFeature[row.Feature] = m
		}
		m[row.Place] = row.Value
	}
	featureNames := make([]string, 0, len(byFeature))
	for name := range byFeature {
		featureNames = append(featureNames, name)
	}
	sort.Strings(featureNames)
	charts := make([]viz.BarChart, 0, len(featureNames))
	for _, name := range featureNames {
		values := byFeature[name]
		places := make([]string, 0, len(values))
		for place := range values {
			places = append(places, place)
		}
		sort.Strings(places)
		chart := viz.BarChart{Title: name, Unit: units[name], Categories: places}
		for _, place := range places {
			chart.Values = append(chart.Values, values[place])
		}
		charts = append(charts, chart)
	}
	return charts, nil
}

// StartProcessing runs the Data Processor's periodic poll ("periodically
// checks if there are any binary sensed data in the database") until ctx
// is cancelled. It returns a done channel that closes when the loop exits.
func (s *Server) StartProcessing(ctx context.Context, interval time.Duration) (<-chan struct{}, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("server: processing interval must be positive")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				// Final drain: the poll context is gone, but drained blobs
				// must still be folded (exactly-once), so run uncancelled.
				s.processor.Process()
				return
			case <-ticker.C:
				s.processor.ProcessContext(ctx)
			}
		}
	}()
	return done, nil
}
