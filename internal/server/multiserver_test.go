package server

import (
	"testing"

	"sor/internal/store"
	"sor/internal/wire"
	"sor/internal/world"
)

// TestMultipleServersShareStore exercises the paper's "one or multiple
// sensing servers need to be deployed" deployment note: a second server
// instance over the same database can serve the read paths (ranking,
// visualization, ping-for-schedule) while the first owns sensing-period
// scheduling. The store is the coordination point, exactly as PostgreSQL
// is in the paper.
func TestMultipleServersShareStore(t *testing.T) {
	db := store.New()
	clock := &virtualClock{now: t0}
	primary, err := New(Config{DB: db, Now: clock.Now, Catalog: DefaultCatalog()})
	if err != nil {
		t.Fatal(err)
	}
	replica, err := New(Config{DB: db, Now: clock.Now, Catalog: DefaultCatalog()})
	if err != nil {
		t.Fatal(err)
	}
	if err := primary.CreateApp(starbucksApp()); err != nil {
		t.Fatal(err)
	}

	// Participation and upload go to the primary.
	sched := participate(t, primary, "alice", "tok-a", 5)
	upload := &wire.DataUpload{
		TaskID: sched.TaskID, AppID: "app-sb", UserID: "alice",
		Series: []wire.SensorSeries{
			{Sensor: "temperature", Samples: []wire.SensorSample{
				{AtUnixMilli: t0.UnixMilli(), WindowMilli: 5000, Readings: []float64{73}},
			}},
			{Sensor: "light", Samples: []wire.SensorSample{
				{AtUnixMilli: t0.UnixMilli(), WindowMilli: 5000, Readings: []float64{150}},
			}},
			{Sensor: "microphone", Samples: []wire.SensorSample{
				{AtUnixMilli: t0.UnixMilli(), WindowMilli: 2000, Readings: []float64{0.18, -0.18}},
			}},
			{Sensor: "wifi", Samples: []wire.SensorSample{
				{AtUnixMilli: t0.UnixMilli(), WindowMilli: 1000, Readings: []float64{-72}},
			}},
		},
	}
	if resp, err := primary.Handler()(nil, upload); err != nil {
		t.Fatal(err)
	} else if ack := resp.(*wire.Ack); !ack.OK {
		t.Fatalf("upload refused: %+v", ack)
	}

	// The replica's Data Processor drains the shared queue and its ranker
	// serves the result.
	if n := replica.Processor().Process(); n != 1 {
		t.Fatalf("replica processed %d uploads", n)
	}
	resp, err := replica.Handler()(nil, &wire.RankRequest{
		Category: world.CategoryCoffee, UserID: "anyone",
	})
	if err != nil {
		t.Fatal(err)
	}
	rr, ok := resp.(*wire.RankResponse)
	if !ok {
		t.Fatalf("replica rank response = %+v", resp)
	}
	if len(rr.Ranked) != 1 || rr.Ranked[0].Place != world.Starbucks {
		t.Fatalf("replica ranking = %+v", rr.Ranked)
	}

	// The replica also answers schedule pings from the shared store.
	resp, err = replica.Handler()(nil, &wire.Ping{Token: "tok-a"})
	if err != nil {
		t.Fatal(err)
	}
	ack := resp.(*wire.Ack)
	if !ack.OK || len(ack.Payload) == 0 {
		t.Fatalf("replica ping = %+v", ack)
	}
	inner, err := wire.Decode(ack.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if inner.(*wire.Schedule).TaskID != sched.TaskID {
		t.Fatal("replica served a different schedule")
	}

	// Replica charts read the same feature rows.
	charts, err := replica.Charts(world.CategoryCoffee)
	if err != nil {
		t.Fatal(err)
	}
	if len(charts) == 0 {
		t.Fatal("replica produced no charts")
	}
}
