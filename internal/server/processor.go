package server

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sor/internal/feature"
	"sor/internal/geo"
	"sor/internal/obs"
	"sor/internal/store"
	"sor/internal/wire"
)

// DataProcessor periodically drains raw binary uploads from the database,
// decodes them, accumulates samples per application, and recomputes the
// humanly understandable feature values (§IV-A). Decoded samples are kept
// so features refine as more data arrives.
//
// Accumulators are per-application, each behind its own lock, so two
// concurrent Process calls (or a Process racing a feature refresh) only
// contend when they touch the same app.
type DataProcessor struct {
	db     *store.Store
	robust atomic.Bool
	now    func() time.Time // stamps FeatureRow.Updated; injectable

	mu    sync.RWMutex // guards the byApp map only, not the appData within
	byApp map[string]*appData

	// processed counts decoded uploads; decodeErrors counts blobs that
	// failed to decode (they are dropped with accounting, not retried).
	processed    atomic.Int64
	decodeErrors atomic.Int64

	obsv *obs.Observer
	met  processorMetrics
}

// processorMetrics are the processor's constant-label handles (all nil
// without an observer).
type processorMetrics struct {
	processed  *obs.Counter
	decodeErrs *obs.Counter
	refreshes  *obs.Counter
	processMs  *obs.Histogram
}

// appData is one application's decoded-sample accumulator. Its lock
// serializes appends and snapshot reads for this app only.
type appData struct {
	mu     sync.Mutex
	scalar map[string][]feature.Sample // sensor name -> samples
	// track groups GPS fixes into bursts keyed by (user, timestamp): all
	// fixes one phone recorded in one measurement form one burst, so the
	// curvature estimate never mixes different walkers' traces.
	track map[burstKey]*feature.GeoSample
}

type burstKey struct {
	user string
	at   int64
}

// NewDataProcessor builds a processor over the store.
func NewDataProcessor(db *store.Store) *DataProcessor {
	return &DataProcessor{db: db, now: time.Now, byApp: make(map[string]*appData)}
}

// SetNow substitutes the clock stamping FeatureRow.Updated (the server
// passes its own injected clock through, so a simulation's feature rows
// carry virtual timestamps and same-seed runs match byte for byte).
// Call before the first Process; not synchronized against processing.
func (d *DataProcessor) SetNow(now func() time.Time) {
	if now != nil {
		d.now = now
	}
}

// SetRobust switches between the plain §IV-A extractors and the
// MAD-outlier-rejecting variants.
func (d *DataProcessor) SetRobust(robust bool) {
	d.robust.Store(robust)
}

// SetObserver instruments the processor: fold counts and durations
// become metrics, and each folded upload that arrived with a trace
// RequestID records a "processor.fold" span under that id. Call before
// the first Process; not synchronized against concurrent processing.
func (d *DataProcessor) SetObserver(o *obs.Observer) {
	d.obsv = o
	reg := o.Metrics()
	d.met = processorMetrics{
		processed:  reg.Counter("sor_processor_uploads_total"),
		decodeErrs: reg.Counter("sor_processor_decode_errors_total"),
		refreshes:  reg.Counter("sor_processor_refreshes_total"),
		processMs:  reg.LatencyHistogram("sor_processor_process_ms"),
	}
}

// Stats reports processing counters.
func (d *DataProcessor) Stats() (processed, decodeErrors int) {
	return int(d.processed.Load()), int(d.decodeErrors.Load())
}

// appData returns the app's accumulator, creating it on first use.
func (d *DataProcessor) appData(appID string) *appData {
	d.mu.RLock()
	ad := d.byApp[appID]
	d.mu.RUnlock()
	if ad != nil {
		return ad
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if ad = d.byApp[appID]; ad == nil {
		ad = &appData{
			scalar: make(map[string][]feature.Sample),
			track:  make(map[burstKey]*feature.GeoSample),
		}
		d.byApp[appID] = ad
	}
	return ad
}

// Process drains pending uploads and refreshes feature rows. It returns
// the number of uploads folded in. Safe for concurrent use.
func (d *DataProcessor) Process() int {
	return d.ProcessContext(context.Background())
}

// ProcessContext is Process honoring cancellation: the context is
// checked before the drain and between per-app feature refreshes. Once
// blobs are drained they are always folded — aborting mid-fold would
// drop data the store no longer holds, breaking exactly-once — so
// cancellation can only stop work that has not yet been claimed.
func (d *DataProcessor) ProcessContext(ctx context.Context) int {
	if ctx.Err() != nil {
		return 0
	}
	t0 := time.Now()
	uploads := d.db.DrainUploads()
	if len(uploads) == 0 {
		return 0
	}
	touched := make(map[string]bool)
	for _, raw := range uploads {
		// With tracing on, each upload that arrived under a RequestID gets
		// a fold span carrying the same id the client minted — the final
		// hop of the ingest trace.
		var span *obs.Span
		if d.obsv != nil && raw.RequestID != "" {
			span = d.obsv.StartSpanID(obs.RequestID(raw.RequestID), "processor.fold")
			span.Annotate("app", raw.AppID)
		}
		d.foldUpload(raw, touched)
		span.End()
	}

	for appID := range touched {
		if ctx.Err() != nil {
			break
		}
		// Refresh failures for one app must not block the others.
		_ = d.refreshApp(appID)
		d.met.refreshes.Inc()
	}
	d.met.processMs.Observe(float64(time.Since(t0)) / float64(time.Millisecond))
	return len(uploads)
}

// foldUpload decodes one raw blob and accumulates its samples.
func (d *DataProcessor) foldUpload(raw store.RawUpload, touched map[string]bool) {
	msg, err := wire.Decode(raw.Body)
	if err != nil {
		d.decodeErrors.Add(1)
		d.met.decodeErrs.Inc()
		return
	}
	up, ok := msg.(*wire.DataUpload)
	if !ok {
		d.decodeErrors.Add(1)
		d.met.decodeErrs.Inc()
		return
	}
	ad := d.appData(up.AppID)
	ad.mu.Lock()
	for _, series := range up.Series {
		for _, smp := range series.Samples {
			ad.scalar[series.Sensor] = append(ad.scalar[series.Sensor], feature.Sample{
				At:       time.UnixMilli(smp.AtUnixMilli).UTC(),
				Window:   time.Duration(smp.WindowMilli) * time.Millisecond,
				Readings: append([]float64(nil), smp.Readings...),
			})
		}
	}
	for _, gp := range up.Track {
		key := burstKey{user: up.UserID, at: gp.AtUnixMilli}
		burst, ok := ad.track[key]
		if !ok {
			burst = &feature.GeoSample{At: time.UnixMilli(gp.AtUnixMilli).UTC()}
			ad.track[key] = burst
		}
		burst.Points = append(burst.Points, geo.Point{Lat: gp.Lat, Lon: gp.Lon, Alt: gp.Alt})
	}
	ad.mu.Unlock()
	d.processed.Add(1)
	d.met.processed.Inc()
	touched[up.AppID] = true
}

// sensorFeature maps an upload series name to the feature it produces and
// the extractor computing it.
type sensorFeature struct {
	feature   string
	extractor feature.Extractor
}

// featurePipelines maps sensor series names to extraction pipelines
// (§IV-A's per-feature methods).
var featurePipelines = map[string]sensorFeature{
	"temperature":   {"temperature", feature.MeanExtractor{Feature: "temperature"}},
	"humidity":      {"humidity", feature.MeanExtractor{Feature: "humidity"}},
	"light":         {"brightness", feature.MeanExtractor{Feature: "brightness"}},
	"wifi":          {"wifi", feature.MeanExtractor{Feature: "wifi"}},
	"microphone":    {"noise", feature.NoiseRMSExtractor{}},
	"accelerometer": {"roughness", feature.RoughnessExtractor{}},
	"barometer":     {"altitude change", feature.AltitudeChangeExtractor{}},
}

// robustPipelines swaps the location-estimating extractors for their
// MAD-outlier-rejecting variants; roughness/altitude/noise keep their
// spread semantics. Enabled via Config.RobustExtraction — the data-quality
// extension quantified in EXPERIMENTS.md.
var robustPipelines = map[string]sensorFeature{
	"temperature":   {"temperature", feature.MADMeanExtractor{Feature: "temperature"}},
	"humidity":      {"humidity", feature.MADMeanExtractor{Feature: "humidity"}},
	"light":         {"brightness", feature.MADMeanExtractor{Feature: "brightness"}},
	"wifi":          {"wifi", feature.MADMeanExtractor{Feature: "wifi"}},
	"microphone":    {"noise", feature.NoiseRMSExtractor{}},
	"accelerometer": {"roughness", feature.RoughnessExtractor{}},
	"barometer":     {"altitude change", feature.AltitudeChangeExtractor{}},
}

// canonicalizeSamples copies samples into a canonical order independent of
// ingest arrival order. Float accumulation is not associative, so feeding
// extractors in drain order would make feature values depend on which
// retransmission won a race; sorting first makes the whole pipeline a pure
// function of the sample *set*, which is what lets the chaos suite demand
// byte-identical features from a faulty and a fault-free run.
func canonicalizeSamples(samples []feature.Sample) []feature.Sample {
	out := append([]feature.Sample(nil), samples...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if !a.At.Equal(b.At) {
			return a.At.Before(b.At)
		}
		if a.Window != b.Window {
			return a.Window < b.Window
		}
		if len(a.Readings) != len(b.Readings) {
			return len(a.Readings) < len(b.Readings)
		}
		for k := range a.Readings {
			if a.Readings[k] != b.Readings[k] {
				return a.Readings[k] < b.Readings[k]
			}
		}
		return false
	})
	return out
}

// refreshApp recomputes every feature for one application.
func (d *DataProcessor) refreshApp(appID string) error {
	app, err := d.db.App(appID)
	if err != nil {
		return fmt.Errorf("server: processing upload for unknown app %s: %w", appID, err)
	}
	d.mu.RLock()
	ad := d.byApp[appID]
	d.mu.RUnlock()
	if ad == nil {
		return nil
	}
	// Snapshot under the app lock: slice headers are copied at their
	// current length, and sample elements are never mutated after append,
	// so the extractors can run on the snapshot without holding the lock.
	ad.mu.Lock()
	sensorsSnapshot := make(map[string][]feature.Sample, len(ad.scalar))
	for k, v := range ad.scalar {
		sensorsSnapshot[k] = v
	}
	type keyedBurst struct {
		key burstKey
		gs  feature.GeoSample
	}
	bursts := make([]keyedBurst, 0, len(ad.track))
	for key, burst := range ad.track {
		bursts = append(bursts, keyedBurst{key: key, gs: feature.GeoSample{
			At:     burst.At,
			Points: burst.Points[:len(burst.Points):len(burst.Points)],
		}})
	}
	ad.mu.Unlock()
	// Canonical burst order: (instant, user). Points inside one burst keep
	// their recorded sequence — that is the walker's path; only the order
	// *between* bursts is arrival-dependent and must be normalized.
	sort.Slice(bursts, func(i, j int) bool {
		if bursts[i].key.at != bursts[j].key.at {
			return bursts[i].key.at < bursts[j].key.at
		}
		return bursts[i].key.user < bursts[j].key.user
	})
	trackSnapshot := make([]feature.GeoSample, len(bursts))
	for i, kb := range bursts {
		trackSnapshot[i] = kb.gs
	}
	pipelines := featurePipelines
	if d.robust.Load() {
		pipelines = robustPipelines
	}
	now := d.now().UTC()
	for sensor, samples := range sensorsSnapshot {
		pipeline, ok := pipelines[sensor]
		if !ok || len(samples) == 0 {
			continue
		}
		value, err := pipeline.extractor.Extract(canonicalizeSamples(samples))
		if err != nil {
			continue
		}
		if err := d.db.UpsertFeature(store.FeatureRow{
			Category: app.Category,
			Place:    app.Place,
			Feature:  pipeline.feature,
			Value:    value,
			Samples:  len(samples),
			Updated:  now,
		}); err != nil {
			return err
		}
	}
	if len(trackSnapshot) > 0 {
		curv, err := feature.BurstCurvature(trackSnapshot)
		if err == nil {
			if err := d.db.UpsertFeature(store.FeatureRow{
				Category: app.Category,
				Place:    app.Place,
				Feature:  "curvature",
				Value:    curv,
				Samples:  len(trackSnapshot),
				Updated:  now,
			}); err != nil {
				return err
			}
		}
	}
	return nil
}
