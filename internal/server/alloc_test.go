package server

// Allocation gate for the rank hot path. A cached-hit rank query must
// cost a small constant number of allocations — the profile map, the
// canonical key string, and the wire response — independent of category
// size. The scratch that used to dominate (order/tie slices in the
// ranker, the profileKey buffer) is pooled; a regression that
// reintroduces per-place allocation on the hit path fails this gate
// loudly rather than showing up as a latency drift in a benchmark
// nobody reruns.

import (
	"testing"
	"time"

	"sor/internal/wire"
	"sor/internal/world"
)

// rankCachedHitAllocBudget is the gate. The measured cost today is ~5
// allocations (request profile map, key string, response struct, ranked
// slice); the budget leaves headroom for innocuous churn while still
// catching any O(places) regression.
const rankCachedHitAllocBudget = 16

func TestRankCachedHitAllocs(t *testing.T) {
	s, clock := newTestServer(t)
	for i := 0; i < 4; i++ {
		if err := s.CreateApp(concApp(i)); err != nil {
			t.Fatal(err)
		}
		task := concJoin(t, s, i, "alloc-user")
		up := reportWithReadings(task, concApp(i).ID, "alloc-user", clock.Now(), float64(10+i))
		if _, err := s.Handler()(nil, up); err != nil {
			t.Fatal(err)
		}
	}
	h := s.Handler()
	req := &wire.RankRequest{
		UserID: "alloc-user", Category: world.CategoryCoffee, TopK: 2,
		Prefs: []wire.PrefEntry{
			{Feature: "temperature", Kind: 1, Value: 11, Weight: 3},
			{Feature: "noise", Kind: 2, Weight: 2},
		},
	}
	// Prime the snapshot and the profile cache.
	if _, err := h(nil, req); err != nil {
		t.Fatal(err)
	}
	_ = clock // virtual clock frozen: the snapshot stays fresh throughout

	avg := testing.AllocsPerRun(200, func() {
		resp, err := h(nil, req)
		if err != nil {
			t.Fatal(err)
		}
		if r, ok := resp.(*wire.RankResponse); !ok || len(r.Ranked) != 2 {
			t.Fatalf("unexpected response %+v", resp)
		}
	})
	if avg > rankCachedHitAllocBudget {
		t.Fatalf("cached-hit rank query costs %.1f allocs, budget %d", avg, rankCachedHitAllocBudget)
	}
	t.Logf("cached-hit rank query: %.1f allocs (budget %d)", avg, rankCachedHitAllocBudget)
}

// TestRankTopKBoundsResponse pins the wire-visible contract of the TopK
// knob: the response is truncated to k places, and k larger than the
// category degrades to the full ranking.
func TestRankTopKBoundsResponse(t *testing.T) {
	s, clock := newTestServer(t)
	for i := 0; i < 5; i++ {
		if err := s.CreateApp(concApp(i)); err != nil {
			t.Fatal(err)
		}
		task := concJoin(t, s, i, "topk-user")
		up := reportWithReadings(task, concApp(i).ID, "topk-user", clock.Now().Add(time.Duration(i)*time.Second), float64(50-i))
		if _, err := s.Handler()(nil, up); err != nil {
			t.Fatal(err)
		}
	}
	h := s.Handler()
	full, err := h(nil, &wire.RankRequest{UserID: "topk-user", Category: world.CategoryCoffee,
		Prefs: []wire.PrefEntry{{Feature: "temperature", Kind: 2, Weight: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	fullResp := full.(*wire.RankResponse)
	if len(fullResp.Ranked) != 5 {
		t.Fatalf("full rank returned %d places, want 5", len(fullResp.Ranked))
	}
	for _, k := range []int{1, 3, 9} {
		resp, err := h(nil, &wire.RankRequest{UserID: "topk-user", Category: world.CategoryCoffee, TopK: k,
			Prefs: []wire.PrefEntry{{Feature: "temperature", Kind: 2, Weight: 3}}})
		if err != nil {
			t.Fatal(err)
		}
		r := resp.(*wire.RankResponse)
		want := k
		if want > 5 {
			want = 5
		}
		if len(r.Ranked) != want {
			t.Fatalf("TopK=%d returned %d places, want %d", k, len(r.Ranked), want)
		}
		// The bounded prefix must agree with the full ranking.
		for i := range r.Ranked {
			if r.Ranked[i].Place != fullResp.Ranked[i].Place {
				t.Fatalf("TopK=%d rank %d: %s != full %s", k, i, r.Ranked[i].Place, fullResp.Ranked[i].Place)
			}
		}
	}
}
