// Package server implements SOR's Sensing Server (Fig. 5): the Message
// Handler dispatching binary-over-HTTP messages, the User Info Manager,
// the Application Manager, the Participation Manager with geofence
// verification, the Sensing Scheduler (event-driven greedy coverage
// maximization, §III), the Data Processor (§IV-A) and the Personalizable
// Ranker (§IV-B), all backed by the store package standing in for
// PostgreSQL.
package server

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sor/internal/coverage"
	"sor/internal/geo"
	"sor/internal/obs"
	"sor/internal/ranking"
	"sor/internal/schedule"
	"sor/internal/store"
	"sor/internal/transport"
	"sor/internal/wire"
)

// Config parameterizes a Server.
type Config struct {
	// DB is an already-open backing store. Exactly one of DB and Storage
	// must be set. A server built on DB is ready immediately (the legacy
	// construction path); a server built on Storage must be Opened first.
	DB *store.Store
	// Storage is the pluggable persistence backend (store.NewMemoryBackend,
	// store.NewDurableBackend). Server.Open recovers the store from it and
	// rebuilds the scheduling state; Server.Close shuts it down.
	Storage store.Backend
	// Now supplies time; tests and simulations inject a virtual clock.
	// Defaults to time.Now.
	Now func() time.Time
	// Kernel is the coverage kernel (default Gaussian σ=10 s, the
	// paper's simulation setting).
	Kernel coverage.Kernel
	// Step is the timeline discretization (default 10 s).
	Step time.Duration
	// Catalog maps a category to its ranked features with default
	// preferences; required for ranking.
	Catalog map[string][]ranking.Feature
	// Push is the optional server-initiated fabric: anything that can ask
	// a device to ping home. A session registry
	// (internal/transport/session) here upgrades pushes to full messages
	// — fresh schedules and epoch invalidations ride the live stream —
	// via the transport.MessagePusher / Broadcaster interfaces; the
	// deprecated simulated-GCM Push still satisfies the plain Notifier.
	Push transport.Notifier
	// RobustExtraction enables MAD outlier rejection in the Data
	// Processor (defends against miscalibrated phones).
	RobustExtraction bool
	// RankRefresh bounds rank-serving staleness: a matrix snapshot with
	// pending ingest keeps serving until it is this old, then rebuilds
	// lazily on the next rank request. Zero (the default) means rank
	// requests always observe every prior ingest, like the legacy path
	// that re-processed per query.
	RankRefresh time.Duration
	// MaxReplicaLag bounds how stale a read replica may serve rank
	// queries: when the follower has not confirmed contact with the
	// leader within this window, rank requests are refused (503,
	// retryable) instead of silently serving old data. Zero means serve
	// regardless of lag. Replies that are served while the replica knows
	// it lags carry the RankResponse.Stale flag. Only meaningful on
	// servers opened as replicas.
	MaxReplicaLag time.Duration
	// Observer enables metrics and request tracing (nil = observability
	// off; every instrumentation point degrades to a no-op).
	Observer *obs.Observer
}

// Server is one sensing server instance. Its mutable scheduling state is
// sharded per application (see shards.go and DESIGN.md "Concurrency
// model"): there is no server-global lock on the upload or scheduling hot
// paths.
type Server struct {
	db      *store.Store
	storage store.Backend
	now     func() time.Time
	kernel  coverage.Kernel
	step    time.Duration
	catalog map[string][]ranking.Feature
	push    transport.Notifier

	states  *shardedStates // appID -> scheduler state, sharded
	taskSeq atomic.Int64

	processor *DataProcessor

	// Rank-serving state (snapshots.go): per-category epoch snapshots and
	// result caches, plus the appID→category cache ingest uses to bump
	// dirty counters without a store lookup.
	rankRefresh  time.Duration
	servingByCat sync.Map // category -> *categoryServing
	appCats      sync.Map // appID -> category string

	// Replica mode (replica.go): when set, the server is a warm standby —
	// every mutating message is refused retryably, the data processor
	// never runs (derived state arrives via the replicated WAL), and rank
	// queries are staleness-gated by maxReplicaLag against lagProbe.
	replica       atomic.Bool
	maxReplicaLag time.Duration
	lagProbe      atomic.Pointer[ReplicaLagProbe]

	obsv *obs.Observer
	met  serverMetrics
}

// serverMetrics are the server's constant-label handles, created once at
// construction so the hot paths never touch the registry. All fields are
// nil (no-op) when the server has no observer. Per-type handles live in
// small arrays indexed by the wire type byte — an indexed load, not a
// map lookup, on the dispatch path.
type serverMetrics struct {
	requests  [16]*obs.Counter
	handlerMs [16]*obs.Histogram

	ingestReports    *obs.Counter // upload arrivals that matched an active task (pre-dedup)
	ingestAccepted   *obs.Counter // reports stored exactly once
	ingestDuplicates *obs.Counter // dedup-window hits (lost-ack retransmissions)
	ingestRejected   *obs.Counter // reports refused (unknown task / identity mismatch)

	replans               *obs.Counter
	snapshotRebuilds      *obs.Counter
	snapshotDeltaRebuilds *obs.Counter // rebuilds served by an incremental column merge
	snapshotRearms        *obs.Counter // stale signals that re-armed the epoch without a rebuild
	snapshotRebuildMs     *obs.Histogram
	rankCacheHits         *obs.Counter
	rankCacheMisses       *obs.Counter
	rankWarmBlocks        *obs.Counter // aggregation blocks served from a certified warm-start hint
}

// handlerLatencySampleShift makes the handler latency histogram time one
// request in every 8, per type. The sampling decision rides the per-type
// request counter (obs.Counter.IncSample), so it costs no extra atomic;
// what it saves is the clock-read pair, which dwarfs the rest of the
// per-request instrumentation.
const handlerLatencySampleShift = 3

// requestTypes are the message types phones and rank clients send; their
// per-type series are registered eagerly so the ops surface shows every
// expected series from boot, not only after first traffic.
var requestTypes = []wire.MsgType{
	wire.TypeParticipate, wire.TypeDataUpload, wire.TypeDataUploadBatch,
	wire.TypeLeave, wire.TypePing, wire.TypeRankRequest,
}

func newServerMetrics(reg *obs.Registry) serverMetrics {
	m := serverMetrics{
		ingestReports:         reg.Counter("sor_ingest_reports_total"),
		ingestAccepted:        reg.Counter("sor_ingest_accepted_total"),
		ingestDuplicates:      reg.Counter("sor_ingest_duplicate_total"),
		ingestRejected:        reg.Counter("sor_ingest_rejected_total"),
		replans:               reg.Counter("sor_sched_replans_total"),
		snapshotRebuilds:      reg.Counter("sor_snapshot_rebuilds_total"),
		snapshotDeltaRebuilds: reg.Counter("sor_snapshot_delta_rebuilds_total"),
		snapshotRearms:        reg.Counter("sor_snapshot_rearms_total"),
		snapshotRebuildMs:     reg.LatencyHistogram("sor_snapshot_rebuild_ms"),
		rankCacheHits:         reg.Counter("sor_rank_cache_hits_total"),
		rankCacheMisses:       reg.Counter("sor_rank_cache_misses_total"),
		rankWarmBlocks:        reg.Counter("sor_rank_warm_blocks_total"),
	}
	for _, t := range requestTypes {
		m.requests[byte(t)&0xf] = reg.Counter("sor_server_requests_total", obs.L("type", t.String()))
		m.handlerMs[byte(t)&0xf] = reg.LatencyHistogram("sor_server_handler_ms", obs.L("type", t.String()))
	}
	return m
}

// appSchedState holds one application's scheduling period state. The
// timeline is immutable after creation and online is internally
// synchronized; mu guards only the task/token maps.
type appSchedState struct {
	timeline *coverage.Timeline
	online   *schedule.Online

	mu      sync.Mutex
	taskOf  map[string]string // userID -> taskID
	tokenOf map[string]string // userID -> device token
}

// New builds a server. With cfg.DB the server is usable immediately;
// with cfg.Storage it must be Opened to recover the store first.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil && cfg.Storage == nil {
		return nil, errors.New("server: nil store")
	}
	if cfg.DB != nil && cfg.Storage != nil {
		return nil, errors.New("server: DB and Storage are mutually exclusive")
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Kernel == nil {
		cfg.Kernel = coverage.GaussianKernel{Sigma: 10}
	}
	if cfg.Step <= 0 {
		cfg.Step = 10 * time.Second
	}
	if len(cfg.Catalog) == 0 {
		return nil, errors.New("server: empty feature catalog")
	}
	s := &Server{
		db:            cfg.DB,
		storage:       cfg.Storage,
		now:           cfg.Now,
		kernel:        cfg.Kernel,
		step:          cfg.Step,
		catalog:       cfg.Catalog,
		push:          cfg.Push,
		rankRefresh:   cfg.RankRefresh,
		maxReplicaLag: cfg.MaxReplicaLag,
	}
	s.states = newShardedStates()
	s.processor = NewDataProcessor(cfg.DB)
	s.processor.SetNow(cfg.Now)
	s.processor.SetRobust(cfg.RobustExtraction)
	if cfg.Observer != nil {
		s.obsv = cfg.Observer
		s.met = newServerMetrics(cfg.Observer.Metrics())
		s.processor.SetObserver(cfg.Observer)
	}
	return s, nil
}

// Observer exposes the server's observer (nil when observability is off).
func (s *Server) Observer() *obs.Observer { return s.obsv }

// DB exposes the backing store.
func (s *Server) DB() *store.Store { return s.db }

// Processor exposes the data processor (for periodic driving).
func (s *Server) Processor() *DataProcessor { return s.processor }

// Handler returns the transport dispatch function. The context flows
// from the HTTP layer through every handler into the store and
// processor calls: cancellation is honored before side effects, and the
// trace RequestID it carries stamps the handler span and the stored
// upload. With an observer, dispatch counts every request and times a
// uniform 1-in-8 sample of them into the per-type latency histogram.
func (s *Server) Handler() transport.Handler {
	return func(ctx context.Context, m wire.Message) (wire.Message, error) {
		if ctx == nil {
			ctx = context.Background()
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if s.obsv == nil {
			return s.dispatch(ctx, m)
		}
		span := s.obsv.StartSpanID(obs.RequestIDFrom(ctx), "server.handle")
		span.Annotate("type", m.Type().String())
		idx := byte(m.Type()) & 0xf
		sampled := s.met.requests[idx].IncSample(handlerLatencySampleShift)
		var t0 time.Time
		if sampled {
			t0 = time.Now()
		}
		resp, err := s.dispatch(ctx, m)
		if err != nil {
			span.Annotate("error", err.Error())
		}
		span.End()
		if sampled {
			s.met.handlerMs[idx].Observe(float64(time.Since(t0)) / float64(time.Millisecond))
		}
		return resp, err
	}
}

func (s *Server) dispatch(ctx context.Context, m wire.Message) (wire.Message, error) {
	if s.db == nil {
		return nil, errors.New("server: not open")
	}
	// A replica refuses every mutating message retryably (503, like a
	// node mid-restart) so phones fail over to the leader instead of
	// diverging this node's log. Reads — ping and rank — stay served.
	if s.replica.Load() {
		switch m.(type) {
		case *wire.Participate, *wire.DataUpload, *wire.DataUploadBatch, *wire.Leave:
			return refuse(503, "replica: writes go to the leader"), nil
		}
	}
	switch msg := m.(type) {
	case *wire.Participate:
		return s.handleParticipate(ctx, msg)
	case *wire.DataUpload:
		return s.handleDataUpload(ctx, msg)
	case *wire.DataUploadBatch:
		return s.HandleReportBatch(ctx, msg)
	case *wire.Leave:
		return s.handleLeave(ctx, msg)
	case *wire.Ping:
		return s.handlePing(ctx, msg)
	case *wire.RankRequest:
		return s.handleRankRequest(ctx, msg)
	default:
		return nil, fmt.Errorf("server: unsupported message %s", m.Type())
	}
}

// CreateApp registers an application (the Application Manager's insert
// path, used by sorctl and the harness).
func (s *Server) CreateApp(app store.Application) error {
	if s.db == nil {
		return errors.New("server: not open")
	}
	if app.PeriodSec <= 0 {
		return errors.New("server: application needs a positive scheduling period")
	}
	if app.RadiusM <= 0 {
		return errors.New("server: application needs a geofence radius")
	}
	if app.Script == "" {
		return errors.New("server: application needs a sensing script")
	}
	return s.db.PutApp(app)
}

// schedState lazily creates the per-app scheduling state, anchoring the
// period at the first participation. Only the app's own shard is locked.
func (s *Server) schedState(app store.Application, anchor time.Time) (*appSchedState, error) {
	return s.states.getOrCreate(app.ID, func() (*appSchedState, error) {
		n := int(time.Duration(app.PeriodSec)*time.Second/s.step) + 1
		tl, err := coverage.NewTimeline(anchor.Truncate(s.step), s.step, n)
		if err != nil {
			return nil, fmt.Errorf("server: timeline for %s: %w", app.ID, err)
		}
		sched, err := schedule.NewScheduler(tl, s.kernel, schedule.WithLazyGreedy())
		if err != nil {
			return nil, err
		}
		online, err := schedule.NewOnline(sched)
		if err != nil {
			return nil, err
		}
		return &appSchedState{
			timeline: tl,
			online:   online,
			taskOf:   make(map[string]string),
			tokenOf:  make(map[string]string),
		}, nil
	})
}

func (s *Server) nextTaskID() string {
	return "task-" + strconv.FormatInt(s.taskSeq.Add(1), 10)
}

// refuse builds a refusal Ack.
func refuse(code int, format string, args ...interface{}) *wire.Ack {
	return &wire.Ack{OK: false, Code: code, Message: fmt.Sprintf(format, args...)}
}

// handleParticipate is the barcode-scan path: verify the user is really at
// the target place, create the task, re-plan, and hand back this user's
// schedule with the app's Lua script.
func (s *Server) handleParticipate(ctx context.Context, msg *wire.Participate) (wire.Message, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if msg.UserID == "" || msg.Token == "" {
		return refuse(400, "participation needs user id and token"), nil
	}
	if msg.Budget <= 0 {
		return refuse(400, "participation needs a positive sensing budget"), nil
	}
	app, err := s.db.App(msg.AppID)
	if err != nil {
		return refuse(404, "unknown application %s", msg.AppID), nil
	}
	// Geofence verification (the Participation Manager's truthfulness
	// check): the claimed location must be inside the app's radius.
	claimed := geo.Point{Lat: msg.Loc.Lat, Lon: msg.Loc.Lon, Alt: msg.Loc.Alt}
	anchor := geo.Point{Lat: app.Lat, Lon: app.Lon}
	if d := geo.Distance(claimed, anchor); d > app.RadiusM {
		return refuse(403, "location check failed: %.0f m from %s (limit %.0f m)",
			d, app.Place, app.RadiusM), nil
	}
	// Auto-register unknown users (User Info Manager).
	if _, err := s.db.User(msg.UserID); err != nil {
		if putErr := s.db.PutUser(store.User{ID: msg.UserID, Name: msg.UserID, Token: msg.Token}); putErr != nil {
			return nil, putErr
		}
	}
	// Refuse double participation.
	if _, err := s.db.ActiveParticipationByUser(msg.AppID, msg.UserID); err == nil {
		return refuse(409, "user %s already participating in %s", msg.UserID, msg.AppID), nil
	}

	now := s.now()
	st, err := s.schedState(app, now)
	if err != nil {
		return nil, err
	}
	// Persist the period anchor so a restarted server rebuilds this app's
	// timeline on the same grid (idempotent after the first participant).
	if err := s.db.PutAnchor(app.ID, st.timeline.Start()); err != nil {
		return nil, err
	}
	leave := st.timeline.End()
	if msg.LeaveAfterSec > 0 {
		until := now.Add(time.Duration(msg.LeaveAfterSec) * time.Second)
		if until.Before(leave) {
			leave = until
		}
	}
	// The task counter is in-memory; after a restart (or when several
	// servers share one store) it can lag the IDs already persisted, so
	// skip over duplicates until an unused ID is found.
	var taskID string
	for {
		taskID = s.nextTaskID()
		err := s.db.PutParticipation(store.Participation{
			TaskID:  taskID,
			UserID:  msg.UserID,
			Token:   msg.Token,
			AppID:   msg.AppID,
			Budget:  msg.Budget,
			Status:  store.TaskWaiting,
			Joined:  now,
			LeaveBy: leave,
		})
		if err == nil {
			break
		}
		if !errors.Is(err, store.ErrDuplicate) {
			return nil, err
		}
	}
	st.mu.Lock()
	st.taskOf[msg.UserID] = taskID
	st.tokenOf[msg.UserID] = msg.Token
	st.mu.Unlock()

	plan, err := st.online.Join(now, schedule.Participant{
		UserID: msg.UserID,
		Arrive: now,
		Leave:  leave,
		Budget: msg.Budget,
	})
	if err != nil {
		return refuse(500, "scheduling failed: %v", err), nil
	}
	s.met.replans.Inc()
	if err := s.distributePlan(app, st, plan); err != nil {
		return nil, err
	}
	if err := s.db.UpdateParticipation(taskID, func(p *store.Participation) {
		p.Status = store.TaskRunning
	}); err != nil {
		return nil, err
	}
	sched, err := s.scheduleFor(app, st, msg.UserID)
	if err != nil {
		return nil, err
	}
	payload, err := wire.Encode(sched)
	if err != nil {
		return nil, err
	}
	return &wire.Ack{OK: true, Code: 200, Message: "scheduled", Payload: payload}, nil
}

// distributePlan stores every user's fresh schedule and pushes wake-ups so
// phones re-fetch (the GCM path).
func (s *Server) distributePlan(app store.Application, st *appSchedState, plan *schedule.Plan) error {
	st.mu.Lock()
	taskOf := make(map[string]string, len(st.taskOf))
	for u, t := range st.taskOf {
		taskOf[u] = t
	}
	tokenOf := make(map[string]string, len(st.tokenOf))
	for u, t := range st.tokenOf {
		tokenOf[u] = t
	}
	st.mu.Unlock()
	for userID, a := range plan.Assignments {
		taskID, ok := taskOf[userID]
		if !ok {
			continue
		}
		row := store.ScheduleRow{TaskID: taskID, AppID: app.ID, UserID: userID}
		for _, t := range a.Times(st.timeline) {
			row.AtUnix = append(row.AtUnix, t.Unix())
		}
		if err := s.db.PutSchedule(row); err != nil {
			return err
		}
		if s.push != nil {
			// Best effort: unreachable phones will poll eventually. A
			// stream-connected phone gets the fresh schedule itself pushed
			// down its session, saving the wake-then-ping round trip; a
			// wake-only fabric (or a push failure) falls back to the
			// classic "ping home" nudge.
			token := tokenOf[userID]
			pushed := false
			if mp, ok := s.push.(transport.MessagePusher); ok {
				if sched, err := s.scheduleFor(app, st, userID); err == nil {
					pushed = mp.PushMessage(token, sched) == nil
				}
			}
			if !pushed {
				_ = s.push.Notify(token)
			}
		}
	}
	return nil
}

// scheduleFor assembles the wire.Schedule for one user from the stored
// row plus the app's script.
func (s *Server) scheduleFor(app store.Application, st *appSchedState, userID string) (*wire.Schedule, error) {
	st.mu.Lock()
	taskID, ok := st.taskOf[userID]
	st.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("server: no task for user %s", userID)
	}
	row, err := s.db.Schedule(taskID)
	if err != nil {
		// A plan that assigned nothing still yields an empty schedule.
		row = store.ScheduleRow{TaskID: taskID, AppID: app.ID, UserID: userID}
	}
	return &wire.Schedule{
		TaskID: row.TaskID,
		AppID:  app.ID,
		UserID: userID,
		Script: app.Script,
		AtUnix: row.AtUnix,
	}, nil
}

// handleDataUpload lands the binary blob in the database untouched (the
// Message Handler "will directly store the binary message body into the
// database, which will be processed later by the Data Processor") and
// records executed measurements for budget accounting.
func (s *Server) handleDataUpload(ctx context.Context, msg *wire.DataUpload) (wire.Message, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p, err := s.db.Participation(msg.TaskID)
	if err != nil {
		s.met.ingestRejected.Inc()
		return refuse(404, "unknown task %s", msg.TaskID), nil
	}
	if p.UserID != msg.UserID || p.AppID != msg.AppID {
		s.met.ingestRejected.Inc()
		return refuse(403, "upload does not match task %s", msg.TaskID), nil
	}
	s.met.ingestReports.Inc()
	raw, err := wire.Encode(msg)
	if err != nil {
		return nil, err
	}
	// Idempotent ingest: a ReportID already in the app's dedup window is a
	// retransmission of a report whose ack got lost. Ack it again so the
	// phone stops resending, but store and budget-charge nothing. Ingest
	// decides freshness, logs the mark and the body as one WAL record on
	// durable stores, and applies both — so a crash can never ack this
	// report without having persisted it. The dedup decision gets its own
	// span so a trace shows whether a given attempt stored the report or
	// hit the window.
	requestID := obs.RequestIDFrom(ctx)
	res, err := s.db.Ingest(msg.AppID, [][]byte{raw}, store.IngestOptions{
		Received:  s.now(),
		RequestID: string(requestID),
		ReportIDs: []string{msg.ReportID},
	})
	if err != nil {
		return nil, err
	}
	fresh := res.Stored == 1
	if s.obsv != nil {
		sp := s.obsv.StartSpanID(requestID, "server.dedup")
		sp.Annotate("report_id", msg.ReportID)
		sp.Annotate("duplicate", strconv.FormatBool(!fresh))
		sp.End()
	}
	if !fresh {
		s.met.ingestDuplicates.Inc()
		return &wire.Ack{OK: true, Code: 200, Message: "duplicate"}, nil
	}
	s.met.ingestAccepted.Inc()
	s.markDirty(msg.AppID)

	// Budget accounting: each distinct measurement timestamp consumes one
	// unit of the user's budget.
	if st := s.states.get(msg.AppID); st != nil {
		// Exhausted budgets are refused quietly; the data is kept.
		_, _ = st.online.RecordExecutions(msg.UserID, uploadInstants(st.timeline, msg))
	}
	return &wire.Ack{OK: true, Code: 200, Message: "stored"}, nil
}

// uploadInstants collapses a report's measurement timestamps onto distinct
// timeline instants (each distinct instant consumes one unit of budget).
func uploadInstants(tl *coverage.Timeline, msg *wire.DataUpload) []int {
	seen := make(map[int]bool)
	for _, series := range msg.Series {
		for _, smp := range series.Samples {
			seen[tl.Index(time.UnixMilli(smp.AtUnixMilli).UTC())] = true
		}
	}
	for _, gp := range msg.Track {
		seen[tl.Index(time.UnixMilli(gp.AtUnixMilli).UTC())] = true
	}
	instants := make([]int, 0, len(seen))
	for instant := range seen {
		instants = append(instants, instant)
	}
	return instants
}

// HandleReportBatch is the coalesced ingest path: it lands a burst of
// reports with per-app amortization — one participation check per distinct
// task, one upload-bucket lock acquisition per app, one scheduler-lock
// acquisition per (user, app) for budget accounting. Reports for different
// apps inside one batch still land in their own shards, so two batches for
// different apps never contend. Individual bad reports are skipped, not
// fatal: the Ack reports accepted/total (Code 200 all accepted, 207
// partial, 400 none).
func (s *Server) HandleReportBatch(ctx context.Context, msg *wire.DataUploadBatch) (wire.Message, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(msg.Uploads) == 0 {
		return refuse(400, "empty report batch"), nil
	}
	if len(msg.Uploads) > wire.MaxBatchReports {
		return refuse(413, "batch of %d exceeds %d reports", len(msg.Uploads), wire.MaxBatchReports), nil
	}
	requestID := string(obs.RequestIDFrom(ctx))
	now := s.now()
	// Group report indices per app, preserving arrival order within an app.
	byApp := make(map[string][]int)
	for i := range msg.Uploads {
		byApp[msg.Uploads[i].AppID] = append(byApp[msg.Uploads[i].AppID], i)
	}
	// Ingest counters accumulate locally and flush once per batch: a
	// 4096-report burst pays three atomic adds, not thousands. The defer
	// keeps the flush on the encode-error exit too.
	var nReports, nRejected, nDuplicates int64
	defer func() {
		s.met.ingestReports.Add(nReports)
		s.met.ingestRejected.Add(nRejected)
		s.met.ingestDuplicates.Add(nDuplicates)
	}()
	accepted := 0
	taskOK := make(map[string]bool, len(msg.Uploads))
	for appID, idxs := range byApp {
		st := s.states.get(appID)
		bodies := make([][]byte, 0, len(idxs))
		ids := make([]string, 0, len(idxs))
		ups := make([]*wire.DataUpload, 0, len(idxs))
		for _, i := range idxs {
			up := &msg.Uploads[i]
			// Cache keyed on the full claimed identity so a batch cannot
			// smuggle a second user onto an already-verified task.
			key := up.TaskID + "\x00" + up.UserID + "\x00" + up.AppID
			ok, seen := taskOK[key]
			if !seen {
				p, err := s.db.Participation(up.TaskID)
				ok = err == nil && p.UserID == up.UserID && p.AppID == up.AppID
				taskOK[key] = ok
			}
			if !ok {
				nRejected++
				continue
			}
			nReports++
			raw, err := wire.Encode(up)
			if err != nil {
				return nil, err
			}
			bodies = append(bodies, raw)
			ids = append(ids, up.ReportID)
			ups = append(ups, up)
		}
		// One Ingest per app: dedup decisions, window marks and stored
		// bodies land atomically (one WAL record on durable stores), under
		// one dedup-lock plus one bucket-lock acquisition.
		res, err := s.db.Ingest(appID, bodies, store.IngestOptions{
			Received: now, RequestID: requestID, ReportIDs: ids,
		})
		if err != nil {
			return nil, err
		}
		// instantsOf accumulates budget instants per user across the
		// app's reports so the scheduler lock is taken once per user.
		instantsOf := make(map[string][]int)
		for k, up := range ups {
			accepted++
			// Replays (lost-ack retransmissions) count as accepted — the
			// phone needs an OK to stop resending — but are not re-stored
			// and not re-charged. The batch path counts dedup hits but
			// records no per-report span: a 4096-report burst must stay a
			// few atomic adds, not thousands of ring-buffer writes.
			if !res.Fresh[k] {
				nDuplicates++
				continue
			}
			if st != nil {
				instantsOf[up.UserID] = append(instantsOf[up.UserID], uploadInstants(st.timeline, up)...)
			}
		}
		if res.Stored > 0 {
			s.markDirty(appID)
		}
		s.met.ingestAccepted.Add(int64(res.Stored))
		for userID, instants := range instantsOf {
			// Exhausted budgets are refused quietly; the data is kept.
			_, _ = st.online.RecordExecutions(userID, instants)
		}
	}
	switch {
	case accepted == 0:
		return refuse(400, "no report in batch of %d matched an active task", len(msg.Uploads)), nil
	case accepted < len(msg.Uploads):
		return &wire.Ack{OK: true, Code: 207,
			Message: fmt.Sprintf("stored %d/%d", accepted, len(msg.Uploads))}, nil
	default:
		return &wire.Ack{OK: true, Code: 200,
			Message: fmt.Sprintf("stored %d/%d", accepted, len(msg.Uploads))}, nil
	}
}

// handleLeave marks the user finished and re-plans without them (§II-B: a
// user's status becomes "finished" when they leave the target place).
func (s *Server) handleLeave(ctx context.Context, msg *wire.Leave) (wire.Message, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p, err := s.db.ActiveParticipationByUser(msg.AppID, msg.UserID)
	if err != nil {
		return refuse(404, "no active task for %s in %s", msg.UserID, msg.AppID), nil
	}
	if err := s.db.UpdateParticipation(p.TaskID, func(row *store.Participation) {
		row.Status = store.TaskFinished
		row.Left = s.now()
	}); err != nil {
		return nil, err
	}
	if st := s.states.get(msg.AppID); st != nil {
		app, err := s.db.App(msg.AppID)
		if err != nil {
			return nil, err
		}
		plan, err := st.online.Leave(s.now(), msg.UserID)
		if err == nil {
			s.met.replans.Inc()
			if err := s.distributePlan(app, st, plan); err != nil {
				return nil, err
			}
		}
	}
	return &wire.Ack{OK: true, Code: 200, Message: "goodbye"}, nil
}

// handlePing is the GCM rendezvous: a phone woken via push pings home with
// its token; the server replies with the latest schedule for the phone's
// active task.
func (s *Server) handlePing(ctx context.Context, msg *wire.Ping) (wire.Message, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	user, err := s.db.UserByToken(msg.Token)
	if err != nil {
		return refuse(404, "unknown device token"), nil
	}
	// Find the user's active participation (any app). The schedule row is
	// read from the database so it survives server restarts.
	for _, app := range s.db.Apps() {
		p, err := s.db.ActiveParticipationByUser(app.ID, user.ID)
		if err != nil {
			continue
		}
		row, err := s.db.Schedule(p.TaskID)
		if err != nil {
			row = store.ScheduleRow{TaskID: p.TaskID, AppID: app.ID, UserID: p.UserID}
		}
		sched := &wire.Schedule{
			TaskID: row.TaskID,
			AppID:  app.ID,
			UserID: p.UserID,
			Script: app.Script,
			AtUnix: row.AtUnix,
		}
		payload, err := wire.Encode(sched)
		if err != nil {
			return nil, err
		}
		return &wire.Ack{OK: true, Code: 200, Message: "schedule", Payload: payload}, nil
	}
	return &wire.Ack{OK: true, Code: 204, Message: "no active task"}, nil
}

// handleRankRequest runs the Personalizable Ranker over the category's
// current columnar snapshot (snapshots.go). The hot path — fresh
// snapshot, cached profile — is an atomic load, a few counter compares,
// one key build, and a map hit; no processor run, no store reads, no
// solver. A bounded request (TopK > 0) solves only the leading clean-cut
// blocks of the aggregation; uncached solves reuse the superseded epoch's
// assignment whenever the mcmf optimality certificate still accepts it.
func (s *Server) handleRankRequest(ctx context.Context, msg *wire.RankRequest) (wire.Message, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	stale, tooStale := s.replicaStale()
	if tooStale {
		return refuse(503, "replica lag exceeds the staleness bound"), nil
	}
	snap, err := s.freshSnapshot(msg.Category)
	if err != nil {
		if errors.Is(err, errNoRankData) {
			return refuse(404, "no data for category %s: %v", msg.Category, err), nil
		}
		return nil, err
	}
	prof := ranking.Profile{Name: msg.UserID, Prefs: make(map[string]ranking.Preference, len(msg.Prefs))}
	for _, p := range msg.Prefs {
		prof.Prefs[p.Feature] = ranking.Preference{
			Kind:   ranking.PrefKind(p.Kind),
			Value:  p.Value,
			Weight: p.Weight,
		}
	}
	k := msg.TopK
	cs := s.serving(msg.Category)
	res, err := cs.cache.getOrCompute(snap.epoch, snap.profileKey(prof.Prefs, k), func(hint []int) (*ranking.Result, error) {
		r, err := snap.cranker.RankTopK(prof, k, hint)
		if err == nil && r.WarmBlocks > 0 {
			s.met.rankWarmBlocks.Add(int64(r.WarmBlocks))
		}
		return r, err
	})
	if err != nil {
		return refuse(400, "ranking failed: %v", err), nil
	}
	resp := buildRankResponse(msg.Category, snap, res, k)
	resp.Stale = stale
	return resp, nil
}

// FeatureMatrix assembles the ranking matrix H for a category from the
// feature table (the Personalizable Ranker's read path).
func (s *Server) FeatureMatrix(category string) (*ranking.Matrix, error) {
	catalog, ok := s.catalog[category]
	if !ok {
		return nil, fmt.Errorf("server: no feature catalog for category %q", category)
	}
	apps := s.db.AppsByCategory(category)
	if len(apps) == 0 {
		return nil, fmt.Errorf("server: no applications in category %q", category)
	}
	m := &ranking.Matrix{Features: catalog}
	for _, app := range apps {
		row := make([]float64, len(catalog))
		complete := true
		for j, f := range catalog {
			fr, err := s.db.Feature(category, app.Place, f.Name)
			if err != nil {
				complete = false
				break
			}
			row[j] = fr.Value
		}
		if !complete {
			continue // place not fully sensed yet
		}
		m.Places = append(m.Places, app.Place)
		m.Values = append(m.Values, row)
	}
	if len(m.Places) == 0 {
		return nil, fmt.Errorf("server: no fully sensed places in category %q", category)
	}
	return m, nil
}

// rankMatrix is FeatureMatrix's bulk twin for the snapshot rebuild path:
// one FeaturesByCategory pass instead of places×features store lookups,
// which matters at 10k places. Row order and semantics are identical to
// FeatureMatrix — applications in ID order, places without every catalog
// feature skipped — so snapshots built either way are interchangeable.
func (s *Server) rankMatrix(category string) (*ranking.Matrix, error) {
	catalog, ok := s.catalog[category]
	if !ok {
		return nil, fmt.Errorf("server: no feature catalog for category %q", category)
	}
	apps := s.db.AppsByCategory(category)
	if len(apps) == 0 {
		return nil, fmt.Errorf("server: no applications in category %q", category)
	}
	colIdx := make(map[string]int, len(catalog))
	for j, f := range catalog {
		colIdx[f.Name] = j
	}
	type rowState struct {
		vals []float64
		have int
	}
	byPlace := make(map[string]*rowState, len(apps))
	for _, row := range s.db.FeaturesByCategory(category) {
		j, ok := colIdx[row.Feature]
		if !ok {
			continue // stale feature outside the current catalog
		}
		rs := byPlace[row.Place]
		if rs == nil {
			rs = &rowState{vals: make([]float64, len(catalog))}
			byPlace[row.Place] = rs
		}
		rs.vals[j] = row.Value
		rs.have++
	}
	m := &ranking.Matrix{Features: catalog}
	for _, app := range apps {
		rs := byPlace[app.Place]
		if rs == nil || rs.have != len(catalog) {
			continue // place not fully sensed yet
		}
		m.Places = append(m.Places, app.Place)
		m.Values = append(m.Values, rs.vals)
	}
	if len(m.Places) == 0 {
		return nil, fmt.Errorf("server: no fully sensed places in category %q", category)
	}
	return m, nil
}

// ExecutedInstants returns the app's recorded measurement instants, sorted
// (diagnostics; the chaos suite compares faulty vs fault-free coverage).
func (s *Server) ExecutedInstants(appID string) []int {
	st := s.states.get(appID)
	if st == nil {
		return nil
	}
	return st.online.ExecutedInstants()
}

// BudgetLedger returns the app's per-user budget accounting (diagnostics).
func (s *Server) BudgetLedger(appID string) map[string]schedule.UserLedger {
	st := s.states.get(appID)
	if st == nil {
		return nil
	}
	return st.online.Ledger()
}

// PlanSnapshot returns the current plan coverage for an app (diagnostics).
func (s *Server) PlanSnapshot(appID string) (*schedule.Plan, error) {
	st := s.states.get(appID)
	if st == nil {
		return nil, fmt.Errorf("server: no scheduling state for %s", appID)
	}
	return st.online.Plan(), nil
}
