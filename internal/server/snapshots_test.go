package server

import (
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sor/internal/ranking"
	"sor/internal/store"
	"sor/internal/wire"
	"sor/internal/world"
)

// reportWithReadings builds a report whose four coffee-shop sensors all
// read the same value, so the resulting feature means are predictable.
func reportWithReadings(taskID, appID, userID string, at time.Time, reading float64) *wire.DataUpload {
	ms := at.UnixMilli()
	series := make([]wire.SensorSeries, 0, 4)
	for _, sensor := range []string{"temperature", "light", "microphone", "wifi"} {
		series = append(series, wire.SensorSeries{
			Sensor: sensor,
			Samples: []wire.SensorSample{
				{AtUnixMilli: ms, WindowMilli: 5000, Readings: []float64{reading, reading, reading}},
			},
		})
	}
	return &wire.DataUpload{TaskID: taskID, AppID: appID, UserID: userID, Series: series}
}

// rankCoffee issues a default-profile rank request and returns the typed
// response (fatals on a refusal).
func rankCoffee(t *testing.T, s *Server) *wire.RankResponse {
	t.Helper()
	resp, err := s.Handler()(nil, &wire.RankRequest{UserID: "probe", Category: world.CategoryCoffee})
	if err != nil {
		t.Fatal(err)
	}
	ranked, ok := resp.(*wire.RankResponse)
	if !ok {
		t.Fatalf("rank refused: %+v", resp)
	}
	return ranked
}

// temperatureOf pulls the temperature column value for the response's
// single place.
func temperatureOf(t *testing.T, resp *wire.RankResponse) float64 {
	t.Helper()
	for j, f := range resp.Features {
		if f == "temperature" {
			return resp.Ranked[0].FeatureValues[j]
		}
	}
	t.Fatalf("no temperature feature in %v", resp.Features)
	return 0
}

// TestRankCoherentByDefault pins the RankRefresh == 0 contract: a rank
// issued after ingest observes that ingest, exactly like the legacy path
// that ran the processor on every query — and each observed change
// advances the epoch.
func TestRankCoherentByDefault(t *testing.T) {
	s, clock := newTestServer(t)
	if err := s.CreateApp(concApp(0)); err != nil {
		t.Fatal(err)
	}
	task := concJoin(t, s, 0, "coh-user")
	h := s.Handler()
	if _, err := h(nil, reportWithReadings(task, "conc-app-0", "coh-user", clock.Now(), 10)); err != nil {
		t.Fatal(err)
	}
	first := rankCoffee(t, s)
	if got := temperatureOf(t, first); got != 10 {
		t.Fatalf("temperature %v after first ingest, want 10", got)
	}
	if first.Epoch < 1 {
		t.Fatalf("epoch %d, want >= 1", first.Epoch)
	}

	// Re-rank without ingest: same snapshot, same epoch.
	if again := rankCoffee(t, s); again.Epoch != first.Epoch {
		t.Fatalf("epoch moved %d -> %d without ingest", first.Epoch, again.Epoch)
	}

	// New data must be visible on the very next rank (no clock advance).
	if _, err := h(nil, reportWithReadings(task, "conc-app-0", "coh-user", clock.Now().Add(10*time.Second), 50)); err != nil {
		t.Fatal(err)
	}
	second := rankCoffee(t, s)
	if got := temperatureOf(t, second); got != 30 { // mean of 3×10 and 3×50
		t.Fatalf("temperature %v after second ingest, want 30", got)
	}
	if second.Epoch <= first.Epoch {
		t.Fatalf("epoch %d after rebuild, want > %d", second.Epoch, first.Epoch)
	}
}

// TestRankStalenessBound is the cache-coherence regression test for
// RankRefresh > 0: ranks within the bound may serve the stale snapshot,
// but a rank past the refresh bound must reflect the new data.
func TestRankStalenessBound(t *testing.T) {
	clock := &virtualClock{now: t0}
	s, err := New(Config{
		DB:          store.New(),
		Now:         clock.Now,
		Catalog:     DefaultCatalog(),
		RankRefresh: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateApp(concApp(0)); err != nil {
		t.Fatal(err)
	}
	task := concJoin(t, s, 0, "stale-user")
	h := s.Handler()
	if _, err := h(nil, reportWithReadings(task, "conc-app-0", "stale-user", clock.Now(), 10)); err != nil {
		t.Fatal(err)
	}
	first := rankCoffee(t, s)
	if got := temperatureOf(t, first); got != 10 {
		t.Fatalf("temperature %v, want 10", got)
	}

	// Ingest new data; within the bound the stale snapshot keeps serving.
	if _, err := h(nil, reportWithReadings(task, "conc-app-0", "stale-user", clock.Now().Add(10*time.Second), 50)); err != nil {
		t.Fatal(err)
	}
	within := rankCoffee(t, s)
	if got := temperatureOf(t, within); got != 10 {
		t.Fatalf("temperature %v inside the staleness bound, want stale 10", got)
	}
	if within.Epoch != first.Epoch {
		t.Fatalf("epoch moved %d -> %d inside the staleness bound", first.Epoch, within.Epoch)
	}

	// Past the bound the next rank must rebuild and see the ingest.
	clock.Set(clock.Now().Add(2 * time.Minute))
	after := rankCoffee(t, s)
	if got := temperatureOf(t, after); got != 30 {
		t.Fatalf("temperature %v past the staleness bound, want 30", got)
	}
	if after.Epoch <= first.Epoch {
		t.Fatalf("epoch %d past the bound, want > %d", after.Epoch, first.Epoch)
	}

	// And with no further ingest, the refreshed snapshot is not rebuilt
	// again even long after the bound.
	clock.Set(clock.Now().Add(time.Hour))
	if idle := rankCoffee(t, s); idle.Epoch != after.Epoch {
		t.Fatalf("epoch moved %d -> %d with no ingest", after.Epoch, idle.Epoch)
	}
}

// TestProfileCacheSingleFlight checks that concurrent misses on one
// profile share one fill, hits don't refill, epoch advances clear the
// cache, and fills for superseded epochs are not cached.
func TestProfileCacheSingleFlight(t *testing.T) {
	var c profileCache
	c.init(4)
	var fills atomic.Int64
	res := &ranking.Result{}
	fill := func([]int) (*ranking.Result, error) {
		fills.Add(1)
		return res, nil
	}
	// The concurrent phase needs the first fill to stay in flight until
	// every other goroutine has reached getOrCompute — a condition, not a
	// timed sleep: the fill parks on release, and the main goroutine only
	// releases it after all callers have announced themselves.
	var arrived atomic.Int64
	release := make(chan struct{})
	concFill := func([]int) (*ranking.Result, error) {
		fills.Add(1)
		<-release
		return res, nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			arrived.Add(1)
			got, err := c.getOrCompute(1, "profile-a", concFill)
			if err != nil || got != res {
				t.Errorf("got (%v, %v), want (%p, nil)", got, err, res)
			}
		}()
	}
	for arrived.Load() < 8 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if n := fills.Load(); n != 1 {
		t.Fatalf("%d fills for one profile, want 1 (single-flight)", n)
	}
	if _, err := c.getOrCompute(1, "profile-a", fill); err != nil {
		t.Fatal(err)
	}
	if n := fills.Load(); n != 1 {
		t.Fatalf("cache hit refilled (fills = %d)", n)
	}
	// Epoch advance clears: same key misses again.
	if _, err := c.getOrCompute(2, "profile-a", fill); err != nil {
		t.Fatal(err)
	}
	if n := fills.Load(); n != 2 {
		t.Fatalf("epoch advance did not clear the cache (fills = %d)", n)
	}
	// A stale-epoch fill computes but must not disturb the current epoch.
	if _, err := c.getOrCompute(1, "profile-b", fill); err != nil {
		t.Fatal(err)
	}
	if _, err := c.getOrCompute(2, "profile-a", fill); err != nil {
		t.Fatal(err)
	}
	if n := fills.Load(); n != 3 {
		t.Fatalf("stale-epoch fill disturbed the cache (fills = %d)", n)
	}
}

// TestProfileCacheEviction checks the LRU bound holds and evicts the least
// recently used profile.
func TestProfileCacheEviction(t *testing.T) {
	var c profileCache
	c.init(2)
	fills := map[string]int{}
	get := func(key string) {
		t.Helper()
		if _, err := c.getOrCompute(1, key, func([]int) (*ranking.Result, error) {
			fills[key]++
			return &ranking.Result{}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	get("a")
	get("b")
	get("a") // refresh a; b is now LRU
	get("c") // evicts b
	get("a")
	get("b")
	if fills["a"] != 1 {
		t.Fatalf("a filled %d times, want 1 (never evicted)", fills["a"])
	}
	if fills["b"] != 2 {
		t.Fatalf("b filled %d times, want 2 (evicted once)", fills["b"])
	}
}

// decodeProfileKey inverts rankSnapshot.profileKey; used by the fuzz test
// to prove injectivity by round-trip. Returns the preferences and the
// trailing top-k bound.
func decodeProfileKey(t *testing.T, features []string, key string) (map[string]ranking.Preference, int) {
	t.Helper()
	prefs := map[string]ranking.Preference{}
	b := []byte(key)
	for _, name := range features {
		if len(b) < 1 {
			t.Fatalf("key truncated at feature %q", name)
		}
		if b[0] == 0 {
			b = b[1:]
			continue
		}
		if len(b) < 25 {
			t.Fatalf("key truncated inside feature %q", name)
		}
		prefs[name] = ranking.Preference{
			Kind:   ranking.PrefKind(binary.BigEndian.Uint64(b[1:9])),
			Value:  math.Float64frombits(binary.BigEndian.Uint64(b[9:17])),
			Weight: int(binary.BigEndian.Uint64(b[17:25])),
		}
		b = b[25:]
	}
	if len(b) != 8 {
		t.Fatalf("%d trailing key bytes, want the 8-byte top-k suffix", len(b))
	}
	return prefs, int(binary.BigEndian.Uint64(b))
}

// FuzzProfileKey proves the canonical profile key is injective: the key
// decodes back to exactly the preferences that produced it (restricted to
// catalog features), so two distinct canonical profiles can never share a
// key. Seeds cover absent prefs, every kind, negative/NaN values, and
// out-of-range kinds/weights, plus the top-k suffix.
func FuzzProfileKey(f *testing.F) {
	features := []string{"temperature", "brightness", "noise", "wifi"}
	f.Add([]byte{})
	f.Add([]byte{1, 1, 64, 82, 64, 0, 0, 0, 0, 0, 3})
	f.Add([]byte{1, 4, 0, 0, 0, 0, 0, 0, 0, 0, 200, 0, 2, 127, 248, 0, 0, 0, 0, 0, 1, 5, 25})
	f.Fuzz(func(t *testing.T, data []byte) {
		snap := &rankSnapshot{features: features}
		prefs := map[string]ranking.Preference{}
		for _, name := range features {
			if len(data) == 0 || data[0] == 0 {
				if len(data) > 0 {
					data = data[1:]
				}
				continue // absent preference
			}
			if len(data) < 11 {
				break
			}
			prefs[name] = ranking.Preference{
				Kind:   ranking.PrefKind(int(int8(data[1]))), // incl. invalid/negative kinds
				Value:  math.Float64frombits(binary.BigEndian.Uint64(data[2:10])),
				Weight: int(int8(data[10])), // incl. invalid/negative weights
			}
			data = data[11:]
		}
		topK := 0
		if len(data) > 0 {
			topK = int(data[0]) // incl. 0 (unbounded)
		}
		key := snap.profileKey(prefs, topK)
		decoded, decodedK := decodeProfileKey(t, features, key)
		if decodedK != topK {
			t.Fatalf("decoded top-k %d, want %d", decodedK, topK)
		}
		if len(decoded) != len(prefs) {
			t.Fatalf("decoded %d prefs, want %d", len(decoded), len(prefs))
		}
		for name, want := range prefs {
			got, ok := decoded[name]
			if !ok {
				t.Fatalf("feature %q lost in key", name)
			}
			if got.Kind != want.Kind || got.Weight != want.Weight ||
				math.Float64bits(got.Value) != math.Float64bits(want.Value) {
				t.Fatalf("feature %q: decoded %+v, want %+v", name, got, want)
			}
		}
		// A pref on a non-catalog feature must not change the key.
		prefs["off-catalog"] = ranking.Preference{Kind: ranking.PrefValue, Value: 1, Weight: 1}
		if snap.profileKey(prefs, topK) != key {
			t.Fatal("off-catalog preference changed the key")
		}
	})
}

// TestProfileKeyDistinguishes spot-checks key separation on the axes the
// cache must never conflate.
func TestProfileKeyDistinguishes(t *testing.T) {
	snap := &rankSnapshot{features: []string{"temperature", "noise"}}
	base := map[string]ranking.Preference{
		"temperature": {Kind: ranking.PrefValue, Value: 73, Weight: 3},
	}
	variants := []map[string]ranking.Preference{
		{},
		{"temperature": {Kind: ranking.PrefMax, Value: 73, Weight: 3}},
		{"temperature": {Kind: ranking.PrefValue, Value: 72, Weight: 3}},
		{"temperature": {Kind: ranking.PrefValue, Value: 73, Weight: 4}},
		{"noise": {Kind: ranking.PrefValue, Value: 73, Weight: 3}},
		{"temperature": {Kind: ranking.PrefKind(256 + int(ranking.PrefValue)), Value: 73, Weight: 3}},
	}
	baseKey := snap.profileKey(base, 0)
	for i, v := range variants {
		if snap.profileKey(v, 0) == baseKey {
			t.Fatalf("variant %d collides with base profile", i)
		}
	}
	// A bounded request must not share a key with the unbounded one: a
	// top-k result only determines the leading ranks.
	if snap.profileKey(base, 5) == baseKey {
		t.Fatal("top-k bound did not change the key")
	}
	// Same canonical profile (plus an ignored unknown feature) → same key.
	same := map[string]ranking.Preference{
		"temperature": base["temperature"],
		"unknown":     {Kind: ranking.PrefMin, Weight: 5},
	}
	if snap.profileKey(same, 0) != baseKey {
		t.Fatal("equivalent canonical profiles produced different keys")
	}
}

var _ = fmt.Sprintf // keep fmt imported if assertions above change

// TestSnapshotRearmOnForeignIngest: UploadSeq is store-global, so ingest
// into one category marks every category's snapshot stale. A category
// whose own features and membership did not move must re-arm — keep its
// epoch (and warm profile cache) without reassembling the matrix — while
// a write to its own features must still advance the epoch.
func TestSnapshotRearmOnForeignIngest(t *testing.T) {
	clock := &virtualClock{now: t0}
	db := store.New()
	s, err := New(Config{
		DB: db, Now: clock.Now, Catalog: DefaultCatalog(),
		RankRefresh: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	trailFeatures := []string{"temperature", "humidity", "roughness", "curvature", "altitude change"}
	for i := 0; i < 3; i++ {
		place := fmt.Sprintf("trail-%d", i)
		if err := s.CreateApp(store.Application{
			ID: fmt.Sprintf("trail-app-%d", i), Creator: "c", Category: world.CategoryTrail,
			Place: place, Lat: 43, Lon: -76, RadiusM: 100, Script: "return 1", PeriodSec: 3600,
		}); err != nil {
			t.Fatal(err)
		}
		for j, f := range trailFeatures {
			if err := db.UpsertFeature(store.FeatureRow{
				Category: world.CategoryTrail, Place: place, Feature: f,
				Value: float64(10*i + j), Samples: 1, Updated: clock.Now(),
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.CreateApp(concApp(0)); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	rank := func() *wire.RankResponse {
		t.Helper()
		resp, err := h(nil, &wire.RankRequest{
			UserID: "rearm-user", Category: world.CategoryTrail,
			Prefs: []wire.PrefEntry{{Feature: "temperature", Kind: 2, Weight: 3}},
		})
		if err != nil {
			t.Fatal(err)
		}
		r, ok := resp.(*wire.RankResponse)
		if !ok {
			t.Fatalf("rank refused: %+v", resp)
		}
		return r
	}
	first := rank()

	// Foreign ingest: a coffee report moves the global upload sequence but
	// touches nothing in the trail category.
	task := concJoin(t, s, 0, "rearm-user")
	up := reportWithReadings(task, concApp(0).ID, "rearm-user", clock.Now(), 42)
	if _, err := h(nil, up); err != nil {
		t.Fatal(err)
	}
	clock.Set(clock.Now().Add(2 * time.Minute)) // past the refresh bound
	second := rank()
	if second.Epoch != first.Epoch {
		t.Fatalf("foreign ingest advanced the trail epoch %d → %d; want a re-arm", first.Epoch, second.Epoch)
	}
	for i := range first.Ranked {
		if second.Ranked[i].Place != first.Ranked[i].Place {
			t.Fatalf("re-armed snapshot changed the ranking at %d", i)
		}
	}

	// A write to the trail category's own features must advance the epoch.
	if err := db.UpsertFeature(store.FeatureRow{
		Category: world.CategoryTrail, Place: "trail-1", Feature: "temperature",
		Value: 99, Samples: 2, Updated: clock.Now(),
	}); err != nil {
		t.Fatal(err)
	}
	clock.Set(clock.Now().Add(2 * time.Minute))
	third := rank()
	if third.Epoch <= second.Epoch {
		t.Fatalf("trail feature write did not advance the epoch (%d → %d)", second.Epoch, third.Epoch)
	}
}
