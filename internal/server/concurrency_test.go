package server

// Race-enabled concurrency suite for the sharded hot path. These tests are
// only meaningful under `go test -race`: they pin down the invariants
// DESIGN.md's "Concurrency model" section claims — per-app shards never
// cross-contaminate, the data processor may drain while uploaders append,
// rank queries may read while ingest writes, and scheduler churn
// (join/upload/leave) is safe when interleaved arbitrarily.

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sor/internal/schedule"
	"sor/internal/sim"
	"sor/internal/store"
	"sor/internal/wire"
	"sor/internal/world"
)

// concApp builds the i-th coffee-shop app at a distinct location so
// geofence checks pass only for its own joiners.
func concApp(i int) store.Application {
	return store.Application{
		ID:       fmt.Sprintf("conc-app-%d", i),
		Creator:  "conc",
		Category: world.CategoryCoffee,
		Place:    fmt.Sprintf("conc-place-%d", i),
		Lat:      43.0 + float64(i), Lon: -76.0,
		RadiusM:   500,
		Script:    testScript,
		PeriodSec: 10800,
	}
}

// concJoin joins a user to concApp(app) and returns the task ID.
func concJoin(t *testing.T, s *Server, app int, userID string) string {
	t.Helper()
	resp, err := s.Handler()(nil, &wire.Participate{
		UserID: userID, Token: "tok-" + userID,
		AppID:  fmt.Sprintf("conc-app-%d", app),
		Loc:    wire.Location{Lat: 43.0 + float64(app), Lon: -76.0},
		Budget: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	ack := resp.(*wire.Ack)
	if !ack.OK {
		t.Fatalf("join %s refused: %s", userID, ack.Message)
	}
	inner, err := wire.Decode(ack.Payload)
	if err != nil {
		t.Fatal(err)
	}
	return inner.(*wire.Schedule).TaskID
}

// concReport builds one small report carrying every coffee-shop sensor so
// repeated ingest eventually makes the place fully sensed (rankable).
func concReport(taskID, appID, userID string, at time.Time) *wire.DataUpload {
	ms := at.UnixMilli()
	series := make([]wire.SensorSeries, 0, 4)
	for _, sensor := range []string{"temperature", "light", "microphone", "wifi"} {
		series = append(series, wire.SensorSeries{
			Sensor: sensor,
			Samples: []wire.SensorSample{
				{AtUnixMilli: ms, WindowMilli: 5000, Readings: []float64{1, 2, 3}},
			},
		})
	}
	return &wire.DataUpload{TaskID: taskID, AppID: appID, UserID: userID, Series: series}
}

// TestConcurrentIngestAcrossApps drives parallel single-report uploaders
// over several apps while the data processor drains concurrently, then
// checks nothing was lost: every accepted report is either still pending
// or already processed.
func TestConcurrentIngestAcrossApps(t *testing.T) {
	const apps, usersPerApp, perUser = 4, 2, 40
	s, clock := newTestServer(t)
	for a := 0; a < apps; a++ {
		if err := s.CreateApp(concApp(a)); err != nil {
			t.Fatal(err)
		}
	}
	type uploader struct {
		app            int
		userID, taskID string
	}
	var ups []uploader
	for a := 0; a < apps; a++ {
		for u := 0; u < usersPerApp; u++ {
			userID := fmt.Sprintf("conc-u%d-%d", a, u)
			ups = append(ups, uploader{app: a, userID: userID, taskID: concJoin(t, s, a, userID)})
		}
	}
	h := s.Handler()
	stop := make(chan struct{})
	var drainerDone sync.WaitGroup
	drainerDone.Add(1)
	go func() { // the Data Processor racing the uploaders
		defer drainerDone.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.Processor().Process()
			}
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan error, len(ups))
	for _, up := range ups {
		wg.Add(1)
		go func(up uploader) {
			defer wg.Done()
			appID := fmt.Sprintf("conc-app-%d", up.app)
			for i := 0; i < perUser; i++ {
				at := clock.Now().Add(time.Duration(i) * 10 * time.Second)
				resp, err := h(nil, concReport(up.taskID, appID, up.userID, at))
				if err != nil {
					errs <- err
					return
				}
				if ack := resp.(*wire.Ack); !ack.OK {
					errs <- fmt.Errorf("upload refused: %s", ack.Message)
					return
				}
			}
		}(up)
	}
	wg.Wait()
	close(stop)
	drainerDone.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	s.Processor().Process() // fold in any stragglers
	processed, decodeErrs := s.Processor().Stats()
	if decodeErrs != 0 {
		t.Fatalf("%d decode errors under concurrent ingest", decodeErrs)
	}
	want := apps * usersPerApp * perUser
	if got := processed + s.DB().PendingUploads(); got != want {
		t.Fatalf("reports lost: processed+pending = %d, want %d", got, want)
	}
}

// TestConcurrentBatchIngestMixedValidity sends concurrent batches that mix
// valid reports with forged ones (a valid task claimed by the wrong user)
// and checks the server accepts exactly the valid subset — the
// participation-check cache must not let one worker's forgery poison
// another worker's verification.
func TestConcurrentBatchIngestMixedValidity(t *testing.T) {
	const workers, batches, batchSize = 8, 20, 10
	s, clock := newTestServer(t)
	for a := 0; a < 2; a++ {
		if err := s.CreateApp(concApp(a)); err != nil {
			t.Fatal(err)
		}
	}
	taskA := concJoin(t, s, 0, "batch-alice")
	taskB := concJoin(t, s, 1, "batch-bob")
	h := s.Handler()
	var wg sync.WaitGroup
	var accepted atomic.Int64
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; n < batches; n++ {
				batch := &wire.DataUploadBatch{}
				at := clock.Now().Add(time.Duration(w*batches+n) * 10 * time.Second)
				for i := 0; i < batchSize; i++ {
					up := concReport(taskA, "conc-app-0", "batch-alice", at)
					switch i % 3 {
					case 1: // valid report for the other app's task
						up = concReport(taskB, "conc-app-1", "batch-bob", at)
					case 2: // forged: bob claiming alice's task
						up = concReport(taskA, "conc-app-0", "batch-bob", at)
					}
					batch.Uploads = append(batch.Uploads, *up)
				}
				resp, err := h(nil, batch)
				if err != nil {
					errs <- err
					return
				}
				ack := resp.(*wire.Ack)
				if !ack.OK || ack.Code != 207 {
					errs <- fmt.Errorf("mixed batch: got code %d (%s), want 207", ack.Code, ack.Message)
					return
				}
				var got, total int
				if _, err := fmt.Sscanf(ack.Message, "stored %d/%d", &got, &total); err != nil {
					errs <- fmt.Errorf("unparseable batch ack %q", ack.Message)
					return
				}
				accepted.Add(int64(got))
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// 7 of every 10 reports are valid (i%3 != 2).
	wantAccepted := int64(workers * batches * 7)
	if accepted.Load() != wantAccepted {
		t.Fatalf("accepted %d reports, want %d", accepted.Load(), wantAccepted)
	}
	if pending := s.DB().PendingUploads(); int64(pending) != wantAccepted {
		t.Fatalf("%d uploads pending, want %d", pending, wantAccepted)
	}
}

// TestRankDuringIngest runs rank queries (which drain and recompute
// features) concurrently with single and batched uploaders. The readers
// must never observe torn state, and once ingest settles the category must
// rank with every joined place present.
func TestRankDuringIngest(t *testing.T) {
	const apps = 3
	s, clock := newTestServer(t)
	for a := 0; a < apps; a++ {
		if err := s.CreateApp(concApp(a)); err != nil {
			t.Fatal(err)
		}
	}
	tasks := make([]string, apps)
	for a := 0; a < apps; a++ {
		tasks[a] = concJoin(t, s, a, fmt.Sprintf("rank-u%d", a))
	}
	h := s.Handler()
	var wg sync.WaitGroup
	errs := make(chan error, apps+2)
	for a := 0; a < apps; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			appID := fmt.Sprintf("conc-app-%d", a)
			userID := fmt.Sprintf("rank-u%d", a)
			for i := 0; i < 30; i++ {
				at := clock.Now().Add(time.Duration(i) * 10 * time.Second)
				var msg wire.Message = concReport(tasks[a], appID, userID, at)
				if i%2 == 1 { // alternate single and batched ingest
					msg = &wire.DataUploadBatch{Uploads: []wire.DataUpload{
						*concReport(tasks[a], appID, userID, at),
						*concReport(tasks[a], appID, userID, at.Add(5*time.Second)),
					}}
				}
				resp, err := h(nil, msg)
				if err != nil {
					errs <- err
					return
				}
				if ack := resp.(*wire.Ack); !ack.OK {
					errs <- fmt.Errorf("ingest refused: %s", ack.Message)
					return
				}
			}
		}(a)
	}
	for r := 0; r < 2; r++ { // concurrent rankers
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				resp, err := h(nil, &wire.RankRequest{
					UserID: fmt.Sprintf("ranker-%d", r), Category: world.CategoryCoffee,
				})
				if err != nil {
					errs <- err
					return
				}
				// Early queries may legitimately refuse (no fully sensed
				// place yet); what matters is a well-formed response.
				switch m := resp.(type) {
				case *wire.RankResponse, *wire.Ack:
					_ = m
				default:
					errs <- fmt.Errorf("rank returned %s", resp.Type())
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// After the dust settles every place has all four features.
	resp, err := h(nil, &wire.RankRequest{UserID: "final", Category: world.CategoryCoffee})
	if err != nil {
		t.Fatal(err)
	}
	ranked, ok := resp.(*wire.RankResponse)
	if !ok {
		t.Fatalf("final rank refused: %+v", resp)
	}
	if len(ranked.Ranked) != apps {
		t.Fatalf("ranked %d places, want %d", len(ranked.Ranked), apps)
	}
}

// TestSnapshotEpochsUnderConcurrentIngest hammers the rank-serving
// snapshot layer: batched ingest keeps bumping dirty counters and
// triggering rebuilds while many rankers query. Each ranker asserts it
// never observes a torn matrix read — every response is internally
// consistent (row widths match the features header, places are distinct,
// values are finite) — and that the epoch tag is monotone non-decreasing
// from its point of view.
func TestSnapshotEpochsUnderConcurrentIngest(t *testing.T) {
	const apps, rankers, roundsPerRanker, batchesPerWriter = 3, 4, 25, 40
	s, clock := newTestServer(t)
	for a := 0; a < apps; a++ {
		if err := s.CreateApp(concApp(a)); err != nil {
			t.Fatal(err)
		}
	}
	tasks := make([]string, apps)
	for a := 0; a < apps; a++ {
		tasks[a] = concJoin(t, s, a, fmt.Sprintf("epoch-u%d", a))
	}
	h := s.Handler()
	// Seed every place so rankers get full responses from the start.
	for a := 0; a < apps; a++ {
		if _, err := h(nil, concReport(tasks[a], fmt.Sprintf("conc-app-%d", a),
			fmt.Sprintf("epoch-u%d", a), clock.Now())); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, apps+rankers)
	for a := 0; a < apps; a++ { // batched ingest writers
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			appID := fmt.Sprintf("conc-app-%d", a)
			userID := fmt.Sprintf("epoch-u%d", a)
			for i := 0; i < batchesPerWriter; i++ {
				at := clock.Now().Add(time.Duration(i) * 10 * time.Second)
				batch := &wire.DataUploadBatch{Uploads: []wire.DataUpload{
					*concReport(tasks[a], appID, userID, at),
					*concReport(tasks[a], appID, userID, at.Add(5*time.Second)),
				}}
				if _, err := h(nil, batch); err != nil {
					errs <- err
					return
				}
			}
		}(a)
	}
	for r := 0; r < rankers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			lastEpoch := int64(-1)
			for i := 0; i < roundsPerRanker; i++ {
				// Alternate bounded and unbounded queries so incremental
				// (column-merged) epochs serve the top-k path under fire.
				topK := 0
				if i%3 == 1 {
					topK = 1 + r%apps
				}
				resp, err := h(nil, &wire.RankRequest{
					UserID: fmt.Sprintf("epoch-ranker-%d", r), Category: world.CategoryCoffee,
					TopK: topK,
				})
				if err != nil {
					errs <- err
					return
				}
				ranked, ok := resp.(*wire.RankResponse)
				if !ok {
					errs <- fmt.Errorf("rank refused mid-ingest: %+v", resp)
					return
				}
				if ranked.Epoch < lastEpoch {
					errs <- fmt.Errorf("epoch regressed %d -> %d", lastEpoch, ranked.Epoch)
					return
				}
				lastEpoch = ranked.Epoch
				if topK > 0 && len(ranked.Ranked) > topK {
					errs <- fmt.Errorf("TopK=%d returned %d places", topK, len(ranked.Ranked))
					return
				}
				seen := make(map[string]bool, len(ranked.Ranked))
				for _, row := range ranked.Ranked {
					if len(row.FeatureValues) != len(ranked.Features) {
						errs <- fmt.Errorf("torn row: %d values for %d features",
							len(row.FeatureValues), len(ranked.Features))
						return
					}
					for _, v := range row.FeatureValues {
						// A freed or torn column arena would surface as
						// garbage here; every served value must be finite.
						if math.IsNaN(v) || math.IsInf(v, 0) {
							errs <- fmt.Errorf("non-finite feature value %v for %s", v, row.Place)
							return
						}
					}
					if seen[row.Place] {
						errs <- fmt.Errorf("place %s ranked twice", row.Place)
						return
					}
					seen[row.Place] = true
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Coherence epilogue: with ingest quiesced, one more rank folds
	// everything and serves all places.
	s.Processor().Process()
	resp, err := h(nil, &wire.RankRequest{UserID: "epoch-final", Category: world.CategoryCoffee})
	if err != nil {
		t.Fatal(err)
	}
	ranked, ok := resp.(*wire.RankResponse)
	if !ok {
		t.Fatalf("final rank refused: %+v", resp)
	}
	if len(ranked.Ranked) != apps {
		t.Fatalf("ranked %d places, want %d", len(ranked.Ranked), apps)
	}
	// Quiesced coherence for the bounded path: the top-1 prefix of the
	// final (possibly column-merged) snapshot must agree with the full
	// ranking it aliases.
	bounded, err := h(nil, &wire.RankRequest{UserID: "epoch-final", Category: world.CategoryCoffee, TopK: 1})
	if err != nil {
		t.Fatal(err)
	}
	b := bounded.(*wire.RankResponse)
	if len(b.Ranked) != 1 || b.Ranked[0].Place != ranked.Ranked[0].Place {
		t.Fatalf("bounded top-1 %+v disagrees with full leader %s", b.Ranked, ranked.Ranked[0].Place)
	}
}

// TestSchedulerChurnUnderVirtualClock interleaves bursty join/upload/leave
// traffic for one app while a driver advances the virtual clock — the
// field-test pattern of clusters of users arriving together. Every replan,
// budget decrement, and schedule redistribution runs concurrently; the
// test asserts all participants end the period finished with data stored.
func TestSchedulerChurnUnderVirtualClock(t *testing.T) {
	s, clock := newTestServer(t)
	if err := s.CreateApp(concApp(0)); err != nil {
		t.Fatal(err)
	}
	parts, err := sim.DrawBurstyParticipants(rand.New(rand.NewSource(42)), sim.BurstConfig{
		Users: 24, Bursts: 4, Budget: 6,
	}, t0)
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	stop := make(chan struct{})
	var driver sync.WaitGroup
	driver.Add(1)
	go func() { // clock driver: 30 virtual seconds per tick
		defer driver.Done()
		for {
			select {
			case <-stop:
				return
			default:
				clock.Set(clock.Now().Add(30 * time.Second))
				time.Sleep(time.Millisecond)
			}
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan error, len(parts))
	for _, p := range parts {
		wg.Add(1)
		go func(p schedule.Participant) {
			defer wg.Done()
			errs <- func() error {
				for clock.Now().Before(p.Arrive) { // wait out the virtual clock
					time.Sleep(time.Millisecond)
				}
				resp, err := h(nil, &wire.Participate{
					UserID: p.UserID, Token: "tok-" + p.UserID,
					AppID:  "conc-app-0",
					Loc:    wire.Location{Lat: 43.0, Lon: -76.0},
					Budget: p.Budget,
				})
				if err != nil {
					return err
				}
				ack := resp.(*wire.Ack)
				if !ack.OK {
					return fmt.Errorf("churn join %s refused: %s", p.UserID, ack.Message)
				}
				inner, err := wire.Decode(ack.Payload)
				if err != nil {
					return err
				}
				taskID := inner.(*wire.Schedule).TaskID
				for i := 0; i < 3; i++ {
					at := clock.Now()
					resp, err := h(nil, concReport(taskID, "conc-app-0", p.UserID, at))
					if err != nil {
						return err
					}
					if ack := resp.(*wire.Ack); !ack.OK {
						return fmt.Errorf("churn upload %s refused: %s", p.UserID, ack.Message)
					}
				}
				resp, err = h(nil, &wire.Leave{UserID: p.UserID, AppID: "conc-app-0"})
				if err != nil {
					return err
				}
				if ack := resp.(*wire.Ack); !ack.OK {
					return fmt.Errorf("churn leave %s refused: %s", p.UserID, ack.Message)
				}
				return nil
			}()
		}(p)
	}
	wg.Wait()
	close(stop)
	driver.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	finished := 0
	for _, row := range s.DB().ParticipationsByApp("conc-app-0") {
		if row.Status == store.TaskFinished {
			finished++
		}
	}
	if finished != len(parts) {
		t.Fatalf("%d participants finished, want %d", finished, len(parts))
	}
	if got := s.DB().PendingUploads(); got != 3*len(parts) {
		t.Fatalf("%d uploads pending, want %d", got, 3*len(parts))
	}
}
