package server

import (
	"strings"
	"testing"
	"time"

	"sor/internal/wire"
)

// uploadFor builds a small two-instant report for a scheduled task.
func uploadFor(sched *wire.Schedule, reportID string) *wire.DataUpload {
	return &wire.DataUpload{
		TaskID: sched.TaskID, AppID: sched.AppID, UserID: sched.UserID,
		ReportID: reportID,
		Series: []wire.SensorSeries{{
			Sensor: "temperature",
			Samples: []wire.SensorSample{
				{AtUnixMilli: t0.UnixMilli(), WindowMilli: 5000, Readings: []float64{72.5}},
				{AtUnixMilli: t0.Add(time.Minute).UnixMilli(), WindowMilli: 5000, Readings: []float64{73.5}},
			},
		}},
	}
}

// TestDuplicateReplaySingleUploadPath pins exactly-once ingest on the
// single-report path: a retransmission whose first ack was lost is acked
// OK again but stored once and budget-charged once.
func TestDuplicateReplaySingleUploadPath(t *testing.T) {
	s, _ := newTestServer(t)
	if err := s.CreateApp(starbucksApp()); err != nil {
		t.Fatal(err)
	}
	sched := participate(t, s, "alice", "tok-a", 6)
	up := uploadFor(sched, "tok-a/"+sched.TaskID+"/1")

	resp, err := s.Handler()(nil, up)
	if err != nil {
		t.Fatal(err)
	}
	if ack := resp.(*wire.Ack); !ack.OK || ack.Code != 200 {
		t.Fatalf("first upload ack = %+v", ack)
	}
	executed := len(s.ExecutedInstants("app-sb"))
	consumed := s.BudgetLedger("app-sb")["alice"].Consumed
	if executed != 2 || consumed != 2 {
		t.Fatalf("first upload: executed=%d consumed=%d, want 2/2", executed, consumed)
	}

	// Replay: the phone never saw the ack and resends the same ReportID.
	for i := 0; i < 3; i++ {
		resp, err = s.Handler()(nil, up)
		if err != nil {
			t.Fatal(err)
		}
		ack := resp.(*wire.Ack)
		if !ack.OK || ack.Code != 200 {
			t.Fatalf("replay %d must be acked OK so the phone stops resending: %+v", i, ack)
		}
		if !strings.Contains(ack.Message, "duplicate") {
			t.Fatalf("replay %d ack message = %q", i, ack.Message)
		}
	}
	if got := s.DB().PendingUploads(); got != 1 {
		t.Fatalf("pending uploads = %d, want 1 (replays must not re-store)", got)
	}
	if got := len(s.ExecutedInstants("app-sb")); got != executed {
		t.Fatalf("executed instants grew to %d on replay", got)
	}
	if got := s.BudgetLedger("app-sb")["alice"].Consumed; got != consumed {
		t.Fatalf("budget consumed grew to %d on replay", got)
	}
}

// TestDuplicateReplayBatchPath pins exactly-once ingest on the coalesced
// path: a replayed batch (and duplicates inside one batch) ack fully
// accepted yet store and charge nothing new.
func TestDuplicateReplayBatchPath(t *testing.T) {
	s, _ := newTestServer(t)
	if err := s.CreateApp(starbucksApp()); err != nil {
		t.Fatal(err)
	}
	sched := participate(t, s, "alice", "tok-a", 6)
	r1 := uploadFor(sched, "tok-a/"+sched.TaskID+"/1")
	r2 := uploadFor(sched, "tok-a/"+sched.TaskID+"/2")
	batch := &wire.DataUploadBatch{Uploads: []wire.DataUpload{*r1, *r2}}

	resp, err := s.Handler()(nil, batch)
	if err != nil {
		t.Fatal(err)
	}
	if ack := resp.(*wire.Ack); !ack.OK || ack.Code != 200 {
		t.Fatalf("first batch ack = %+v", ack)
	}
	if got := s.DB().PendingUploads(); got != 2 {
		t.Fatalf("pending = %d, want 2", got)
	}
	consumed := s.BudgetLedger("app-sb")["alice"].Consumed

	// Whole-batch replay (the phone's batch ack was lost).
	resp, err = s.Handler()(nil, batch)
	if err != nil {
		t.Fatal(err)
	}
	// All duplicates still count as accepted: a 200 tells the outbox to
	// drop them; anything less would make it resend forever.
	if ack := resp.(*wire.Ack); !ack.OK || ack.Code != 200 {
		t.Fatalf("replayed batch ack = %+v, want full acceptance", ack)
	}
	if got := s.DB().PendingUploads(); got != 2 {
		t.Fatalf("pending = %d after replay, want 2", got)
	}
	if got := s.BudgetLedger("app-sb")["alice"].Consumed; got != consumed {
		t.Fatalf("budget consumed grew to %d on batch replay", got)
	}

	// A batch mixing one fresh and one replayed report is fully accepted
	// and stores only the fresh one.
	r3 := uploadFor(sched, "tok-a/"+sched.TaskID+"/3")
	mixed := &wire.DataUploadBatch{Uploads: []wire.DataUpload{*r2, *r3}}
	resp, err = s.Handler()(nil, mixed)
	if err != nil {
		t.Fatal(err)
	}
	if ack := resp.(*wire.Ack); !ack.OK || ack.Code != 200 {
		t.Fatalf("mixed batch ack = %+v", ack)
	}
	if got := s.DB().PendingUploads(); got != 3 {
		t.Fatalf("pending = %d, want 3", got)
	}
}

// TestDuplicateReplayAcrossPaths pins that the dedup window is shared by
// both ingest paths: a report stored via the single path replayed inside a
// batch (and vice versa) is not stored again.
func TestDuplicateReplayAcrossPaths(t *testing.T) {
	s, _ := newTestServer(t)
	if err := s.CreateApp(starbucksApp()); err != nil {
		t.Fatal(err)
	}
	sched := participate(t, s, "alice", "tok-a", 6)
	r1 := uploadFor(sched, "tok-a/"+sched.TaskID+"/1")
	if _, err := s.Handler()(nil, r1); err != nil {
		t.Fatal(err)
	}
	resp, err := s.Handler()(nil, &wire.DataUploadBatch{Uploads: []wire.DataUpload{*r1}})
	if err != nil {
		t.Fatal(err)
	}
	if ack := resp.(*wire.Ack); !ack.OK || ack.Code != 200 {
		t.Fatalf("cross-path replay ack = %+v", ack)
	}
	if got := s.DB().PendingUploads(); got != 1 {
		t.Fatalf("pending = %d, want 1", got)
	}

	r2 := uploadFor(sched, "tok-a/"+sched.TaskID+"/2")
	if _, err := s.Handler()(nil, &wire.DataUploadBatch{Uploads: []wire.DataUpload{*r2}}); err != nil {
		t.Fatal(err)
	}
	resp, err = s.Handler()(nil, r2)
	if err != nil {
		t.Fatal(err)
	}
	if ack := resp.(*wire.Ack); !ack.OK || !strings.Contains(ack.Message, "duplicate") {
		t.Fatalf("batch-then-single replay ack = %+v", ack)
	}
	if got := s.DB().PendingUploads(); got != 2 {
		t.Fatalf("pending = %d, want 2", got)
	}
}

// TestEmptyReportIDNotDeduplicated pins legacy behavior: senders that do
// not mint ReportIDs keep at-least-once semantics (every copy stored).
func TestEmptyReportIDNotDeduplicated(t *testing.T) {
	s, _ := newTestServer(t)
	if err := s.CreateApp(starbucksApp()); err != nil {
		t.Fatal(err)
	}
	sched := participate(t, s, "alice", "tok-a", 6)
	up := uploadFor(sched, "")
	for i := 0; i < 2; i++ {
		resp, err := s.Handler()(nil, up)
		if err != nil {
			t.Fatal(err)
		}
		if ack := resp.(*wire.Ack); !ack.OK {
			t.Fatalf("ack = %+v", ack)
		}
	}
	if got := s.DB().PendingUploads(); got != 2 {
		t.Fatalf("pending = %d, want 2 (no ReportID, no dedup)", got)
	}
}
