package server

import (
	"container/list"
	"encoding/binary"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"sor/internal/obs"
	"sor/internal/ranking"
	"sor/internal/transport"
	"sor/internal/wire"
)

// This file is the rank-serving read path (see DESIGN.md, "Read path &
// caching"). Each category serves queries from an immutable epoch-versioned
// snapshot of its feature matrix held behind an atomic pointer; ingest only
// bumps counters, and the snapshot rebuilds lazily when a rank request
// observes staleness. Rank results are cached per (epoch, canonical
// profile), so the common repeated-profile query is a map hit that never
// touches the store, the processor, or the mcmf solver.

// rankCacheSize bounds each category's profile-keyed result cache. Results
// for a 200-place category are a few KB each, so 256 distinct profiles per
// category is cheap and far beyond what real query mixes need.
const rankCacheSize = 256

// errNoRankData distinguishes "category has no servable data" (a 404 to
// the client) from internal failures.
var errNoRankData = errors.New("server: no rank data")

// rankSnapshot is one immutable epoch of a category's rank-serving state.
// Everything in it is read-only after construction: concurrent rankers
// share the matrix rows, the columnar ranker (whose unchanged columns
// alias the previous epoch's arena — see ranking.ColumnSet), and the
// features header without copying or locking. Superseded epochs stay
// fully readable until the last query drops them; the garbage collector
// is the arena lifecycle, so a torn or freed column is unrepresentable.
type rankSnapshot struct {
	epoch    int64
	matrix   *ranking.Matrix
	cranker  *ranking.ColumnarRanker
	features []string // response header, aligned with matrix.Features

	// Staleness signals captured at build time; the snapshot is stale once
	// any of them moves (see snapStale).
	builtDirty     int64 // this server's ingest counter for the category
	builtFeatVer   int64 // store-level feature version (cross-server writes)
	builtUploadSeq int64 // store-level raw-upload sequence (pending blobs)
	builtAt        time.Time
}

// categoryServing is one category's serving state: the current snapshot,
// the ingest dirty counter, and the profile-keyed result cache.
type categoryServing struct {
	snap  atomic.Pointer[rankSnapshot]
	dirty atomic.Int64
	// rebuildMu serializes snapshot rebuilds. Rankers that lose the
	// TryLock race serve the previous snapshot instead of blocking.
	rebuildMu sync.Mutex
	cache     profileCache
}

// serving returns (creating on first use) a category's serving state.
func (s *Server) serving(category string) *categoryServing {
	if v, ok := s.servingByCat.Load(category); ok {
		return v.(*categoryServing)
	}
	cs := &categoryServing{}
	cs.cache.init(rankCacheSize)
	// The hit/miss handles are shared across categories: the ratio is a
	// server-level serving-health signal.
	cs.cache.hits = s.met.rankCacheHits
	cs.cache.misses = s.met.rankCacheMisses
	v, _ := s.servingByCat.LoadOrStore(category, cs)
	return v.(*categoryServing)
}

// markDirty records that ingest touched an application, bumping its
// category's dirty counter. The appID→category mapping is cached so the
// ingest hot path pays one sync.Map hit, not a store lookup.
func (s *Server) markDirty(appID string) {
	cat, ok := s.appCats.Load(appID)
	if !ok {
		app, err := s.db.App(appID)
		if err != nil {
			return // unknown app: nothing to invalidate
		}
		cat, _ = s.appCats.LoadOrStore(appID, app.Category)
	}
	if c := cat.(string); c != "" {
		s.serving(c).dirty.Add(1)
	}
}

// snapStale reports whether the snapshot no longer reflects the data. With
// RankRefresh == 0 (the default) any movement of the ingest counters makes
// it stale — rank-after-ingest coherence identical to the legacy path that
// re-processed per query. With RankRefresh > 0 a stale-data snapshot keeps
// serving until it is older than the refresh bound, so a query burst under
// live ingest rebuilds at most once per bound.
func (s *Server) snapStale(cs *categoryServing, category string, snap *rankSnapshot) bool {
	moved := cs.dirty.Load() != snap.builtDirty ||
		s.db.FeatureVersion(category) != snap.builtFeatVer ||
		s.db.UploadSeq() != snap.builtUploadSeq
	if !moved {
		return false
	}
	if s.rankRefresh <= 0 {
		return true
	}
	return s.now().Sub(snap.builtAt) >= s.rankRefresh
}

// freshSnapshot returns a servable snapshot for the category, rebuilding
// if the current one is stale. The fast path is one atomic load plus three
// counter comparisons.
func (s *Server) freshSnapshot(category string) (*rankSnapshot, error) {
	cs := s.serving(category)
	snap := cs.snap.Load()
	if snap != nil && !s.snapStale(cs, category, snap) {
		return snap, nil
	}
	return s.rebuildSnapshot(cs, category, snap)
}

// rebuildSnapshot folds pending uploads and builds the next epoch. Only
// one goroutine rebuilds at a time; concurrent rankers that already have a
// snapshot serve it stale rather than block (first build must wait — there
// is nothing to serve yet).
func (s *Server) rebuildSnapshot(cs *categoryServing, category string, prev *rankSnapshot) (*rankSnapshot, error) {
	if !cs.rebuildMu.TryLock() {
		if prev != nil {
			return prev, nil
		}
		cs.rebuildMu.Lock()
	}
	defer cs.rebuildMu.Unlock()
	// The rebuild this goroutine raced may have done the work already.
	if snap := cs.snap.Load(); snap != nil && !s.snapStale(cs, category, snap) {
		return snap, nil
	}
	// Merge against the snapshot actually installed, not the caller's
	// (possibly superseded) view.
	prev = cs.snap.Load()
	// Capture the ingest signals before folding: anything arriving during
	// the rebuild re-marks the next query stale (conservative, never lost).
	// Rebuild duration is measured on the wall clock — s.now may be a
	// frozen virtual clock in tests and simulations.
	t0 := time.Now()
	dirty := cs.dirty.Load()
	uploadSeq := s.db.UploadSeq()
	// A replica never folds uploads itself: feature rows arrive through
	// the replicated WAL (the leader's processor wrote them), and running
	// the processor here would write this node's log, diverging it from
	// the leader's byte-for-byte copy.
	if !s.replica.Load() {
		s.processor.Process()
	}
	featVer := s.db.FeatureVersion(category)

	// Re-arm fast path: UploadSeq is store-global, so traffic to OTHER
	// categories re-marks this snapshot stale. If folding moved nothing in
	// this category — PutApp and every feature write bump its version, so
	// an unchanged version means identical matrix rows — keep the epoch
	// (and with it the warm profile cache) and only refresh the captured
	// signals, skipping the O(places×features) matrix reassembly.
	if prev != nil && featVer == prev.builtFeatVer {
		snap := *prev
		snap.builtDirty = dirty
		snap.builtUploadSeq = uploadSeq
		snap.builtAt = s.now()
		cs.snap.Store(&snap)
		s.met.snapshotRearms.Inc()
		return &snap, nil
	}

	matrix, err := s.rankMatrix(category)
	if err != nil {
		return nil, errors.Join(errNoRankData, err)
	}
	// Incremental epoch: when a previous snapshot exists, merge only the
	// store-reported dirty rows into its columns; any contract violation
	// (place/feature membership changed, out-of-range row) falls back to
	// a full columnar build.
	var cranker *ranking.ColumnarRanker
	if prev != nil && prev.cranker != nil {
		if dirtyIdx, ok := dirtyRowIndexes(prev.matrix, s.db.ChangedPlaces(category, prev.builtFeatVer)); ok {
			if merged, err := prev.cranker.Merge(matrix, dirtyIdx); err == nil {
				cranker = merged
				s.met.snapshotDeltaRebuilds.Inc()
			}
		}
	}
	if cranker == nil {
		cranker, err = ranking.NewColumnarRanker(matrix)
		if err != nil {
			return nil, err
		}
	}
	features := make([]string, len(matrix.Features))
	for j, f := range matrix.Features {
		features[j] = f.Name
	}
	var epoch int64 = 1
	if cur := cs.snap.Load(); cur != nil {
		epoch = cur.epoch + 1
	}
	snap := &rankSnapshot{
		epoch:          epoch,
		matrix:         matrix,
		cranker:        cranker,
		features:       features,
		builtDirty:     dirty,
		builtFeatVer:   featVer,
		builtUploadSeq: uploadSeq,
		builtAt:        s.now(),
	}
	cs.snap.Store(snap)
	s.met.snapshotRebuilds.Inc()
	s.met.snapshotRebuildMs.Observe(float64(time.Since(t0)) / float64(time.Millisecond))
	// A new epoch invalidates every ranking devices cached for this
	// category. Stream-connected phones hear about it immediately; a
	// wake-only fabric has no payload channel, so they find out on their
	// next query (the re-arm fast path above keeps the epoch and stays
	// silent).
	if b, ok := s.push.(transport.Broadcaster); ok {
		b.Broadcast(&wire.EpochInvalidate{Category: category, Epoch: epoch})
	}
	return snap, nil
}

// dirtyRowIndexes maps the store's changed-place names onto the previous
// matrix's row indices. A changed place missing from the previous matrix
// (it just completed its catalog, so the membership is about to change)
// reports !ok and forces a full rebuild; changed places that are simply
// not ranked rows never appear in prev.Places and were never rows to
// merge — but since ChangedPlaces only returns places with feature rows,
// absence here almost always means membership change, so the
// conservative full build is the right call.
func dirtyRowIndexes(prev *ranking.Matrix, changed []string) ([]int, bool) {
	if len(changed) == 0 {
		return nil, true
	}
	rowOf := make(map[string]int, len(prev.Places))
	for i, p := range prev.Places {
		rowOf[p] = i
	}
	idx := make([]int, 0, len(changed))
	for _, place := range changed {
		i, ok := rowOf[place]
		if !ok {
			return nil, false
		}
		idx = append(idx, i)
	}
	return idx, true
}

// profileKeyBufPool recycles the append buffer profileKey builds into;
// only the final string escapes, so a cached-hit query pays exactly one
// key allocation.
var profileKeyBufPool = sync.Pool{New: func() interface{} {
	b := make([]byte, 0, 256)
	return &b
}}

// profileKey canonicalizes a preference profile against the snapshot's
// feature order into an injective cache key: per feature, one presence
// byte, then — if present — the kind, the value's IEEE-754 bits, and the
// weight, each fixed width and full precision (no truncation, so even
// out-of-range kinds/weights — which Rank will reject — cannot collide
// with a valid cached profile); then the requested top-k as a fixed
// trailing 8 bytes, since a bounded result must not serve a broader
// query. Two (profile, k) pairs with the same preference per catalog
// feature and the same k produce the same key; any difference produces a
// different one (FuzzProfileKey). The requesting user's ID is
// deliberately excluded: rank results do not depend on it. Preferences
// for features outside the catalog are ignored, exactly as resolve
// ignores them.
func (snap *rankSnapshot) profileKey(prefs map[string]ranking.Preference, topK int) string {
	bp := profileKeyBufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	var scratch [25]byte
	for _, name := range snap.features {
		p, ok := prefs[name]
		if !ok {
			buf = append(buf, 0)
			continue
		}
		scratch[0] = 1
		binary.BigEndian.PutUint64(scratch[1:], uint64(p.Kind))
		binary.BigEndian.PutUint64(scratch[9:], math.Float64bits(p.Value))
		binary.BigEndian.PutUint64(scratch[17:], uint64(p.Weight))
		buf = append(buf, scratch[:]...)
	}
	binary.BigEndian.PutUint64(scratch[:8], uint64(topK))
	buf = append(buf, scratch[:8]...)
	key := string(buf)
	*bp = buf
	profileKeyBufPool.Put(bp)
	return key
}

// cacheEntry is one cached (or in-flight) rank result. done closes when
// res/err are final, giving duplicate concurrent queries for the same
// profile a single mcmf solve to wait on instead of one each.
type cacheEntry struct {
	key  string
	done chan struct{}
	res  *ranking.Result
	err  error
}

// profileCache is a bounded LRU of rank results for one category and one
// epoch. An epoch advance clears it wholesale — every cached ranking was
// computed from the superseded matrix — but first harvests the completed
// results as warm-start hints: the next epoch's fill for the same
// (profile, k) key gets the superseded assignment, which the aggregation
// reuses when (and only when) the mcmf optimality certificate still
// holds.
type profileCache struct {
	mu    sync.Mutex
	max   int
	epoch int64
	items map[string]*list.Element
	lru   *list.List // front = most recent; values are *cacheEntry
	// hints maps the previous epoch's keys to their solved prefixes
	// (ranking.Result.OrderIdx). Replaced wholesale at each epoch
	// advance, so it is bounded by the cache size.
	hints map[string][]int

	// hits/misses are nil-safe metric handles (nil without an observer).
	// Stale-epoch fills count as misses: they run the solver.
	hits   *obs.Counter
	misses *obs.Counter
}

func (c *profileCache) init(max int) {
	c.max = max
	c.items = make(map[string]*list.Element, max)
	c.lru = list.New()
}

// getOrCompute returns the cached result for (epoch, key), computing and
// caching it via fill on a miss. Concurrent misses on one key share a
// single fill. A fill for a superseded epoch runs uncached — its result is
// still correct for the snapshot the caller is serving, but must not
// poison the newer epoch's cache. fill receives the previous epoch's
// solved prefix for the same key (nil when there is none) as a warm-start
// hint.
func (c *profileCache) getOrCompute(epoch int64, key string, fill func(hint []int) (*ranking.Result, error)) (*ranking.Result, error) {
	c.mu.Lock()
	if epoch > c.epoch {
		c.epoch = epoch
		c.hints = harvestHints(c.items)
		c.items = make(map[string]*list.Element, c.max)
		c.lru.Init()
	} else if epoch < c.epoch {
		c.mu.Unlock()
		c.misses.Inc()
		return fill(nil)
	}
	if el, ok := c.items[key]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.mu.Unlock()
		c.hits.Inc()
		<-e.done
		return e.res, e.err
	}
	c.misses.Inc()
	hint := c.hints[key]
	e := &cacheEntry{key: key, done: make(chan struct{})}
	el := c.lru.PushFront(e)
	c.items[key] = el
	for c.lru.Len() > c.max {
		back := c.lru.Back()
		delete(c.items, back.Value.(*cacheEntry).key)
		c.lru.Remove(back)
	}
	c.mu.Unlock()

	e.res, e.err = fill(hint)
	close(e.done)
	if e.err != nil {
		// Failed fills are evicted so the profile can be retried.
		c.mu.Lock()
		if cur, ok := c.items[key]; ok && cur == el {
			delete(c.items, key)
			c.lru.Remove(el)
		}
		c.mu.Unlock()
	}
	return e.res, e.err
}

// harvestHints extracts the solved prefix of every completed cache entry,
// keyed as the cache was. Called under c.mu at epoch advance; in-flight
// entries (done not yet closed) are skipped rather than waited on — a
// missing hint only costs a cold solve.
func harvestHints(items map[string]*list.Element) map[string][]int {
	hints := make(map[string][]int, len(items))
	for key, el := range items {
		e := el.Value.(*cacheEntry)
		select {
		case <-e.done:
			if e.err == nil && e.res != nil && len(e.res.OrderIdx) > 0 {
				hints[key] = e.res.OrderIdx
			}
		default:
		}
	}
	return hints
}

// buildRankResponse assembles the wire response from a snapshot and a
// (possibly cached) result, truncated to limit places when limit > 0. The
// features header and each row's feature values alias the immutable
// snapshot matrix — no per-request copies.
func buildRankResponse(category string, snap *rankSnapshot, res *ranking.Result, limit int) *wire.RankResponse {
	order := res.OrderIdx
	if limit > 0 && limit < len(order) {
		order = order[:limit]
	}
	resp := &wire.RankResponse{
		Category: category,
		Epoch:    snap.epoch,
		Features: snap.features,
		Ranked:   make([]wire.RankedPlace, len(order)),
	}
	for k, idx := range order {
		resp.Ranked[k] = wire.RankedPlace{
			Place:         snap.matrix.Places[idx],
			FeatureValues: snap.matrix.Values[idx],
		}
	}
	return resp
}
