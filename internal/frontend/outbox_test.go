package frontend

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"sor/internal/device"
	"sor/internal/wire"
	"sor/internal/world"
)

// flakySender fails the first failN sends with a transport error, then
// acks. refuse lists ReportIDs to reject permanently.
type flakySender struct {
	mu     sync.Mutex
	failN  int
	refuse map[string]bool
	sent   []wire.Message
}

func (s *flakySender) Send(_ context.Context, m wire.Message) (wire.Message, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failN > 0 {
		s.failN--
		return nil, errors.New("link down")
	}
	s.sent = append(s.sent, m)
	if up, ok := m.(*wire.DataUpload); ok && s.refuse[up.ReportID] {
		return &wire.Ack{OK: false, Code: 400, Message: "corrupt report"}, nil
	}
	return &wire.Ack{OK: true, Code: 200}, nil
}

func (s *flakySender) uploadsSent() []*wire.DataUpload {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*wire.DataUpload
	for _, m := range s.sent {
		if up, ok := m.(*wire.DataUpload); ok {
			out = append(out, up)
		}
	}
	return out
}

// batchingSender additionally implements BatchSender; batchAck scripts the
// batch response.
type batchingSender struct {
	flakySender
	batchAck *wire.Ack
	batches  int
}

func (s *batchingSender) SendBatch(_ context.Context, ups []*wire.DataUpload) (*wire.Ack, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batches++
	return s.batchAck, nil
}

func up(id string) *wire.DataUpload {
	return &wire.DataUpload{TaskID: "t", AppID: "a", UserID: "u", ReportID: id}
}

func TestOutboxOverflowDropsOldest(t *testing.T) {
	o := newOutbox(2, time.Millisecond, 10*time.Millisecond, 1, nil)
	o.Enqueue(up("r1"), nil)
	o.Enqueue(up("r2"), nil)
	o.Enqueue(up("r3"), nil)
	if o.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", o.Pending())
	}
	if st := o.Stats(); st.DroppedOverflow != 1 || st.Enqueued != 3 {
		t.Fatalf("stats = %+v", st)
	}
	s := &flakySender{}
	if err := o.drainOnce(context.Background(), s); err != nil {
		t.Fatal(err)
	}
	got := s.uploadsSent()
	if len(got) != 2 || got[0].ReportID != "r2" || got[1].ReportID != "r3" {
		t.Fatalf("sent %+v, want r2 then r3 (r1 evicted)", got)
	}
}

func TestOutboxTransportFailureLeavesQueue(t *testing.T) {
	o := newOutbox(8, time.Millisecond, 10*time.Millisecond, 1, nil)
	var delivered []string
	var mu sync.Mutex
	note := func(id string) func(bool, string) {
		return func(ok bool, _ string) {
			mu.Lock()
			defer mu.Unlock()
			if ok {
				delivered = append(delivered, id)
			}
		}
	}
	o.Enqueue(up("r1"), note("r1"))
	o.Enqueue(up("r2"), note("r2"))
	s := &flakySender{failN: 1}
	if err := o.drainOnce(context.Background(), s); err == nil {
		t.Fatal("transport failure must surface")
	}
	if o.Pending() != 2 {
		t.Fatalf("pending = %d after transport failure, want 2 (nothing lost)", o.Pending())
	}
	if o.LastError() == "" {
		t.Fatal("LastError empty after failure")
	}
	if err := o.drainOnce(context.Background(), s); err != nil {
		t.Fatal(err)
	}
	if o.Pending() != 0 {
		t.Fatalf("pending = %d after recovery", o.Pending())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(delivered) != 2 {
		t.Fatalf("delivered callbacks = %v", delivered)
	}
	if st := o.Stats(); st.Delivered != 2 || st.DroppedRefused != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOutboxBatchCoalescing(t *testing.T) {
	o := newOutbox(8, time.Millisecond, 10*time.Millisecond, 1, nil)
	for _, id := range []string{"r1", "r2", "r3"} {
		o.Enqueue(up(id), nil)
	}
	s := &batchingSender{batchAck: &wire.Ack{OK: true, Code: 200}}
	if err := o.drainOnce(context.Background(), s); err != nil {
		t.Fatal(err)
	}
	if o.Pending() != 0 {
		t.Fatalf("pending = %d", o.Pending())
	}
	if s.batches != 1 {
		t.Fatalf("batches = %d, want 1 (coalesced)", s.batches)
	}
	if got := s.uploadsSent(); len(got) != 0 {
		t.Fatalf("individual sends = %d, want 0", len(got))
	}
	if st := o.Stats(); st.Delivered != 3 || st.BatchesSent != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOutboxBatchPartialFallsBackToSingles(t *testing.T) {
	o := newOutbox(8, time.Millisecond, 10*time.Millisecond, 1, nil)
	var refusedReason string
	o.Enqueue(up("good-1"), nil)
	o.Enqueue(up("bad"), func(ok bool, reason string) {
		if !ok {
			refusedReason = reason
		}
	})
	o.Enqueue(up("good-2"), nil)
	s := &batchingSender{
		flakySender: flakySender{refuse: map[string]bool{"bad": true}},
		batchAck:    &wire.Ack{OK: false, Code: 207, Message: "1 of 3 refused"},
	}
	if err := o.drainOnce(context.Background(), s); err != nil {
		t.Fatal(err)
	}
	if o.Pending() != 0 {
		t.Fatalf("pending = %d", o.Pending())
	}
	if got := s.uploadsSent(); len(got) != 3 {
		t.Fatalf("singles fallback sent %d, want 3", len(got))
	}
	if refusedReason == "" || !strings.Contains(refusedReason, "corrupt") {
		t.Fatalf("refusal reason = %q", refusedReason)
	}
	if st := o.Stats(); st.Delivered != 2 || st.DroppedRefused != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// dyingSender answers 5xx for the first dieN sends — a server erroring
// mid-shutdown — then accepts.
type dyingSender struct {
	mu   sync.Mutex
	dieN int
}

func (s *dyingSender) Send(_ context.Context, m wire.Message) (wire.Message, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dieN > 0 {
		s.dieN--
		return &wire.Ack{OK: false, Code: 500, Message: "store: wal append: wal: log killed"}, nil
	}
	return &wire.Ack{OK: true, Code: 200}, nil
}

func TestOutboxServerErrorKeepsReportQueued(t *testing.T) {
	o := newOutbox(8, time.Millisecond, 10*time.Millisecond, 1, nil)
	o.Enqueue(up("r1"), nil)
	o.Enqueue(up("r2"), nil)
	s := &dyingSender{dieN: 1}
	if err := o.drainOnce(context.Background(), s); err == nil {
		t.Fatal("a 5xx ack must surface as a retryable error")
	}
	if o.Pending() != 2 {
		t.Fatalf("pending = %d after 5xx ack, want 2 (nothing dropped)", o.Pending())
	}
	if err := o.drainOnce(context.Background(), s); err != nil {
		t.Fatal(err)
	}
	if o.Pending() != 0 {
		t.Fatalf("pending = %d after recovery", o.Pending())
	}
	if st := o.Stats(); st.Delivered != 2 || st.DroppedRefused != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOutboxBatchServerErrorSkipsSinglesProbe(t *testing.T) {
	o := newOutbox(8, time.Millisecond, 10*time.Millisecond, 1, nil)
	o.Enqueue(up("r1"), nil)
	o.Enqueue(up("r2"), nil)
	s := &batchingSender{batchAck: &wire.Ack{OK: false, Code: 500, Message: "recovering"}}
	if err := o.drainOnce(context.Background(), s); err == nil {
		t.Fatal("a 5xx batch ack must surface as a retryable error")
	}
	if o.Pending() != 2 {
		t.Fatalf("pending = %d, want 2 (nothing dropped)", o.Pending())
	}
	if got := s.uploadsSent(); len(got) != 0 {
		t.Fatalf("singles probe sent %d reports at a failing server, want 0", len(got))
	}
}

func TestExecuteScheduleParksUploadWhenNetworkDown(t *testing.T) {
	s := &flakySender{failN: 1 << 30} // network down for now
	f, err := New(newPhone(t, world.Starbucks), s, WithOutboxBackoff(time.Millisecond, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	sched := &wire.Schedule{TaskID: "t1", AppID: "a", UserID: "u",
		Script: "local t = get_temperature_readings(2, 1000) return #t",
		AtUnix: []int64{enter.Unix()}}
	upload, err := f.ExecuteSchedule(context.Background(), sched)
	if err != nil {
		t.Fatalf("a dead network must not fail the task: %v", err)
	}
	if upload.ReportID == "" || !strings.HasPrefix(upload.ReportID, "tok-1/t1/") {
		t.Fatalf("ReportID = %q", upload.ReportID)
	}
	info, _ := f.Task("t1")
	if info.State != TaskStateUploadPending {
		t.Fatalf("state = %v, want upload-pending", info.State)
	}
	if f.Outbox().Pending() != 1 {
		t.Fatalf("outbox pending = %d", f.Outbox().Pending())
	}

	// The network heals; a push-channel ping wake-up drains the outbox.
	s.mu.Lock()
	s.failN = 0
	s.mu.Unlock()
	if err := f.HandlePing(context.Background()); err != nil {
		t.Fatal(err)
	}
	if f.Outbox().Pending() != 0 {
		t.Fatalf("outbox pending = %d after ping drain", f.Outbox().Pending())
	}
	info, _ = f.Task("t1")
	if info.State != TaskStateDone {
		t.Fatalf("state = %v after delivery, want done", info.State)
	}
	if got := s.uploadsSent(); len(got) != 1 || got[0].ReportID != upload.ReportID {
		t.Fatalf("server got %+v", got)
	}
}

func TestExecuteScheduleUploadRefusedFailsTask(t *testing.T) {
	s := &flakySender{refuse: map[string]bool{"tok-1/t1/1": true}}
	f, err := New(newPhone(t, world.Starbucks), s)
	if err != nil {
		t.Fatal(err)
	}
	sched := &wire.Schedule{TaskID: "t1", AppID: "a", UserID: "u",
		Script: "return 0", AtUnix: []int64{enter.Unix()}}
	_, err = f.ExecuteSchedule(context.Background(), sched)
	if err == nil || !strings.Contains(err.Error(), "upload refused") {
		t.Fatalf("err = %v", err)
	}
	info, _ := f.Task("t1")
	if info.State != TaskStateFailed {
		t.Fatalf("state = %v", info.State)
	}
	if st := f.Outbox().Stats(); st.DroppedRefused != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReportIDsUniquePerDevice(t *testing.T) {
	s := &flakySender{}
	f, err := New(newPhone(t, world.Starbucks), s)
	if err != nil {
		t.Fatal(err)
	}
	ids := make(map[string]bool)
	for _, taskID := range []string{"a", "b", "c"} {
		upload, err := f.ExecuteSchedule(context.Background(), &wire.Schedule{
			TaskID: taskID, AppID: "app", UserID: "u",
			Script: "return 0", AtUnix: []int64{enter.Unix()}})
		if err != nil {
			t.Fatal(err)
		}
		if ids[upload.ReportID] {
			t.Fatalf("duplicate ReportID %q", upload.ReportID)
		}
		ids[upload.ReportID] = true
	}
}

func TestFlushOutboxRetriesUntilDelivered(t *testing.T) {
	s := &flakySender{failN: 3}
	f, err := New(newPhone(t, world.Starbucks), s,
		WithOutboxBackoff(time.Millisecond, 4*time.Millisecond), WithOutboxSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ExecuteSchedule(context.Background(), &wire.Schedule{
		TaskID: "t1", AppID: "a", UserID: "u",
		Script: "return 0", AtUnix: []int64{enter.Unix()}}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := f.FlushOutbox(ctx); err != nil {
		t.Fatal(err)
	}
	if f.Outbox().Pending() != 0 {
		t.Fatal("outbox not drained")
	}
	info, _ := f.Task("t1")
	if info.State != TaskStateDone {
		t.Fatalf("state = %v", info.State)
	}
}

// TestSensorGapDegradesGracefully pins satellite behavior: a sensor whose
// Bluetooth link keeps failing is skipped with a recorded gap, the task
// still completes, and the upload carries the healthy sensors' data.
func TestSensorGapDegradesGracefully(t *testing.T) {
	w, err := world.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	place, err := w.Place(world.Starbucks)
	if err != nil {
		t.Fatal(err)
	}
	phone, err := device.New(device.Config{
		ID: "phone-1", Token: "tok-1",
		Traj:                 device.Trajectory{Place: place, Enter: enter, Leave: leave},
		Seed:                 1,
		BluetoothFailureRate: 1, // the Sensordrone never answers
	})
	if err != nil {
		t.Fatal(err)
	}
	s := &flakySender{}
	f, err := New(phone, s, WithAcquireRetries(1))
	if err != nil {
		t.Fatal(err)
	}
	sched := &wire.Schedule{TaskID: "t1", AppID: "a", UserID: "u",
		// temperature rides the (dead) Bluetooth link; wifi is embedded.
		Script: `
			local temps = get_temperature_readings(2, 1000)
			local wifi = get_wifi_rssi(2, 1000)
			return #wifi`,
		AtUnix: []int64{enter.Unix(), enter.Add(10 * time.Minute).Unix()}}
	upload, err := f.ExecuteSchedule(context.Background(), sched)
	if err != nil {
		t.Fatalf("flaky sensor must not fail the task: %v", err)
	}
	bySensor := make(map[string]int)
	for _, series := range upload.Series {
		bySensor[series.Sensor] = len(series.Samples)
	}
	if bySensor["temperature"] != 0 {
		t.Fatalf("dead sensor still produced samples: %v", bySensor)
	}
	if bySensor["wifi"] != 2 {
		t.Fatalf("healthy sensor lost data: %v", bySensor)
	}
	info, _ := f.Task("t1")
	if info.State != TaskStateDone {
		t.Fatalf("state = %v", info.State)
	}
	if len(info.Gaps) != 2 {
		t.Fatalf("gaps = %v, want one per instant", info.Gaps)
	}
	for _, g := range info.Gaps {
		if !strings.Contains(g, device.FnTemperature) {
			t.Fatalf("gap %q does not name the sensor", g)
		}
	}
	// Snapshots are copies: mutating one must not leak into the frontend.
	snap, _ := f.Task("t1")
	snap.Gaps[0] = "mutated"
	again, _ := f.Task("t1")
	if again.Gaps[0] == "mutated" {
		t.Fatal("Task() leaked the live Gaps slice")
	}
}
