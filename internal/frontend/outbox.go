package frontend

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"sor/internal/obs"
	"sor/internal/transport"
	"sor/internal/vclock"
	"sor/internal/wire"
)

// BatchSender is the optional coalescing side of a Sender: when several
// reports are pending, the outbox drains them in one DataUploadBatch
// instead of one round-trip each. transport.Client implements it.
type BatchSender interface {
	SendBatch(ctx context.Context, uploads []*wire.DataUpload) (*wire.Ack, error)
}

// outboxEntry is one queued report plus its delivery bookkeeping.
type outboxEntry struct {
	up *wire.DataUpload
	// onResult, if set, is told the report's final fate: delivered true
	// (acked by the server, possibly as a duplicate) or false (refused and
	// dropped). It is never called for overflow drops — the task already
	// finished long before and has no decision to make.
	onResult func(delivered bool, reason string)
}

// OutboxStats counts what the outbox did.
type OutboxStats struct {
	Enqueued        int // reports that entered the outbox
	Delivered       int // reports acked by the server (duplicates count once)
	DroppedOverflow int // oldest reports evicted by the bounded queue
	DroppedRefused  int // reports the server refused (permanent errors)
	DrainPasses     int // drain attempts (single sends and batches alike)
	BatchesSent     int // coalesced DataUploadBatch round-trips
}

// Outbox is the phone's bounded store-and-forward queue (§V's flaky
// cellular/WiFi reality): finished task uploads wait here, each stamped
// with a unique ReportID, until the sensing server acks them. Delivery is
// at-least-once from the device's view; the server's per-app dedup window
// on ReportID turns that into exactly-once storage and budget accounting.
//
// The queue is bounded with a drop-oldest overflow policy: a phone that
// cannot reach the server for a whole scheduling period keeps its newest
// reports (the old ones have usually aged out of the period anyway) and
// counts the evictions instead of growing without limit.
type Outbox struct {
	mu      sync.Mutex
	queue   []*outboxEntry
	cap     int
	stats   OutboxStats
	lastErr string

	// drainMu serializes drain passes so concurrent triggers (task finish,
	// ping wake-up, explicit flush) do not send the same report twice in
	// flight. Re-sends are still safe — the server dedups — just wasteful.
	drainMu sync.Mutex

	delay *transport.Backoff
	clock vclock.Clock

	met outboxMetrics
}

// outboxMetrics mirror OutboxStats into a shared registry (all nil
// without an observer). The depth gauge is updated with deltas, so a
// fleet of frontends sharing one registry reads as aggregate depth.
type outboxMetrics struct {
	depth           *obs.Gauge
	enqueued        *obs.Counter
	delivered       *obs.Counter
	droppedOverflow *obs.Counter
	droppedRefused  *obs.Counter
	drainPasses     *obs.Counter
	batches         *obs.Counter
}

func newOutboxMetrics(reg *obs.Registry) outboxMetrics {
	return outboxMetrics{
		depth:           reg.Gauge("sor_outbox_depth"),
		enqueued:        reg.Counter("sor_outbox_enqueued_total"),
		delivered:       reg.Counter("sor_outbox_delivered_total"),
		droppedOverflow: reg.Counter("sor_outbox_dropped_overflow_total"),
		droppedRefused:  reg.Counter("sor_outbox_dropped_refused_total"),
		drainPasses:     reg.Counter("sor_outbox_drain_passes_total"),
		batches:         reg.Counter("sor_outbox_batches_total"),
	}
}

// Outbox defaults.
const (
	defaultOutboxCapacity   = 256
	defaultOutboxBackoff    = 50 * time.Millisecond
	defaultOutboxBackoffCap = 5 * time.Second
	maxOutboxBatch          = wire.MaxBatchReports
)

func newOutbox(capacity int, base, cap time.Duration, seed int64, clk vclock.Clock) *Outbox {
	return &Outbox{
		cap:   capacity,
		delay: transport.NewBackoff(base, cap, seed),
		clock: vclock.Or(clk),
	}
}

// Enqueue appends a report; when the queue is full the oldest report is
// evicted (drop-oldest) and counted.
func (o *Outbox) Enqueue(up *wire.DataUpload, onResult func(delivered bool, reason string)) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.queue) >= o.cap {
		o.queue = o.queue[1:]
		o.stats.DroppedOverflow++
		o.met.droppedOverflow.Inc()
		o.met.depth.Add(-1)
	}
	o.queue = append(o.queue, &outboxEntry{up: up, onResult: onResult})
	o.stats.Enqueued++
	o.met.enqueued.Inc()
	o.met.depth.Add(1)
}

// Pending reports how many uploads await delivery.
func (o *Outbox) Pending() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.queue)
}

// Stats snapshots the outbox counters.
func (o *Outbox) Stats() OutboxStats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.stats
}

// LastError returns the most recent delivery error ("" when none).
func (o *Outbox) LastError() string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.lastErr
}

// snapshotPending copies up to maxOutboxBatch queued entries (oldest
// first) without removing them; entries leave the queue only on ack.
func (o *Outbox) snapshotPending() []*outboxEntry {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := len(o.queue)
	if n > maxOutboxBatch {
		n = maxOutboxBatch
	}
	out := make([]*outboxEntry, n)
	copy(out, o.queue[:n])
	return out
}

// remove drops the given entries from the queue (identity match).
func (o *Outbox) remove(done map[*outboxEntry]bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	before := len(o.queue)
	kept := o.queue[:0]
	for _, e := range o.queue {
		if !done[e] {
			kept = append(kept, e)
		}
	}
	for i := len(kept); i < len(o.queue); i++ {
		o.queue[i] = nil
	}
	o.queue = kept
	o.met.depth.Add(int64(len(kept) - before))
}

func (o *Outbox) noteErr(err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if err != nil {
		o.lastErr = err.Error()
	} else {
		o.lastErr = ""
	}
}

// drainOnce makes one delivery pass: pending reports are coalesced into a
// single batch when the sender supports it, otherwise sent one by one.
// Transport failures and 5xx acks (the server failing, not judging) leave
// everything queued for the next pass; 4xx refusals are permanent (the
// server judged the report's content) and drop
// the report with its callback told why. Returns the transport error that
// stopped the pass, or nil when the pass ran to completion (the queue may
// still be non-empty only if reports arrived meanwhile).
func (o *Outbox) drainOnce(ctx context.Context, sender Sender) error {
	o.drainMu.Lock()
	defer o.drainMu.Unlock()
	for {
		pending := o.snapshotPending()
		if len(pending) == 0 {
			o.noteErr(nil)
			return nil
		}
		o.mu.Lock()
		o.stats.DrainPasses++
		o.mu.Unlock()
		o.met.drainPasses.Inc()
		bs, canBatch := sender.(BatchSender)
		if canBatch && len(pending) > 1 {
			ups := make([]*wire.DataUpload, len(pending))
			for i, e := range pending {
				ups[i] = e.up
			}
			o.mu.Lock()
			o.stats.BatchesSent++
			o.mu.Unlock()
			o.met.batches.Inc()
			ack, err := bs.SendBatch(ctx, ups)
			if err != nil {
				o.noteErr(err)
				return err
			}
			if ack.OK && ack.Code == 200 {
				done := make(map[*outboxEntry]bool, len(pending))
				o.mu.Lock()
				o.stats.Delivered += len(pending)
				o.mu.Unlock()
				o.met.delivered.Add(int64(len(pending)))
				for _, e := range pending {
					done[e] = true
					if e.onResult != nil {
						e.onResult(true, ack.Message)
					}
				}
				o.remove(done)
				continue
			}
			if !ack.OK && ack.Code >= 500 {
				// Server failure, not a judgment on the batch: retry later
				// rather than probing a dying server report by report.
				err := fmt.Errorf("frontend: server error %d: %s", ack.Code, ack.Message)
				o.noteErr(err)
				return err
			}
			// Partial or total refusal: the batch ack cannot say which
			// reports were at fault, so fall through to individual sends —
			// the server's ReportID dedup makes re-sending the accepted
			// ones harmless.
		}
		if err := o.drainSingles(ctx, sender, pending); err != nil {
			return err
		}
	}
}

// drainSingles delivers the given entries one round-trip each.
func (o *Outbox) drainSingles(ctx context.Context, sender Sender, pending []*outboxEntry) error {
	done := make(map[*outboxEntry]bool, len(pending))
	defer o.remove(done)
	for _, e := range pending {
		resp, err := sender.Send(ctx, e.up)
		if err != nil {
			o.noteErr(err)
			return err
		}
		ack, ok := resp.(*wire.Ack)
		if !ok {
			err := fmt.Errorf("frontend: upload response was %s, want ack", resp.Type())
			o.noteErr(err)
			return err
		}
		if !ack.OK && ack.Code >= 500 {
			// A 5xx ack is the server failing, not judging the report — a
			// recovering server mid-shutdown answers "wal: log killed" this
			// way. Keep the report queued like any transport fault.
			err := fmt.Errorf("frontend: server error %d: %s", ack.Code, ack.Message)
			o.noteErr(err)
			return err
		}
		done[e] = true
		if ack.OK {
			o.mu.Lock()
			o.stats.Delivered++
			o.mu.Unlock()
			o.met.delivered.Inc()
			if e.onResult != nil {
				e.onResult(true, ack.Message)
			}
			continue
		}
		o.mu.Lock()
		o.stats.DroppedRefused++
		o.mu.Unlock()
		o.met.droppedRefused.Inc()
		if e.onResult != nil {
			e.onResult(false, ack.Message)
		}
	}
	o.noteErr(nil)
	return nil
}

// Flush drains the outbox with capped exponential backoff and full jitter
// until it is empty or ctx expires. It returns nil once empty.
func (o *Outbox) Flush(ctx context.Context, sender Sender) error {
	for attempt := 0; ; attempt++ {
		err := o.drainOnce(ctx, sender)
		if err == nil && o.Pending() == 0 {
			return nil
		}
		delay := o.flushDelay(attempt)
		wake := o.clock.NewTimer(delay)
		select {
		case <-wake.C():
		case <-ctx.Done():
			wake.Stop()
			if err == nil {
				err = errors.New("frontend: outbox not drained")
			}
			return fmt.Errorf("frontend: flush cancelled with %d pending: %w (last: %v)",
				o.Pending(), ctx.Err(), err)
		}
	}
}

// flushDelay draws the attempt's backoff: uniform in
// [0, min(cap, base·2^attempt)] — full jitter via the shared
// transport.Backoff, so a fleet of phones cut off by the same partition
// does not retry in lockstep when it heals.
func (o *Outbox) flushDelay(attempt int) time.Duration {
	return o.delay.Delay(attempt)
}
