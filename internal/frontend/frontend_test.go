package frontend

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"sor/internal/device"
	"sor/internal/wire"
	"sor/internal/world"
)

var (
	enter = time.Date(2013, time.November, 15, 11, 0, 0, 0, time.UTC)
	leave = enter.Add(3 * time.Hour)
)

// fakeSender records messages and replies per type.
type fakeSender struct {
	mu       sync.Mutex
	got      []wire.Message
	schedule *wire.Schedule
	refuse   string
}

func (s *fakeSender) Send(_ context.Context, m wire.Message) (wire.Message, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.got = append(s.got, m)
	if s.refuse != "" {
		return &wire.Ack{OK: false, Code: 403, Message: s.refuse}, nil
	}
	switch m.(type) {
	case *wire.Participate:
		if s.schedule != nil {
			payload, err := wire.Encode(s.schedule)
			if err != nil {
				return nil, err
			}
			return &wire.Ack{OK: true, Code: 200, Payload: payload}, nil
		}
		return &wire.Ack{OK: true, Code: 200}, nil
	default:
		return &wire.Ack{OK: true, Code: 200}, nil
	}
}

func (s *fakeSender) messages() []wire.Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]wire.Message(nil), s.got...)
}

func newPhone(t *testing.T, placeName string) *device.Phone {
	t.Helper()
	w, err := world.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	place, err := w.Place(placeName)
	if err != nil {
		t.Fatal(err)
	}
	p, err := device.New(device.Config{
		ID: "phone-1", Token: "tok-1",
		Traj: device.Trajectory{Place: place, Enter: enter, Leave: leave},
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newFrontend(t *testing.T, placeName string, s Sender) *Frontend {
	t.Helper()
	f, err := New(newPhone(t, placeName), s)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, &fakeSender{}); err == nil {
		t.Fatal("nil phone must error")
	}
	if _, err := New(newPhone(t, world.BNCafe), nil); err == nil {
		t.Fatal("nil sender must error")
	}
}

func TestWakeLock(t *testing.T) {
	var w WakeLock
	if w.Held() {
		t.Fatal("fresh lock held")
	}
	w.Acquire()
	w.Acquire()
	if !w.Held() || w.Peak() != 2 {
		t.Fatalf("held=%v peak=%d", w.Held(), w.Peak())
	}
	if err := w.Release(); err != nil {
		t.Fatal(err)
	}
	if err := w.Release(); err != nil {
		t.Fatal(err)
	}
	if w.Held() {
		t.Fatal("lock still held")
	}
	if err := w.Release(); err == nil {
		t.Fatal("over-release must error")
	}
}

func TestPreferences(t *testing.T) {
	p := NewPreferences()
	if !p.Allowed(device.FnLocation) {
		t.Fatal("default must allow")
	}
	p.Deny(device.FnLocation)
	if p.Allowed(device.FnLocation) {
		t.Fatal("deny failed")
	}
	p.Allow(device.FnLocation)
	if !p.Allowed(device.FnLocation) {
		t.Fatal("allow failed")
	}
}

func TestTaskStateString(t *testing.T) {
	for s, want := range map[TaskState]string{
		TaskStateWaiting: "waiting", TaskStateRunning: "running",
		TaskStateDone: "done", TaskStateFailed: "failed",
		TaskStateUploadPending: "upload-pending",
	} {
		if s.String() != want {
			t.Fatalf("%d = %q", s, s.String())
		}
	}
}

func TestParticipateRoundTrip(t *testing.T) {
	sched := &wire.Schedule{
		TaskID: "t1", AppID: "app", UserID: "u1",
		Script: "return 0", AtUnix: []int64{enter.Unix()},
	}
	s := &fakeSender{schedule: sched}
	f := newFrontend(t, world.BNCafe, s)
	got, err := f.Participate(context.Background(), "u1", "app", 17, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if got.TaskID != "t1" {
		t.Fatalf("schedule = %+v", got)
	}
	msgs := s.messages()
	if len(msgs) != 1 {
		t.Fatalf("messages = %d", len(msgs))
	}
	p := msgs[0].(*wire.Participate)
	if p.UserID != "u1" || p.AppID != "app" || p.Budget != 17 || p.Token != "tok-1" {
		t.Fatalf("participate = %+v", p)
	}
	if p.Loc.Lat == 0 {
		t.Fatal("participate should carry the phone location")
	}
	if f.WakeLock().Held() {
		t.Fatal("wake lock leaked")
	}
}

func TestParticipateRefused(t *testing.T) {
	s := &fakeSender{refuse: "not at the place"}
	f := newFrontend(t, world.BNCafe, s)
	_, err := f.Participate(context.Background(), "u1", "app", 5, time.Hour)
	if err == nil || !strings.Contains(err.Error(), "not at the place") {
		t.Fatalf("err = %v", err)
	}
}

func TestParticipateWithoutSchedulePayload(t *testing.T) {
	s := &fakeSender{} // ack without payload
	f := newFrontend(t, world.BNCafe, s)
	if _, err := f.Participate(context.Background(), "u", "a", 1, time.Hour); err == nil {
		t.Fatal("missing schedule payload must error")
	}
}

const coffeeScript = `
	local temps = get_temperature_readings(4, 5000)
	local noise = get_noise_readings(16, 2000)
	local light = get_light_readings(4, 5000)
	local wifi = get_wifi_rssi(3, 1000)
	assert(#temps == 4 and #noise == 16)
	return #temps
`

func TestExecuteScheduleCollectsAndUploads(t *testing.T) {
	s := &fakeSender{}
	f := newFrontend(t, world.Starbucks, s)
	sched := &wire.Schedule{
		TaskID: "t1", AppID: "app-sb", UserID: "u1",
		Script: coffeeScript,
		AtUnix: []int64{enter.Unix(), enter.Add(10 * time.Minute).Unix(), enter.Add(20 * time.Minute).Unix()},
	}
	upload, err := f.ExecuteSchedule(context.Background(), sched)
	if err != nil {
		t.Fatal(err)
	}
	if upload.TaskID != "t1" || upload.UserID != "u1" {
		t.Fatalf("upload header = %+v", upload)
	}
	bySensor := make(map[string]int)
	for _, series := range upload.Series {
		bySensor[series.Sensor] = len(series.Samples)
	}
	for _, sensor := range []string{"temperature", "microphone", "light", "wifi"} {
		if bySensor[sensor] != 3 {
			t.Fatalf("sensor %s has %d samples, want 3 (one per instant); map=%v",
				sensor, bySensor[sensor], bySensor)
		}
	}
	// The upload must have been sent.
	msgs := s.messages()
	if len(msgs) != 1 {
		t.Fatalf("sent %d messages", len(msgs))
	}
	if _, ok := msgs[0].(*wire.DataUpload); !ok {
		t.Fatalf("sent %T", msgs[0])
	}
	// Task bookkeeping.
	info, ok := f.Task("t1")
	if !ok || info.State != TaskStateDone || info.Measurements != 3 {
		t.Fatalf("task info = %+v", info)
	}
}

func TestExecuteScheduleDuplicateTask(t *testing.T) {
	s := &fakeSender{}
	f := newFrontend(t, world.Starbucks, s)
	sched := &wire.Schedule{TaskID: "dup", AppID: "a", UserID: "u",
		Script: "return 0", AtUnix: []int64{enter.Unix()}}
	if _, err := f.ExecuteSchedule(context.Background(), sched); err != nil {
		t.Fatal(err)
	}
	sched2 := *sched
	if _, err := f.ExecuteSchedule(context.Background(), &sched2); err == nil {
		t.Fatal("duplicate task must error")
	}
}

func TestExecuteScheduleBadScript(t *testing.T) {
	s := &fakeSender{}
	f := newFrontend(t, world.Starbucks, s)
	sched := &wire.Schedule{TaskID: "bad", AppID: "a", UserID: "u",
		Script: "this is not lua(", AtUnix: []int64{enter.Unix()}}
	if _, err := f.ExecuteSchedule(context.Background(), sched); err == nil {
		t.Fatal("bad script must error")
	}
	info, _ := f.Task("bad")
	if info.State != TaskStateFailed {
		t.Fatalf("task state = %v", info.State)
	}
}

func TestExecuteScheduleScriptRuntimeError(t *testing.T) {
	s := &fakeSender{}
	f := newFrontend(t, world.Starbucks, s)
	sched := &wire.Schedule{TaskID: "boom", AppID: "a", UserID: "u",
		Script: `error("sensor exploded")`, AtUnix: []int64{enter.Unix()}}
	_, err := f.ExecuteSchedule(context.Background(), sched)
	if err == nil || !strings.Contains(err.Error(), "sensor exploded") {
		t.Fatalf("err = %v", err)
	}
}

func TestPreferenceDenialBlocksSensor(t *testing.T) {
	s := &fakeSender{}
	f := newFrontend(t, world.Starbucks, s)
	f.Preferences().Deny(device.FnLocation)
	sched := &wire.Schedule{TaskID: "loc", AppID: "a", UserID: "u",
		Script: "local l = get_location(1) return #l", AtUnix: []int64{enter.Unix()}}
	_, err := f.ExecuteSchedule(context.Background(), sched)
	if err == nil || !strings.Contains(err.Error(), "disabled by user preference") {
		t.Fatalf("err = %v", err)
	}
	// A script can survive denial with pcall.
	f2 := newFrontend(t, world.Starbucks, s)
	f2.Preferences().Deny(device.FnLocation)
	sched2 := &wire.Schedule{TaskID: "loc2", AppID: "a", UserID: "u",
		Script: `
			local ok = pcall(function() return get_location(1) end)
			if not ok then
				local t = get_temperature_readings(2, 1000)
				return #t
			end
			return -1`,
		AtUnix: []int64{enter.Unix()}}
	upload, err := f2.ExecuteSchedule(context.Background(), sched2)
	if err != nil {
		t.Fatal(err)
	}
	if len(upload.Track) != 0 {
		t.Fatal("denied GPS still produced track points")
	}
	if len(upload.Series) == 0 {
		t.Fatal("fallback sensing produced no data")
	}
}

func TestLocationScriptProducesTrack(t *testing.T) {
	s := &fakeSender{}
	f := newFrontend(t, world.GreenLakeTrail, s)
	sched := &wire.Schedule{TaskID: "walk", AppID: "a", UserID: "u",
		Script: `
			local fixes = get_location(2)
			local alts = get_altitude_readings(3, 2000)
			return fixes[1].lat`,
		AtUnix: []int64{enter.Unix(), enter.Add(30 * time.Minute).Unix()},
	}
	upload, err := f.ExecuteSchedule(context.Background(), sched)
	if err != nil {
		t.Fatal(err)
	}
	if len(upload.Track) != 4 { // 2 fixes × 2 instants
		t.Fatalf("track = %d points, want 4", len(upload.Track))
	}
	if upload.Track[0].Lat < 42 || upload.Track[0].Lat > 44 {
		t.Fatalf("track point = %+v", upload.Track[0])
	}
	// Barometer series present.
	found := false
	for _, series := range upload.Series {
		if series.Sensor == "barometer" && len(series.Samples) == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("barometer series missing: %+v", upload.Series)
	}
}

func TestLeave(t *testing.T) {
	s := &fakeSender{}
	f := newFrontend(t, world.BNCafe, s)
	if err := f.Leave(context.Background(), "u1", "app"); err != nil {
		t.Fatal(err)
	}
	msgs := s.messages()
	if len(msgs) != 1 {
		t.Fatalf("messages = %d", len(msgs))
	}
	if l, ok := msgs[0].(*wire.Leave); !ok || l.UserID != "u1" {
		t.Fatalf("sent %+v", msgs[0])
	}
	s2 := &fakeSender{refuse: "unknown user"}
	f2 := newFrontend(t, world.BNCafe, s2)
	if err := f2.Leave(context.Background(), "ghost", "app"); err == nil {
		t.Fatal("refused leave must error")
	}
}

func TestHandlePing(t *testing.T) {
	s := &fakeSender{}
	f := newFrontend(t, world.BNCafe, s)
	if err := f.HandlePing(context.Background()); err != nil {
		t.Fatal(err)
	}
	msgs := s.messages()
	if p, ok := msgs[0].(*wire.Ping); !ok || p.Token != "tok-1" {
		t.Fatalf("sent %+v", msgs[0])
	}
}

func TestConcurrentTaskInstances(t *testing.T) {
	// SOR is a multi-task system: several task instances may acquire from
	// one or multiple sensors simultaneously (§II-A).
	s := &fakeSender{}
	f := newFrontend(t, world.Starbucks, s)
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sched := &wire.Schedule{
				TaskID: "conc-" + string(rune('a'+i)), AppID: "a", UserID: "u",
				Script: coffeeScript,
				AtUnix: []int64{enter.Unix(), enter.Add(time.Minute).Unix()},
			}
			_, err := f.ExecuteSchedule(context.Background(), sched)
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(f.Tasks()) != 4 {
		t.Fatalf("tasks = %d", len(f.Tasks()))
	}
	for _, info := range f.Tasks() {
		if info.State != TaskStateDone {
			t.Fatalf("task %s state = %v", info.TaskID, info.State)
		}
	}
}

func TestBufferSharingSavesEnergy(t *testing.T) {
	// Two task instances whose schedules hit the same instants should
	// share provider buffers (§II-A: "each Provider maintains a data
	// buffer ... can even share them with multiple different tasks; in
	// this way, energy consumed for sensing can be reduced").
	s := &fakeSender{}
	f := newFrontend(t, world.Starbucks, s)
	// Both tasks measure at the same instant — the provider's single-slot
	// buffer serves the second task for free.
	at := []int64{enter.Unix()}
	script := "local t = get_temperature_readings(4, 5000) return #t"
	if _, err := f.ExecuteSchedule(context.Background(), &wire.Schedule{
		TaskID: "share-1", AppID: "a", UserID: "u", Script: script, AtUnix: at,
	}); err != nil {
		t.Fatal(err)
	}
	energyAfterFirst := f.Phone().EnergySpentMilliJ()
	if _, err := f.ExecuteSchedule(context.Background(), &wire.Schedule{
		TaskID: "share-2", AppID: "a", UserID: "u", Script: script, AtUnix: at,
	}); err != nil {
		t.Fatal(err)
	}
	energyAfterSecond := f.Phone().EnergySpentMilliJ()
	if energyAfterSecond != energyAfterFirst {
		t.Fatalf("second task re-acquired instead of sharing the buffer: %v -> %v",
			energyAfterFirst, energyAfterSecond)
	}
	stats := f.Phone().Manager().Stats()
	if stats.BufferHits < 1 {
		t.Fatalf("buffer hits = %d, want >= 1", stats.BufferHits)
	}
	// The shared reading still reaches both uploads.
	msgs := s.messages()
	if len(msgs) != 2 {
		t.Fatalf("uploads = %d", len(msgs))
	}
	for _, m := range msgs {
		up := m.(*wire.DataUpload)
		if len(up.Series) != 1 || len(up.Series[0].Samples) != 1 {
			t.Fatalf("upload %s series = %+v", up.TaskID, up.Series)
		}
	}
}
