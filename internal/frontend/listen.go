package frontend

import (
	"context"
	"sync"
	"sync/atomic"

	"sor/internal/wire"
)

// EventSource is the server-initiated side of a stream transport: the
// channel a session.Client exposes as Events(). The frontend deliberately
// names its own one-method view instead of importing the transport's Conn
// so HTTP-only builds pay nothing for the stream layer.
type EventSource interface {
	Events() <-chan wire.Message
}

// ListenStats counts what a Listen pump has consumed.
type ListenStats struct {
	Pings         int64 // wake-up pings answered (outbox drained)
	Schedules     int64 // schedule pushes recorded
	Invalidations int64 // epoch invalidations observed
	Others        int64 // messages with no device-side meaning
}

// listener is the per-frontend Listen state, created on first use.
type listener struct {
	mu     sync.Mutex
	scheds []*wire.Schedule

	pings         atomic.Int64
	schedules     atomic.Int64
	invalidations atomic.Int64
	others        atomic.Int64
}

func (f *Frontend) listenState() *listener {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.listen == nil {
		f.listen = &listener{}
	}
	return f.listen
}

// Listen pumps server-initiated events from a stream transport until ctx
// ends: wake-up pings trigger the ping/drain choreography HandlePing
// implements, pushed schedules are recorded for the caller to execute
// (PushedSchedules), and epoch invalidations are counted — a phone only
// caches rank responses transiently, so observing the invalidation is all
// the device side needs. Returns ctx.Err when the context ends. Run it on
// its own goroutine alongside the frontend's request/reply traffic.
func (f *Frontend) Listen(ctx context.Context, src EventSource) error {
	ls := f.listenState()
	events := src.Events()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case m, ok := <-events:
			if !ok {
				return nil
			}
			switch msg := m.(type) {
			case *wire.Ping:
				ls.pings.Add(1)
				// Best effort, exactly like a GCM wake-up: a failed drain
				// leaves reports parked for the next wake or explicit flush.
				_ = f.HandlePing(ctx)
			case *wire.Schedule:
				ls.schedules.Add(1)
				ls.mu.Lock()
				ls.scheds = append(ls.scheds, msg)
				ls.mu.Unlock()
			case *wire.EpochInvalidate:
				ls.invalidations.Add(1)
			default:
				ls.others.Add(1)
			}
		}
	}
}

// PushedSchedules drains and returns the schedules the server pushed
// since the last call, oldest first. The caller decides whether to
// execute them (ExecuteSchedule) — an unattended pump must not spend
// sensing budget on its own.
func (f *Frontend) PushedSchedules() []*wire.Schedule {
	ls := f.listenState()
	ls.mu.Lock()
	defer ls.mu.Unlock()
	out := ls.scheds
	ls.scheds = nil
	return out
}

// ListenStats snapshots the Listen pump's counters.
func (f *Frontend) ListenStats() ListenStats {
	ls := f.listenState()
	return ListenStats{
		Pings:         ls.pings.Load(),
		Schedules:     ls.schedules.Load(),
		Invalidations: ls.invalidations.Load(),
		Others:        ls.others.Load(),
	}
}
