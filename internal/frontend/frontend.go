// Package frontend implements SOR's Mobile Frontend (Fig. 3): the Message
// Handler that talks to the sensing server in binary-over-HTTP, the Local
// Preference Manager that lets a user withhold sensors, the Task Manager
// whose task instances execute the Lua sensing scripts delivered with each
// schedule, the Script Interpreter binding that maps get_*_readings()
// calls onto sensor Providers through the security whitelist, and a
// wake-lock that keeps the (simulated) phone awake during communication.
package frontend

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"sor/internal/device"
	"sor/internal/luascript"
	"sor/internal/sensors"
	"sor/internal/wire"
)

// Sender abstracts the transport used to reach the sensing server (the
// Message Handler's outbound side). transport.Client implements it.
type Sender interface {
	Send(ctx context.Context, m wire.Message) (wire.Message, error)
}

// WakeLock mimics powerManager.newWakeupLock(): the frontend holds it
// during communication and sensing so the phone cannot sleep.
type WakeLock struct {
	mu    sync.Mutex
	holds int
	peak  int
}

// Acquire takes the lock (counted).
func (w *WakeLock) Acquire() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.holds++
	if w.holds > w.peak {
		w.peak = w.holds
	}
}

// Release drops one hold; releasing an unheld lock is an error.
func (w *WakeLock) Release() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.holds == 0 {
		return errors.New("frontend: release of unheld wake lock")
	}
	w.holds--
	return nil
}

// Held reports whether the phone is being kept awake.
func (w *WakeLock) Held() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.holds > 0
}

// Peak reports the maximum concurrent holds (test instrumentation).
func (w *WakeLock) Peak() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.peak
}

// Preferences is the Local Preference Manager: per-acquisition-function
// consent. The paper's example: a user refusing to expose GPS locations.
type Preferences struct {
	mu     sync.RWMutex
	denied map[string]bool
}

// NewPreferences allows everything by default.
func NewPreferences() *Preferences {
	return &Preferences{denied: make(map[string]bool)}
}

// Deny forbids an acquisition function (e.g. device.FnLocation).
func (p *Preferences) Deny(funcName string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.denied[funcName] = true
}

// Allow re-permits a function.
func (p *Preferences) Allow(funcName string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.denied, funcName)
}

// Allowed reports consent for a function.
func (p *Preferences) Allowed(funcName string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return !p.denied[funcName]
}

// TaskState is a task instance's lifecycle (§II-A: "running, waiting for
// data, etc").
type TaskState int

// Task states.
const (
	TaskStateWaiting TaskState = iota + 1
	TaskStateRunning
	TaskStateDone
	TaskStateFailed
)

// String names the state.
func (s TaskState) String() string {
	switch s {
	case TaskStateWaiting:
		return "waiting"
	case TaskStateRunning:
		return "running"
	case TaskStateDone:
		return "done"
	case TaskStateFailed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// TaskInfo is a snapshot of one task instance.
type TaskInfo struct {
	TaskID       string
	AppID        string
	State        TaskState
	Measurements int
	Err          string
}

// Frontend is the mobile application instance running on one phone.
type Frontend struct {
	phone  *device.Phone
	sender Sender
	prefs  *Preferences
	wake   *WakeLock

	mu    sync.Mutex
	tasks map[string]*TaskInfo
}

// New builds a frontend for a phone.
func New(phone *device.Phone, sender Sender) (*Frontend, error) {
	if phone == nil {
		return nil, errors.New("frontend: nil phone")
	}
	if sender == nil {
		return nil, errors.New("frontend: nil sender")
	}
	return &Frontend{
		phone:  phone,
		sender: sender,
		prefs:  NewPreferences(),
		wake:   &WakeLock{},
		tasks:  make(map[string]*TaskInfo),
	}, nil
}

// Preferences exposes the Local Preference Manager.
func (f *Frontend) Preferences() *Preferences { return f.prefs }

// WakeLock exposes the wake lock (test instrumentation).
func (f *Frontend) WakeLock() *WakeLock { return f.wake }

// Phone returns the underlying device.
func (f *Frontend) Phone() *device.Phone { return f.phone }

// Tasks snapshots all task instances.
func (f *Frontend) Tasks() []TaskInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]TaskInfo, 0, len(f.tasks))
	for _, t := range f.tasks {
		out = append(out, *t)
	}
	return out
}

// Task returns one task snapshot.
func (f *Frontend) Task(taskID string) (TaskInfo, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	t, ok := f.tasks[taskID]
	if !ok {
		return TaskInfo{}, false
	}
	return *t, true
}

// Participate scans the 2D barcode payload (appID + server already known
// to the sender) and sends the participation request; on success the
// server replies with an Ack embedding this phone's Schedule.
func (f *Frontend) Participate(ctx context.Context, userID, appID string, budget int, leaveAfter time.Duration) (*wire.Schedule, error) {
	f.wake.Acquire()
	defer func() { _ = f.wake.Release() }()
	pos := f.phone.Position()
	req := &wire.Participate{
		UserID:        userID,
		Token:         f.phone.Token,
		AppID:         appID,
		Loc:           wire.Location{Lat: pos.Lat, Lon: pos.Lon, Alt: pos.Alt},
		Budget:        budget,
		LeaveAfterSec: int64(leaveAfter / time.Second),
	}
	resp, err := f.sender.Send(ctx, req)
	if err != nil {
		return nil, fmt.Errorf("frontend: participate: %w", err)
	}
	ack, ok := resp.(*wire.Ack)
	if !ok {
		return nil, fmt.Errorf("frontend: unexpected response %s", resp.Type())
	}
	if !ack.OK {
		return nil, fmt.Errorf("frontend: server refused participation: %s", ack.Message)
	}
	if len(ack.Payload) == 0 {
		return nil, errors.New("frontend: ack carried no schedule")
	}
	inner, err := wire.Decode(ack.Payload)
	if err != nil {
		return nil, fmt.Errorf("frontend: decoding schedule: %w", err)
	}
	sched, ok := inner.(*wire.Schedule)
	if !ok {
		return nil, fmt.Errorf("frontend: expected schedule, got %s", inner.Type())
	}
	return sched, nil
}

// Leave notifies the server the user left the place.
func (f *Frontend) Leave(ctx context.Context, userID, appID string) error {
	f.wake.Acquire()
	defer func() { _ = f.wake.Release() }()
	resp, err := f.sender.Send(ctx, &wire.Leave{UserID: userID, AppID: appID})
	if err != nil {
		return fmt.Errorf("frontend: leave: %w", err)
	}
	if ack, ok := resp.(*wire.Ack); ok && !ack.OK {
		return fmt.Errorf("frontend: leave refused: %s", ack.Message)
	}
	return nil
}

// defaultWindow is the paper's Δt when the script does not override it.
const defaultWindow = 5 * time.Second

// ExecuteSchedule runs a task instance to completion: for every scheduled
// instant it advances the phone clock, interprets the Lua script (which
// pulls data from providers through the whitelist), and finally uploads
// all collected samples to the server in one binary message.
func (f *Frontend) ExecuteSchedule(ctx context.Context, sched *wire.Schedule) (*wire.DataUpload, error) {
	if sched == nil {
		return nil, errors.New("frontend: nil schedule")
	}
	info := &TaskInfo{TaskID: sched.TaskID, AppID: sched.AppID, State: TaskStateWaiting}
	f.mu.Lock()
	if _, dup := f.tasks[sched.TaskID]; dup {
		f.mu.Unlock()
		return nil, fmt.Errorf("frontend: task %s already exists", sched.TaskID)
	}
	f.tasks[sched.TaskID] = info
	f.mu.Unlock()

	setState := func(s TaskState, err error) {
		f.mu.Lock()
		defer f.mu.Unlock()
		info.State = s
		if err != nil {
			info.Err = err.Error()
		}
	}
	setState(TaskStateRunning, nil)

	upload := &wire.DataUpload{
		TaskID: sched.TaskID,
		AppID:  sched.AppID,
		UserID: sched.UserID,
	}
	collector := newCollector(upload)

	chunk, err := luascript.Parse(sched.Script)
	if err != nil {
		setState(TaskStateFailed, err)
		return nil, fmt.Errorf("frontend: task script: %w", err)
	}

	for _, atUnix := range sched.AtUnix {
		if err := ctx.Err(); err != nil {
			setState(TaskStateFailed, err)
			return nil, fmt.Errorf("frontend: task cancelled: %w", err)
		}
		at := time.Unix(atUnix, 0).UTC()
		f.phone.SetTime(at)
		interp, err := f.newTaskInterp(ctx, at, collector)
		if err != nil {
			setState(TaskStateFailed, err)
			return nil, err
		}
		if _, err := interp.RunChunk(chunk); err != nil {
			setState(TaskStateFailed, err)
			return nil, fmt.Errorf("frontend: task %s at %v: %w", sched.TaskID, at, err)
		}
		f.mu.Lock()
		info.Measurements++
		f.mu.Unlock()
	}

	f.wake.Acquire()
	resp, err := f.sender.Send(ctx, upload)
	if relErr := f.wake.Release(); relErr != nil {
		setState(TaskStateFailed, relErr)
		return nil, relErr
	}
	if err != nil {
		setState(TaskStateFailed, err)
		return nil, fmt.Errorf("frontend: uploading data: %w", err)
	}
	if ack, ok := resp.(*wire.Ack); ok && !ack.OK {
		err := fmt.Errorf("frontend: upload refused: %s", ack.Message)
		setState(TaskStateFailed, err)
		return nil, err
	}
	setState(TaskStateDone, nil)
	return upload, nil
}

// HandlePing answers a push-channel wake-up by pinging the server (the
// paper's Google-Cloud-Messaging-assisted rendezvous).
func (f *Frontend) HandlePing(ctx context.Context) error {
	f.wake.Acquire()
	defer func() { _ = f.wake.Release() }()
	_, err := f.sender.Send(ctx, &wire.Ping{Token: f.phone.Token})
	return err
}

// newTaskInterp builds the per-measurement interpreter with the sensor
// host functions registered under the whitelist.
func (f *Frontend) newTaskInterp(ctx context.Context, at time.Time, col *collector) (*luascript.Interp, error) {
	whitelist := []string{
		device.FnTemperature, device.FnHumidity, device.FnLight,
		device.FnWiFi, device.FnNoise, device.FnAccel,
		device.FnAltitude, device.FnLocation,
	}
	interp := luascript.NewInterp(
		luascript.WithWhitelist(whitelist...),
		luascript.WithContext(ctx),
	)
	mgr := f.phone.Manager()
	for _, fn := range mgr.Functions() {
		if err := interp.Register(fn, f.hostFunc(ctx, fn, at, col)); err != nil {
			return nil, fmt.Errorf("frontend: binding %s: %w", fn, err)
		}
	}
	return interp, nil
}

// hostFunc adapts one acquisition function into a Lua host function:
// get_*_readings(count, window_ms) -> table of numbers;
// get_location(count) -> table of {lat, lon, alt} tables.
func (f *Frontend) hostFunc(ctx context.Context, fn string, at time.Time, col *collector) luascript.GoFunc {
	return func(args []luascript.Value) ([]luascript.Value, error) {
		if !f.prefs.Allowed(fn) {
			return nil, fmt.Errorf("sensor %s disabled by user preference", fn)
		}
		count := 1
		if len(args) > 0 {
			if n, ok := luascript.ToNumber(args[0]); ok && n >= 1 {
				count = int(n)
			}
		}
		window := defaultWindow
		if len(args) > 1 {
			if ms, ok := luascript.ToNumber(args[1]); ok && ms >= 0 {
				window = time.Duration(ms) * time.Millisecond
			}
		}
		reading, err := f.phone.Manager().Acquire(ctx, fn, sensors.Request{
			At: at, Count: count, Window: window,
		})
		if err != nil {
			return nil, err
		}
		col.record(fn, reading)
		if fn == device.FnLocation {
			out := luascript.NewTable()
			for _, pt := range reading.Points {
				entry := luascript.NewTable()
				if err := entry.Set("lat", pt.Lat); err != nil {
					return nil, err
				}
				if err := entry.Set("lon", pt.Lon); err != nil {
					return nil, err
				}
				if err := entry.Set("alt", pt.Alt); err != nil {
					return nil, err
				}
				out.Append(entry)
			}
			return []luascript.Value{out}, nil
		}
		out := luascript.NewTable()
		for _, v := range reading.Values {
			out.Append(v)
		}
		return []luascript.Value{out}, nil
	}
}

// collector accumulates readings into the pending DataUpload.
type collector struct {
	mu     sync.Mutex
	upload *wire.DataUpload
	series map[string]int // sensor name -> index in upload.Series
}

func newCollector(upload *wire.DataUpload) *collector {
	return &collector{upload: upload, series: make(map[string]int)}
}

// sensorName maps acquisition function names to upload series names.
var sensorName = map[string]string{
	device.FnTemperature: "temperature",
	device.FnHumidity:    "humidity",
	device.FnLight:       "light",
	device.FnWiFi:        "wifi",
	device.FnNoise:       "microphone",
	device.FnAccel:       "accelerometer",
	device.FnAltitude:    "barometer",
}

func (c *collector) record(fn string, r sensors.Reading) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if fn == device.FnLocation {
		for _, pt := range r.Points {
			c.upload.Track = append(c.upload.Track, wire.GeoPoint{
				AtUnixMilli: r.At.UnixMilli(),
				Lat:         pt.Lat, Lon: pt.Lon, Alt: pt.Alt,
			})
		}
		return
	}
	name, ok := sensorName[fn]
	if !ok {
		name = fn
	}
	idx, ok := c.series[name]
	if !ok {
		idx = len(c.upload.Series)
		c.upload.Series = append(c.upload.Series, wire.SensorSeries{Sensor: name})
		c.series[name] = idx
	}
	c.upload.Series[idx].Samples = append(c.upload.Series[idx].Samples, wire.SensorSample{
		AtUnixMilli: r.At.UnixMilli(),
		WindowMilli: int64(r.Window / time.Millisecond),
		Readings:    append([]float64(nil), r.Values...),
	})
}
