// Package frontend implements SOR's Mobile Frontend (Fig. 3): the Message
// Handler that talks to the sensing server in binary-over-HTTP, the Local
// Preference Manager that lets a user withhold sensors, the Task Manager
// whose task instances execute the Lua sensing scripts delivered with each
// schedule, the Script Interpreter binding that maps get_*_readings()
// calls onto sensor Providers through the security whitelist, and a
// wake-lock that keeps the (simulated) phone awake during communication.
package frontend

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"sor/internal/device"
	"sor/internal/luascript"
	"sor/internal/obs"
	"sor/internal/sensors"
	"sor/internal/transport"
	"sor/internal/vclock"
	"sor/internal/wire"
)

// Sender abstracts the transport used to reach the sensing server (the
// Message Handler's outbound side). transport.Client implements it.
type Sender interface {
	Send(ctx context.Context, m wire.Message) (wire.Message, error)
}

// WakeLock mimics powerManager.newWakeupLock(): the frontend holds it
// during communication and sensing so the phone cannot sleep.
type WakeLock struct {
	mu    sync.Mutex
	holds int
	peak  int
}

// Acquire takes the lock (counted).
func (w *WakeLock) Acquire() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.holds++
	if w.holds > w.peak {
		w.peak = w.holds
	}
}

// Release drops one hold; releasing an unheld lock is an error.
func (w *WakeLock) Release() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.holds == 0 {
		return errors.New("frontend: release of unheld wake lock")
	}
	w.holds--
	return nil
}

// Held reports whether the phone is being kept awake.
func (w *WakeLock) Held() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.holds > 0
}

// Peak reports the maximum concurrent holds (test instrumentation).
func (w *WakeLock) Peak() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.peak
}

// Preferences is the Local Preference Manager: per-acquisition-function
// consent. The paper's example: a user refusing to expose GPS locations.
type Preferences struct {
	mu     sync.RWMutex
	denied map[string]bool
}

// NewPreferences allows everything by default.
func NewPreferences() *Preferences {
	return &Preferences{denied: make(map[string]bool)}
}

// Deny forbids an acquisition function (e.g. device.FnLocation).
func (p *Preferences) Deny(funcName string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.denied[funcName] = true
}

// Allow re-permits a function.
func (p *Preferences) Allow(funcName string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.denied, funcName)
}

// Allowed reports consent for a function.
func (p *Preferences) Allowed(funcName string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return !p.denied[funcName]
}

// TaskState is a task instance's lifecycle (§II-A: "running, waiting for
// data, etc").
type TaskState int

// Task states.
const (
	TaskStateWaiting TaskState = iota + 1
	TaskStateRunning
	TaskStateDone
	TaskStateFailed
	// TaskStateUploadPending means sensing finished and the report sits in
	// the outbox waiting for the network to come back.
	TaskStateUploadPending
)

// String names the state.
func (s TaskState) String() string {
	switch s {
	case TaskStateWaiting:
		return "waiting"
	case TaskStateRunning:
		return "running"
	case TaskStateDone:
		return "done"
	case TaskStateFailed:
		return "failed"
	case TaskStateUploadPending:
		return "upload-pending"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// TaskInfo is a snapshot of one task instance.
type TaskInfo struct {
	TaskID       string
	AppID        string
	State        TaskState
	Measurements int
	Err          string
	// Gaps lists acquisitions that failed even after bounded retries and
	// were skipped, leaving a hole in the uploaded series instead of
	// failing the whole task.
	Gaps []string
}

// Frontend is the mobile application instance running on one phone.
type Frontend struct {
	phone  *device.Phone
	sender Sender
	prefs  *Preferences
	wake   *WakeLock
	outbox *Outbox

	acquireRetries int
	reportSeq      atomic.Int64

	// outbox construction knobs, consumed by New.
	outboxCapacity   int
	outboxBackoff    time.Duration
	outboxBackoffMax time.Duration
	outboxSeed       int64
	clock            vclock.Clock
	obsv             *obs.Observer

	mu     sync.Mutex
	tasks  map[string]*TaskInfo
	listen *listener
}

// defaultAcquireRetries is how many times a failed sensor acquisition is
// retried before the instant is skipped as a gap.
const defaultAcquireRetries = 2

// Option configures a Frontend.
type Option func(*Frontend)

// WithOutboxCapacity bounds the store-and-forward queue (default 256;
// overflow drops the oldest report).
func WithOutboxCapacity(n int) Option {
	return func(f *Frontend) { f.outboxCapacity = n }
}

// WithOutboxRetry applies a consolidated transport.Retry envelope to the
// outbox flush loop — the single replacement for WithOutboxBackoff +
// WithOutboxSeed. (Attempts is ignored: the outbox never gives up; its
// durability IS the retry budget.)
func WithOutboxRetry(r transport.Retry) Option {
	return func(f *Frontend) {
		f.outboxBackoff = r.ResolveBase(f.outboxBackoff)
		f.outboxBackoffMax = r.ResolveCap(f.outboxBackoffMax)
		if r.Seed != 0 {
			f.outboxSeed = r.Seed
		}
	}
}

// WithOutboxBackoff sets FlushOutbox's backoff base and cap.
//
// Deprecated: use WithOutboxRetry.
func WithOutboxBackoff(base, max time.Duration) Option {
	return func(f *Frontend) { f.outboxBackoff, f.outboxBackoffMax = base, max }
}

// WithOutboxSeed overrides the outbox jitter seed (tests; the default is
// derived from the device token so each phone jitters differently but
// deterministically).
//
// Deprecated: use WithOutboxRetry.
func WithOutboxSeed(seed int64) Option {
	return func(f *Frontend) { f.outboxSeed = seed }
}

// WithAcquireRetries sets how many times a failed acquisition is retried
// before being skipped as a gap (default 2).
func WithAcquireRetries(n int) Option {
	return func(f *Frontend) { f.acquireRetries = n }
}

// WithObserver instruments the frontend's outbox (depth, deliveries,
// drops). Passing the same observer to a fleet of frontends aggregates
// their series — the depth gauge then reads as fleet-wide backlog.
func WithObserver(o *obs.Observer) Option {
	return func(f *Frontend) { f.obsv = o }
}

// WithClock substitutes the clock backing the outbox's flush backoff.
// Simulations pass a *vclock.Virtual so FlushOutbox waits consume
// virtual, not wall, time; the default is the wall clock.
func WithClock(clk vclock.Clock) Option {
	return func(f *Frontend) { f.clock = clk }
}

// tokenSeed derives a stable per-phone jitter seed.
func tokenSeed(token string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(token))
	return int64(h.Sum64())
}

// New builds a frontend for a phone.
func New(phone *device.Phone, sender Sender, opts ...Option) (*Frontend, error) {
	if phone == nil {
		return nil, errors.New("frontend: nil phone")
	}
	if sender == nil {
		return nil, errors.New("frontend: nil sender")
	}
	f := &Frontend{
		phone:            phone,
		sender:           sender,
		prefs:            NewPreferences(),
		wake:             &WakeLock{},
		tasks:            make(map[string]*TaskInfo),
		acquireRetries:   defaultAcquireRetries,
		outboxCapacity:   defaultOutboxCapacity,
		outboxBackoff:    defaultOutboxBackoff,
		outboxBackoffMax: defaultOutboxBackoffCap,
		outboxSeed:       tokenSeed(phone.Token),
	}
	for _, o := range opts {
		o(f)
	}
	if f.outboxCapacity < 1 {
		return nil, errors.New("frontend: outbox capacity must be positive")
	}
	if f.acquireRetries < 0 {
		f.acquireRetries = 0
	}
	f.outbox = newOutbox(f.outboxCapacity, f.outboxBackoff, f.outboxBackoffMax, f.outboxSeed, f.clock)
	if f.obsv != nil {
		f.outbox.met = newOutboxMetrics(f.obsv.Metrics())
	}
	return f, nil
}

// Preferences exposes the Local Preference Manager.
func (f *Frontend) Preferences() *Preferences { return f.prefs }

// WakeLock exposes the wake lock (test instrumentation).
func (f *Frontend) WakeLock() *WakeLock { return f.wake }

// Phone returns the underlying device.
func (f *Frontend) Phone() *device.Phone { return f.phone }

// Outbox exposes the store-and-forward queue (stats, pending count).
func (f *Frontend) Outbox() *Outbox { return f.outbox }

// FlushOutbox drains pending uploads with backoff until empty or ctx ends.
func (f *Frontend) FlushOutbox(ctx context.Context) error {
	return f.outbox.Flush(ctx, f.sender)
}

// cloneInfo deep-copies a task snapshot (Gaps is a shared slice otherwise).
func cloneInfo(t *TaskInfo) TaskInfo {
	c := *t
	c.Gaps = append([]string(nil), t.Gaps...)
	return c
}

// Tasks snapshots all task instances.
func (f *Frontend) Tasks() []TaskInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]TaskInfo, 0, len(f.tasks))
	for _, t := range f.tasks {
		out = append(out, cloneInfo(t))
	}
	return out
}

// Task returns one task snapshot.
func (f *Frontend) Task(taskID string) (TaskInfo, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	t, ok := f.tasks[taskID]
	if !ok {
		return TaskInfo{}, false
	}
	return cloneInfo(t), true
}

// nextReportID mints a ReportID unique across this device's lifetime:
// token + task + a monotonically increasing sequence number. The server's
// dedup window keys on it to make retransmissions idempotent.
func (f *Frontend) nextReportID(taskID string) string {
	return fmt.Sprintf("%s/%s/%d", f.phone.Token, taskID, f.reportSeq.Add(1))
}

// Participate scans the 2D barcode payload (appID + server already known
// to the sender) and sends the participation request; on success the
// server replies with an Ack embedding this phone's Schedule.
func (f *Frontend) Participate(ctx context.Context, userID, appID string, budget int, leaveAfter time.Duration) (*wire.Schedule, error) {
	f.wake.Acquire()
	defer func() { _ = f.wake.Release() }()
	pos := f.phone.Position()
	req := &wire.Participate{
		UserID:        userID,
		Token:         f.phone.Token,
		AppID:         appID,
		Loc:           wire.Location{Lat: pos.Lat, Lon: pos.Lon, Alt: pos.Alt},
		Budget:        budget,
		LeaveAfterSec: int64(leaveAfter / time.Second),
	}
	resp, err := f.sender.Send(ctx, req)
	if err != nil {
		return nil, fmt.Errorf("frontend: participate: %w", err)
	}
	ack, ok := resp.(*wire.Ack)
	if !ok {
		return nil, fmt.Errorf("frontend: unexpected response %s", resp.Type())
	}
	if !ack.OK {
		return nil, fmt.Errorf("frontend: server refused participation: %s", ack.Message)
	}
	if len(ack.Payload) == 0 {
		return nil, errors.New("frontend: ack carried no schedule")
	}
	inner, err := wire.Decode(ack.Payload)
	if err != nil {
		return nil, fmt.Errorf("frontend: decoding schedule: %w", err)
	}
	sched, ok := inner.(*wire.Schedule)
	if !ok {
		return nil, fmt.Errorf("frontend: expected schedule, got %s", inner.Type())
	}
	return sched, nil
}

// Leave notifies the server the user left the place.
func (f *Frontend) Leave(ctx context.Context, userID, appID string) error {
	f.wake.Acquire()
	defer func() { _ = f.wake.Release() }()
	resp, err := f.sender.Send(ctx, &wire.Leave{UserID: userID, AppID: appID})
	if err != nil {
		return fmt.Errorf("frontend: leave: %w", err)
	}
	if ack, ok := resp.(*wire.Ack); ok && !ack.OK {
		return fmt.Errorf("frontend: leave refused: %s", ack.Message)
	}
	return nil
}

// defaultWindow is the paper's Δt when the script does not override it.
const defaultWindow = 5 * time.Second

// ExecuteSchedule runs a task instance to completion: for every scheduled
// instant it advances the phone clock, interprets the Lua script (which
// pulls data from providers through the whitelist), and finally uploads
// all collected samples to the server in one binary message.
func (f *Frontend) ExecuteSchedule(ctx context.Context, sched *wire.Schedule) (*wire.DataUpload, error) {
	if sched == nil {
		return nil, errors.New("frontend: nil schedule")
	}
	info := &TaskInfo{TaskID: sched.TaskID, AppID: sched.AppID, State: TaskStateWaiting}
	f.mu.Lock()
	if _, dup := f.tasks[sched.TaskID]; dup {
		f.mu.Unlock()
		return nil, fmt.Errorf("frontend: task %s already exists", sched.TaskID)
	}
	f.tasks[sched.TaskID] = info
	f.mu.Unlock()

	setState := func(s TaskState, err error) {
		f.mu.Lock()
		defer f.mu.Unlock()
		info.State = s
		if err != nil {
			info.Err = err.Error()
		}
	}
	setState(TaskStateRunning, nil)

	upload := &wire.DataUpload{
		TaskID: sched.TaskID,
		AppID:  sched.AppID,
		UserID: sched.UserID,
	}
	collector := newCollector(upload)

	chunk, err := luascript.Parse(sched.Script)
	if err != nil {
		setState(TaskStateFailed, err)
		return nil, fmt.Errorf("frontend: task script: %w", err)
	}

	for _, atUnix := range sched.AtUnix {
		if err := ctx.Err(); err != nil {
			setState(TaskStateFailed, err)
			return nil, fmt.Errorf("frontend: task cancelled: %w", err)
		}
		at := time.Unix(atUnix, 0).UTC()
		f.phone.SetTime(at)
		interp, err := f.newTaskInterp(ctx, sched.TaskID, at, collector)
		if err != nil {
			setState(TaskStateFailed, err)
			return nil, err
		}
		if _, err := interp.RunChunk(chunk); err != nil {
			setState(TaskStateFailed, err)
			return nil, fmt.Errorf("frontend: task %s at %v: %w", sched.TaskID, at, err)
		}
		f.mu.Lock()
		info.Measurements++
		f.mu.Unlock()
	}

	// Sensing is done: hand the report to the store-and-forward outbox.
	// The task's fate now depends only on delivery — a dead network parks
	// it in upload-pending instead of failing it; the outbox retries on
	// every drain trigger (ping wake-ups, later tasks, explicit flush).
	upload.ReportID = f.nextReportID(sched.TaskID)
	setState(TaskStateUploadPending, nil)
	f.outbox.Enqueue(upload, func(delivered bool, reason string) {
		f.mu.Lock()
		defer f.mu.Unlock()
		if delivered {
			info.State = TaskStateDone
			return
		}
		info.State = TaskStateFailed
		info.Err = fmt.Sprintf("upload refused: %s", reason)
	})
	f.wake.Acquire()
	drainErr := f.outbox.drainOnce(ctx, f.sender)
	if relErr := f.wake.Release(); relErr != nil {
		setState(TaskStateFailed, relErr)
		return nil, relErr
	}
	_ = drainErr // transport failure: report stays queued, task stays pending
	f.mu.Lock()
	state, errMsg := info.State, info.Err
	f.mu.Unlock()
	if state == TaskStateFailed {
		return nil, fmt.Errorf("frontend: %s", errMsg)
	}
	return upload, nil
}

// HandlePing answers a push-channel wake-up by pinging the server (the
// paper's Google-Cloud-Messaging-assisted rendezvous) and then drains any
// reports stranded in the outbox — the wake-up doubles as the signal that
// the network is back.
func (f *Frontend) HandlePing(ctx context.Context) error {
	f.wake.Acquire()
	defer func() { _ = f.wake.Release() }()
	if _, err := f.sender.Send(ctx, &wire.Ping{Token: f.phone.Token}); err != nil {
		return err
	}
	if f.outbox.Pending() > 0 {
		return f.outbox.drainOnce(ctx, f.sender)
	}
	return nil
}

// newTaskInterp builds the per-measurement interpreter with the sensor
// host functions registered under the whitelist.
func (f *Frontend) newTaskInterp(ctx context.Context, taskID string, at time.Time, col *collector) (*luascript.Interp, error) {
	whitelist := []string{
		device.FnTemperature, device.FnHumidity, device.FnLight,
		device.FnWiFi, device.FnNoise, device.FnAccel,
		device.FnAltitude, device.FnLocation,
	}
	interp := luascript.NewInterp(
		luascript.WithWhitelist(whitelist...),
		luascript.WithContext(ctx),
	)
	mgr := f.phone.Manager()
	for _, fn := range mgr.Functions() {
		if err := interp.Register(fn, f.hostFunc(ctx, taskID, fn, at, col)); err != nil {
			return nil, fmt.Errorf("frontend: binding %s: %w", fn, err)
		}
	}
	return interp, nil
}

// recordGap notes a skipped acquisition on the task (sensor@instant).
func (f *Frontend) recordGap(taskID, fn string, at time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if info, ok := f.tasks[taskID]; ok {
		info.Gaps = append(info.Gaps, fmt.Sprintf("%s@%s", fn, at.UTC().Format(time.RFC3339)))
	}
}

// acquireWithRetry retries a failed acquisition up to acquireRetries times
// (on top of whatever retries the provider itself does — e.g. the
// Bluetooth link's own transient-failure loop). Cancellation stops the
// loop immediately.
func (f *Frontend) acquireWithRetry(ctx context.Context, fn string, req sensors.Request) (sensors.Reading, error) {
	var lastErr error
	for attempt := 0; attempt <= f.acquireRetries; attempt++ {
		reading, err := f.phone.Manager().Acquire(ctx, fn, req)
		if err == nil {
			return reading, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	return sensors.Reading{}, lastErr
}

// hostFunc adapts one acquisition function into a Lua host function:
// get_*_readings(count, window_ms) -> table of numbers;
// get_location(count) -> table of {lat, lon, alt} tables.
func (f *Frontend) hostFunc(ctx context.Context, taskID, fn string, at time.Time, col *collector) luascript.GoFunc {
	return func(args []luascript.Value) ([]luascript.Value, error) {
		if !f.prefs.Allowed(fn) {
			return nil, fmt.Errorf("sensor %s disabled by user preference", fn)
		}
		count := 1
		if len(args) > 0 {
			if n, ok := luascript.ToNumber(args[0]); ok && n >= 1 {
				count = int(n)
			}
		}
		window := defaultWindow
		if len(args) > 1 {
			if ms, ok := luascript.ToNumber(args[1]); ok && ms >= 0 {
				window = time.Duration(ms) * time.Millisecond
			}
		}
		reading, err := f.acquireWithRetry(ctx, fn, sensors.Request{
			At: at, Count: count, Window: window,
		})
		if err != nil {
			if ctx.Err() != nil {
				return nil, err
			}
			// The sensor kept failing after bounded retries (e.g. a flaky
			// Bluetooth multisensor). Degrade gracefully: record the gap,
			// hand the script an empty table, and let the task's other
			// sensors still produce a partial upload.
			f.recordGap(taskID, fn, at)
			return []luascript.Value{luascript.NewTable()}, nil
		}
		col.record(fn, reading)
		if fn == device.FnLocation {
			out := luascript.NewTable()
			for _, pt := range reading.Points {
				entry := luascript.NewTable()
				if err := entry.Set("lat", pt.Lat); err != nil {
					return nil, err
				}
				if err := entry.Set("lon", pt.Lon); err != nil {
					return nil, err
				}
				if err := entry.Set("alt", pt.Alt); err != nil {
					return nil, err
				}
				out.Append(entry)
			}
			return []luascript.Value{out}, nil
		}
		out := luascript.NewTable()
		for _, v := range reading.Values {
			out.Append(v)
		}
		return []luascript.Value{out}, nil
	}
}

// collector accumulates readings into the pending DataUpload.
type collector struct {
	mu     sync.Mutex
	upload *wire.DataUpload
	series map[string]int // sensor name -> index in upload.Series
}

func newCollector(upload *wire.DataUpload) *collector {
	return &collector{upload: upload, series: make(map[string]int)}
}

// sensorName maps acquisition function names to upload series names.
var sensorName = map[string]string{
	device.FnTemperature: "temperature",
	device.FnHumidity:    "humidity",
	device.FnLight:       "light",
	device.FnWiFi:        "wifi",
	device.FnNoise:       "microphone",
	device.FnAccel:       "accelerometer",
	device.FnAltitude:    "barometer",
}

func (c *collector) record(fn string, r sensors.Reading) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if fn == device.FnLocation {
		for _, pt := range r.Points {
			c.upload.Track = append(c.upload.Track, wire.GeoPoint{
				AtUnixMilli: r.At.UnixMilli(),
				Lat:         pt.Lat, Lon: pt.Lon, Alt: pt.Alt,
			})
		}
		return
	}
	name, ok := sensorName[fn]
	if !ok {
		name = fn
	}
	idx, ok := c.series[name]
	if !ok {
		idx = len(c.upload.Series)
		c.upload.Series = append(c.upload.Series, wire.SensorSeries{Sensor: name})
		c.series[name] = idx
	}
	c.upload.Series[idx].Samples = append(c.upload.Series[idx].Samples, wire.SensorSample{
		AtUnixMilli: r.At.UnixMilli(),
		WindowMilli: int64(r.Window / time.Millisecond),
		Readings:    append([]float64(nil), r.Values...),
	})
}
