package frontend

import (
	"context"
	"testing"
	"time"

	"sor/internal/wire"
	"sor/internal/world"
)

// chanSource is a hand-fed EventSource.
type chanSource struct{ ch chan wire.Message }

func (s *chanSource) Events() <-chan wire.Message { return s.ch }

// TestListenPumpsEvents pins the event pump: pings answer with the
// HandlePing choreography, schedules accumulate for the caller, epoch
// invalidations are counted, and the pump exits with the context.
func TestListenPumpsEvents(t *testing.T) {
	s := &fakeSender{}
	f := newFrontend(t, world.BNCafe, s)
	src := &chanSource{ch: make(chan wire.Message, 8)}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- f.Listen(ctx, src) }()

	src.ch <- &wire.Ping{Token: "tok-1"}
	src.ch <- &wire.Schedule{AppID: "app-1", TaskID: "task-1"}
	src.ch <- &wire.Schedule{AppID: "app-1", TaskID: "task-2"}
	src.ch <- &wire.EpochInvalidate{Category: "coffee-shop", Epoch: 3}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := f.ListenStats()
		if st.Pings == 1 && st.Schedules == 2 && st.Invalidations == 1 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st := f.ListenStats(); st.Pings != 1 || st.Schedules != 2 || st.Invalidations != 1 {
		t.Fatalf("stats = %+v after events", st)
	}

	// The ping reached the server through the sender (wake-up answered).
	pinged := false
	for _, m := range s.messages() {
		if _, ok := m.(*wire.Ping); ok {
			pinged = true
		}
	}
	if !pinged {
		t.Fatal("wake-up ping was not answered")
	}

	// Pushed schedules drain oldest-first and only once.
	scheds := f.PushedSchedules()
	if len(scheds) != 2 || scheds[0].TaskID != "task-1" || scheds[1].TaskID != "task-2" {
		t.Fatalf("pushed schedules = %+v", scheds)
	}
	if got := f.PushedSchedules(); len(got) != 0 {
		t.Fatalf("second drain returned %d schedules", len(got))
	}

	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Listen returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Listen did not exit on cancel")
	}
}
