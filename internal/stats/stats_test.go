package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestWelfordAgainstNaive(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if got := w.Mean(); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("mean = %v, want 5", got)
	}
	if got := w.Variance(); !almostEqual(got, 4, 1e-12) {
		t.Fatalf("variance = %v, want 4", got)
	}
	if got := w.StdDev(); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("stddev = %v, want 2", got)
	}
	if got := w.N(); got != len(xs) {
		t.Fatalf("n = %d, want %d", got, len(xs))
	}
}

func TestWelfordSampleVariance(t *testing.T) {
	var w Welford
	for _, x := range []float64{1, 2, 3, 4} {
		w.Add(x)
	}
	// sample variance of 1..4 is 5/3
	if got := w.SampleVariance(); !almostEqual(got, 5.0/3.0, 1e-12) {
		t.Fatalf("sample variance = %v, want %v", got, 5.0/3.0)
	}
}

func TestWelfordFewObservations(t *testing.T) {
	var w Welford
	if w.Variance() != 0 || w.SampleVariance() != 0 || w.Mean() != 0 {
		t.Fatal("zero-value Welford must report zeros")
	}
	w.Add(42)
	if w.Variance() != 0 {
		t.Fatal("single observation variance must be 0")
	}
	if w.Mean() != 42 {
		t.Fatalf("mean = %v, want 42", w.Mean())
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
	}
	var whole Welford
	for _, x := range xs {
		whole.Add(x)
	}
	var left, right Welford
	for _, x := range xs[:400] {
		left.Add(x)
	}
	for _, x := range xs[400:] {
		right.Add(x)
	}
	left.Merge(right)
	if !almostEqual(left.Mean(), whole.Mean(), 1e-9) {
		t.Fatalf("merged mean %v != %v", left.Mean(), whole.Mean())
	}
	if !almostEqual(left.Variance(), whole.Variance(), 1e-9) {
		t.Fatalf("merged variance %v != %v", left.Variance(), whole.Variance())
	}
}

func TestWelfordMergeEmptySides(t *testing.T) {
	var a, b Welford
	b.Add(1)
	b.Add(3)
	a.Merge(b) // empty receiver adopts other
	if a.N() != 2 || !almostEqual(a.Mean(), 2, 1e-12) {
		t.Fatalf("merge into empty: n=%d mean=%v", a.N(), a.Mean())
	}
	var empty Welford
	a.Merge(empty) // merging empty is a no-op
	if a.N() != 2 {
		t.Fatalf("merge empty changed n to %d", a.N())
	}
}

func TestAggregatesEmpty(t *testing.T) {
	if _, err := Mean(nil); err == nil {
		t.Fatal("Mean(nil) must error")
	}
	if _, err := StdDev(nil); err == nil {
		t.Fatal("StdDev(nil) must error")
	}
	if _, _, err := MeanStd(nil); err == nil {
		t.Fatal("MeanStd(nil) must error")
	}
	if _, err := Min(nil); err == nil {
		t.Fatal("Min(nil) must error")
	}
	if _, err := Max(nil); err == nil {
		t.Fatal("Max(nil) must error")
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Fatal("Quantile(nil) must error")
	}
	if _, err := RMS(nil); err == nil {
		t.Fatal("RMS(nil) must error")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5, -9, 2, 6}
	lo, err := Min(xs)
	if err != nil || lo != -9 {
		t.Fatalf("Min = %v, %v", lo, err)
	}
	hi, err := Max(xs)
	if err != nil || hi != 6 {
		t.Fatalf("Max = %v, %v", hi, err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.125, 1.5},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", c.q, err)
		}
		if !almostEqual(got, c.want, 1e-12) {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("out-of-range quantile must error")
	}
	if _, err := Quantile(xs, -0.1); err == nil {
		t.Fatal("negative quantile must error")
	}
	one, err := Quantile([]float64{9}, 0.99)
	if err != nil || one != 9 {
		t.Fatalf("singleton quantile = %v, %v", one, err)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 3}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestRMS(t *testing.T) {
	got, err := RMS([]float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(12.5)
	if !almostEqual(got, want, 1e-12) {
		t.Fatalf("RMS = %v, want %v", got, want)
	}
}

func TestSplitDeterminism(t *testing.T) {
	a := NewRand(99)
	b := NewRand(99)
	ca, cb := Split(a), Split(b)
	for i := 0; i < 32; i++ {
		if ca.Int63() != cb.Int63() {
			t.Fatal("split children diverged for identical parents")
		}
	}
}

// Property: Welford mean always lies within [min, max] of the inputs, and
// variance is non-negative.
func TestWelfordBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		var w Welford
		lo, hi := clean[0], clean[0]
		for _, x := range clean {
			w.Add(x)
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return w.Mean() >= lo-1e-6 && w.Mean() <= hi+1e-6 && w.Variance() >= -1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: merging a random split equals sequential accumulation.
func TestWelfordMergeProperty(t *testing.T) {
	f := func(xs []float64, cut uint8) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		k := 0
		if len(clean) > 0 {
			k = int(cut) % (len(clean) + 1)
		}
		var whole, left, right Welford
		for _, x := range clean {
			whole.Add(x)
		}
		for _, x := range clean[:k] {
			left.Add(x)
		}
		for _, x := range clean[k:] {
			right.Add(x)
		}
		left.Merge(right)
		return left.N() == whole.N() &&
			almostEqual(left.Mean(), whole.Mean(), 1e-6) &&
			almostEqual(left.Variance(), whole.Variance(), 1e-4)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
