package stats

import (
	"math"
	"strings"
	"testing"
)

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(nil); err == nil {
		t.Fatal("empty bounds must error")
	}
	if _, err := NewHistogram([]float64{1, 1}); err == nil {
		t.Fatal("non-increasing bounds must error")
	}
	if _, err := NewHistogram([]float64{1, math.NaN()}); err == nil {
		t.Fatal("NaN bound must error")
	}
}

func TestHistogramBucketing(t *testing.T) {
	h, err := NewHistogram([]float64{1, 10, 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.5, 1} { // both land in ≤1
		h.Add(x)
	}
	h.Add(5)    // ≤10
	h.Add(50)   // ≤100
	h.Add(5000) // overflow
	h.Add(math.NaN())
	if h.N() != 5 {
		t.Fatalf("N = %d, want 5 (NaN dropped)", h.N())
	}
	want := []int{2, 1, 1, 1}
	for i, c := range h.counts {
		if c != want[i] {
			t.Fatalf("bucket %d: count %d, want %d", i, c, want[i])
		}
	}
	if h.Min() != 0.5 || h.Max() != 5000 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	wantMean := (0.5 + 1 + 5 + 50 + 5000) / 5
	if math.Abs(h.Mean()-wantMean) > 1e-12 {
		t.Fatalf("mean %v, want %v", h.Mean(), wantMean)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewLatencyHistogram()
	if _, err := h.Quantile(0.5); err == nil {
		t.Fatal("quantile of empty histogram must error")
	}
	for i := 0; i < 90; i++ {
		h.Add(3) // ≤5 bucket
	}
	for i := 0; i < 10; i++ {
		h.Add(150) // ≤200 bucket
	}
	if _, err := h.Quantile(1.5); err == nil {
		t.Fatal("quantile > 1 must error")
	}
	p50, err := h.Quantile(0.5)
	if err != nil || p50 != 5 {
		t.Fatalf("p50 = %v (err %v), want bucket bound 5", p50, err)
	}
	p99, err := h.Quantile(0.99)
	if err != nil || p99 != 200 {
		t.Fatalf("p99 = %v (err %v), want bucket bound 200", p99, err)
	}
	h.Add(99999) // overflow: quantile falls back to the exact max
	p100, err := h.Quantile(1)
	if err != nil || p100 != 99999 {
		t.Fatalf("p100 = %v (err %v), want exact max", p100, err)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewLatencyHistogram()
	b := NewLatencyHistogram()
	a.Add(1)
	b.Add(100)
	b.Add(3000)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != 3 || a.Min() != 1 || a.Max() != 3000 {
		t.Fatalf("merged N/min/max = %d/%v/%v", a.N(), a.Min(), a.Max())
	}
	other, err := NewHistogram([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(other); err == nil {
		t.Fatal("merging mismatched bounds must error")
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewLatencyHistogram()
	if got := h.Render(40, "ms"); !strings.Contains(got, "no observations") {
		t.Fatalf("empty render = %q", got)
	}
	for i := 0; i < 8; i++ {
		h.Add(4)
	}
	h.Add(40)
	h.Add(9000) // overflow bucket
	got := h.Render(20, "ms")
	if !strings.Contains(got, "≤5ms") || !strings.Contains(got, ">5000ms") {
		t.Fatalf("render missing labels:\n%s", got)
	}
	if !strings.Contains(got, "█") {
		t.Fatalf("render has no bars:\n%s", got)
	}
	lines := strings.Split(got, "\n")
	// Buckets between ≤50 and the overflow are empty but inside the
	// rendered range, so they appear with zero counts.
	if len(lines) < 3 {
		t.Fatalf("render too short:\n%s", got)
	}
}
