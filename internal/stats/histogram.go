package stats

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bound bucket histogram for latency-style
// measurements. Bounds are upper edges; one implicit overflow bucket
// catches everything past the last bound. It is not safe for concurrent
// use — the load generator keeps one per worker and merges at the end.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds
	counts []int     // len(bounds)+1; last is overflow
	n      int
	sum    float64
	min    float64
	max    float64
}

// NewHistogram builds a histogram over strictly increasing upper bounds.
func NewHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, errors.New("stats: histogram needs at least one bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return nil, fmt.Errorf("stats: invalid bound %v", b)
		}
		if i > 0 && b <= bounds[i-1] {
			return nil, fmt.Errorf("stats: bounds not increasing at %d (%v after %v)",
				i, b, bounds[i-1])
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]int, len(bounds)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}, nil
}

// NewLatencyHistogram returns the canonical millisecond-latency histogram
// (0.5 ms … 5 s, roughly 1-2-5 per decade).
func NewLatencyHistogram() *Histogram {
	h, err := NewHistogram([]float64{0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000})
	if err != nil {
		panic(err) // bounds are a compile-time constant
	}
	return h
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	h.counts[h.bucket(x)]++
	h.n++
	h.sum += x
	h.min = math.Min(h.min, x)
	h.max = math.Max(h.max, x)
}

// bucket returns the index of the first bucket whose bound is >= x (binary
// search; the overflow bucket if none is).
func (h *Histogram) bucket(x float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if x <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// N returns the observation count.
func (h *Histogram) N() int { return h.n }

// Mean returns the exact mean of all observations (tracked outside the
// buckets, so it carries no quantization error).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min and Max return the exact extremes (0 when empty).
func (h *Histogram) Min() float64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Bounds returns a copy of the bucket upper bounds.
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// Counts returns a copy of the per-bucket counts; the last entry is the
// overflow bucket past the final bound.
func (h *Histogram) Counts() []int { return append([]int(nil), h.counts...) }

// Quantile approximates the q-quantile as the upper bound of the bucket
// where the cumulative count crosses q·n (the exact maximum for the
// overflow bucket). Error is bounded by the bucket width.
func (h *Histogram) Quantile(q float64) (float64, error) {
	if h.n == 0 {
		return 0, errors.New("stats: quantile of empty histogram")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	rank := int(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	cum := 0
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i], nil
			}
			return h.max, nil
		}
	}
	return h.max, nil
}

// Merge folds another histogram with identical bounds into this one.
func (h *Histogram) Merge(o *Histogram) error {
	if len(o.bounds) != len(h.bounds) {
		return fmt.Errorf("stats: merging %d-bucket histogram into %d buckets",
			len(o.bounds), len(h.bounds))
	}
	for i, b := range h.bounds {
		if o.bounds[i] != b {
			return fmt.Errorf("stats: bound mismatch at %d: %v vs %v", i, o.bounds[i], b)
		}
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	h.sum += o.sum
	h.min = math.Min(h.min, o.min)
	h.max = math.Max(h.max, o.max)
	return nil
}

// Render draws the histogram as ASCII bars of at most width characters,
// skipping empty leading/trailing buckets. Unit labels the bounds.
func (h *Histogram) Render(width int, unit string) string {
	if h.n == 0 {
		return "  (no observations)"
	}
	if width < 1 {
		width = 40
	}
	first, last, peak := len(h.counts), -1, 0
	for i, c := range h.counts {
		if c > 0 {
			if i < first {
				first = i
			}
			last = i
			if c > peak {
				peak = c
			}
		}
	}
	var sb strings.Builder
	for i := first; i <= last; i++ {
		label := fmt.Sprintf(">%g%s", h.bounds[len(h.bounds)-1], unit)
		if i < len(h.bounds) {
			label = fmt.Sprintf("≤%g%s", h.bounds[i], unit)
		}
		bar := strings.Repeat("█", (h.counts[i]*width+peak-1)/peak)
		if h.counts[i] == 0 {
			bar = ""
		}
		fmt.Fprintf(&sb, "  %10s %6d %s\n", label, h.counts[i], bar)
	}
	return strings.TrimRight(sb.String(), "\n")
}
