// Package stats provides small statistical utilities used throughout SOR:
// streaming mean/variance (Welford), simple aggregates, quantiles, and a
// deterministic RNG splitter so concurrent simulations stay reproducible.
package stats

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// ErrEmpty is returned by aggregates that are undefined on empty input.
var ErrEmpty = errors.New("stats: empty input")

// Welford accumulates a running mean and variance in a single pass using
// Welford's numerically stable online algorithm. The zero value is ready to
// use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N reports the number of observations added so far.
func (w *Welford) N() int { return w.n }

// Mean reports the running mean, or 0 when no observations were added.
func (w *Welford) Mean() float64 { return w.mean }

// Variance reports the population variance, or 0 for fewer than two
// observations.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVariance reports the Bessel-corrected sample variance, or 0 for
// fewer than two observations.
func (w *Welford) SampleVariance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev reports the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Merge combines another accumulator into this one (parallel Welford).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	mean := w.mean + delta*float64(o.n)/float64(n)
	m2 := w.m2 + o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.n, w.mean, w.m2 = n, mean, m2
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.Mean(), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.StdDev(), nil
}

// MeanStd returns both the mean and the population standard deviation.
func MeanStd(xs []float64) (mean, std float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.Mean(), w.StdDev(), nil
}

// Min returns the smallest element of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks. xs is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, errors.New("stats: quantile out of range [0,1]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// RMS returns the root mean square of xs.
func RMS(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for _, x := range xs {
		sum += x * x
	}
	return math.Sqrt(sum / float64(len(xs))), nil
}

// Split derives a child RNG from a parent deterministically. Simulations
// hand one child per logical actor so goroutine interleaving cannot change
// the sampled values.
func Split(parent *rand.Rand) *rand.Rand {
	return rand.New(rand.NewSource(parent.Int63()))
}

// NewRand returns a seeded *rand.Rand, the single entry point simulations
// use so every run is reproducible from one seed.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
