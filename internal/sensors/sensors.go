// Package sensors implements the Sensor Manager / Provider architecture of
// SOR's mobile frontend (Fig. 3). A Provider operates one embedded or
// external sensor; the Manager keeps the registry of providers keyed by
// the data-acquisition function names exposed to Lua scripts
// (get_light_readings, get_location, …), shares each provider's data
// buffer across concurrent tasks to save energy, performs acquisition
// asynchronously, and cancels it on timeout — all behaviours §II-A calls
// out explicitly.
package sensors

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"sor/internal/geo"
)

// Source distinguishes embedded sensors from external (Bluetooth) ones.
type Source int

// Sources.
const (
	SourceEmbedded Source = iota + 1
	SourceExternal
)

// String names the source.
func (s Source) String() string {
	switch s {
	case SourceEmbedded:
		return "embedded"
	case SourceExternal:
		return "external"
	default:
		return fmt.Sprintf("source(%d)", int(s))
	}
}

// Reading is one acquisition result: scalar values and/or located points
// taken within [At, At+Window].
type Reading struct {
	At     time.Time
	Window time.Duration
	Values []float64
	Points []geo.Point
}

// Request parameterizes an acquisition.
type Request struct {
	// At is the (simulated) time of the measurement.
	At time.Time
	// Count is how many readings to take within the window.
	Count int
	// Window is the paper's Δt.
	Window time.Duration
}

// Validate checks the request.
func (r Request) Validate() error {
	if r.Count <= 0 {
		return errors.New("sensors: request needs count > 0")
	}
	if r.Count > 1<<16 {
		return fmt.Errorf("sensors: request count %d unreasonably large", r.Count)
	}
	if r.Window < 0 {
		return errors.New("sensors: negative window")
	}
	return nil
}

// Provider operates one sensor.
type Provider interface {
	// Kind names the sensor ("light", "gps", ...).
	Kind() string
	// Source reports embedded vs external.
	Source() Source
	// Acquire performs one acquisition. Implementations must honour ctx.
	Acquire(ctx context.Context, req Request) (Reading, error)
}

// FuncProvider adapts a closure into a Provider; the device package uses
// it to wire the simulated world into the sensor architecture.
type FuncProvider struct {
	SensorKind   string
	SensorSource Source
	// Latency simulates acquisition time (e.g. Bluetooth round trips).
	Latency time.Duration
	// Sample produces the reading.
	Sample func(req Request) (Reading, error)
}

var _ Provider = (*FuncProvider)(nil)

// Kind implements Provider.
func (p *FuncProvider) Kind() string { return p.SensorKind }

// Source implements Provider.
func (p *FuncProvider) Source() Source { return p.SensorSource }

// Acquire implements Provider.
func (p *FuncProvider) Acquire(ctx context.Context, req Request) (Reading, error) {
	if err := req.Validate(); err != nil {
		return Reading{}, err
	}
	if p.Latency > 0 {
		select {
		case <-time.After(p.Latency):
		case <-ctx.Done():
			return Reading{}, fmt.Errorf("sensors: %s acquisition cancelled: %w", p.SensorKind, ctx.Err())
		}
	}
	if p.Sample == nil {
		return Reading{}, fmt.Errorf("sensors: provider %s has no sampler", p.SensorKind)
	}
	return p.Sample(req)
}

// Stats counts manager activity; BufferHits measure the energy saved by
// sharing buffered data across tasks.
type Stats struct {
	Acquisitions int
	BufferHits   int
	Timeouts     int
	Errors       int
}

// Manager is the provider registry (the Sensor Manager + Provider Register
// of Fig. 3).
type Manager struct {
	mu        sync.Mutex
	providers map[string]Provider // acquisition function name -> provider
	buffers   map[string]Reading  // last reading per function name
	bufferAge map[string]time.Time
	ttl       time.Duration
	timeout   time.Duration
	stats     Stats
}

// ManagerOption configures a Manager.
type ManagerOption func(*Manager)

// WithBufferTTL sets how long a buffered reading may be re-served
// (default 5 s of simulated time relative to the request's At).
func WithBufferTTL(ttl time.Duration) ManagerOption {
	return func(m *Manager) { m.ttl = ttl }
}

// WithAcquireTimeout bounds each provider acquisition in wall-clock time
// (default 2 s) — the paper's "the manager can cancel data acquisition if
// timeout".
func WithAcquireTimeout(d time.Duration) ManagerOption {
	return func(m *Manager) { m.timeout = d }
}

// NewManager creates an empty manager.
func NewManager(opts ...ManagerOption) *Manager {
	m := &Manager{
		providers: make(map[string]Provider),
		buffers:   make(map[string]Reading),
		bufferAge: make(map[string]time.Time),
		ttl:       5 * time.Second,
		timeout:   2 * time.Second,
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Register binds an acquisition function name to a provider (the Provider
// Register). Duplicate names are an error.
func (m *Manager) Register(funcName string, p Provider) error {
	if funcName == "" {
		return errors.New("sensors: empty acquisition function name")
	}
	if p == nil {
		return fmt.Errorf("sensors: nil provider for %q", funcName)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.providers[funcName]; dup {
		return fmt.Errorf("sensors: duplicate registration %q", funcName)
	}
	m.providers[funcName] = p
	return nil
}

// Functions lists registered acquisition function names.
func (m *Manager) Functions() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.providers))
	for name := range m.providers {
		out = append(out, name)
	}
	return out
}

// Provider returns the provider behind a function name.
func (m *Manager) Provider(funcName string) (Provider, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.providers[funcName]
	return p, ok
}

// Acquire resolves the function name, serves from the shared buffer when
// fresh, and otherwise acquires asynchronously with the configured
// timeout.
func (m *Manager) Acquire(ctx context.Context, funcName string, req Request) (Reading, error) {
	if err := req.Validate(); err != nil {
		return Reading{}, err
	}
	m.mu.Lock()
	p, ok := m.providers[funcName]
	if !ok {
		m.mu.Unlock()
		return Reading{}, fmt.Errorf("sensors: no provider for %q", funcName)
	}
	// Buffer sharing: a reading taken within ttl of the requested time
	// with at least as many values is reused.
	if buf, has := m.buffers[funcName]; has {
		age := req.At.Sub(m.bufferAge[funcName])
		if age >= 0 && age <= m.ttl && len(buf.Values)+len(buf.Points) >= req.Count {
			m.stats.BufferHits++
			m.mu.Unlock()
			return buf, nil
		}
	}
	m.mu.Unlock()

	acquireCtx, cancel := context.WithTimeout(ctx, m.timeout)
	defer cancel()
	type result struct {
		r   Reading
		err error
	}
	ch := make(chan result, 1)
	go func() {
		r, err := p.Acquire(acquireCtx, req)
		ch <- result{r, err}
	}()
	select {
	case res := <-ch:
		m.mu.Lock()
		defer m.mu.Unlock()
		if res.err != nil {
			m.stats.Errors++
			return Reading{}, res.err
		}
		m.stats.Acquisitions++
		m.buffers[funcName] = res.r
		m.bufferAge[funcName] = req.At
		return res.r, nil
	case <-acquireCtx.Done():
		m.mu.Lock()
		m.stats.Timeouts++
		m.mu.Unlock()
		return Reading{}, fmt.Errorf("sensors: %s acquisition timed out", funcName)
	}
}

// Stats returns a copy of the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// InvalidateBuffers clears all shared buffers (e.g. after the phone
// moves).
func (m *Manager) InvalidateBuffers() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.buffers = make(map[string]Reading)
	m.bufferAge = make(map[string]time.Time)
}
