package sensors

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

var acqTime = time.Date(2013, time.November, 15, 11, 30, 0, 0, time.UTC)

func constantProvider(kind string, v float64) *FuncProvider {
	return &FuncProvider{
		SensorKind:   kind,
		SensorSource: SourceEmbedded,
		Sample: func(req Request) (Reading, error) {
			vals := make([]float64, req.Count)
			for i := range vals {
				vals[i] = v
			}
			return Reading{At: req.At, Window: req.Window, Values: vals}, nil
		},
	}
}

func TestRequestValidate(t *testing.T) {
	ok := Request{At: acqTime, Count: 5, Window: time.Second}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Request{
		{Count: 0},
		{Count: -1},
		{Count: 1 << 17},
		{Count: 1, Window: -time.Second},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Fatalf("bad case %d should fail", i)
		}
	}
}

func TestSourceString(t *testing.T) {
	if SourceEmbedded.String() != "embedded" || SourceExternal.String() != "external" {
		t.Fatal("source names wrong")
	}
	if !strings.Contains(Source(9).String(), "9") {
		t.Fatal("unknown source should include number")
	}
}

func TestFuncProviderAcquire(t *testing.T) {
	p := constantProvider("light", 400)
	r, err := p.Acquire(context.Background(), Request{At: acqTime, Count: 3, Window: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Values) != 3 || r.Values[0] != 400 {
		t.Fatalf("reading = %+v", r)
	}
	if _, err := p.Acquire(context.Background(), Request{Count: 0}); err == nil {
		t.Fatal("invalid request must error")
	}
	empty := &FuncProvider{SensorKind: "x"}
	if _, err := empty.Acquire(context.Background(), Request{At: acqTime, Count: 1}); err == nil {
		t.Fatal("provider without sampler must error")
	}
}

func TestFuncProviderLatencyCancellation(t *testing.T) {
	p := constantProvider("slow", 1)
	p.Latency = 5 * time.Second
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := p.Acquire(ctx, Request{At: acqTime, Count: 1})
	if err == nil {
		t.Fatal("expected cancellation")
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancellation took too long")
	}
}

func TestManagerRegisterValidation(t *testing.T) {
	m := NewManager()
	if err := m.Register("", constantProvider("x", 1)); err == nil {
		t.Fatal("empty name must error")
	}
	if err := m.Register("get_x", nil); err == nil {
		t.Fatal("nil provider must error")
	}
	if err := m.Register("get_x", constantProvider("x", 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("get_x", constantProvider("x", 1)); err == nil {
		t.Fatal("duplicate must error")
	}
	if _, ok := m.Provider("get_x"); !ok {
		t.Fatal("provider lookup failed")
	}
	if _, ok := m.Provider("nope"); ok {
		t.Fatal("phantom provider")
	}
	if len(m.Functions()) != 1 {
		t.Fatal("functions list wrong")
	}
}

func TestManagerAcquireUnknownFunction(t *testing.T) {
	m := NewManager()
	_, err := m.Acquire(context.Background(), "get_ghost", Request{At: acqTime, Count: 1})
	if err == nil || !strings.Contains(err.Error(), "no provider") {
		t.Fatalf("err = %v", err)
	}
}

func TestManagerBufferSharing(t *testing.T) {
	calls := 0
	p := &FuncProvider{
		SensorKind: "light", SensorSource: SourceEmbedded,
		Sample: func(req Request) (Reading, error) {
			calls++
			return Reading{At: req.At, Values: make([]float64, req.Count)}, nil
		},
	}
	m := NewManager(WithBufferTTL(10 * time.Second))
	if err := m.Register("get_light", p); err != nil {
		t.Fatal(err)
	}
	req := Request{At: acqTime, Count: 5, Window: time.Second}
	if _, err := m.Acquire(context.Background(), "get_light", req); err != nil {
		t.Fatal(err)
	}
	// Second task asks within the TTL: buffer hit, no new acquisition.
	req2 := Request{At: acqTime.Add(3 * time.Second), Count: 5, Window: time.Second}
	if _, err := m.Acquire(context.Background(), "get_light", req2); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("provider called %d times, want 1 (buffer share)", calls)
	}
	// Past the TTL: re-acquire.
	req3 := Request{At: acqTime.Add(30 * time.Second), Count: 5, Window: time.Second}
	if _, err := m.Acquire(context.Background(), "get_light", req3); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("provider called %d times, want 2", calls)
	}
	// A bigger request cannot be served from the smaller buffer.
	req4 := Request{At: acqTime.Add(31 * time.Second), Count: 50, Window: time.Second}
	if _, err := m.Acquire(context.Background(), "get_light", req4); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("provider called %d times, want 3", calls)
	}
	st := m.Stats()
	if st.Acquisitions != 3 || st.BufferHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	m.InvalidateBuffers()
	if _, err := m.Acquire(context.Background(), "get_light", req4); err != nil {
		t.Fatal(err)
	}
	if calls != 4 {
		t.Fatal("invalidate did not clear buffer")
	}
}

func TestManagerTimeout(t *testing.T) {
	p := constantProvider("slow", 1)
	p.Latency = time.Minute
	m := NewManager(WithAcquireTimeout(30 * time.Millisecond))
	if err := m.Register("get_slow", p); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := m.Acquire(context.Background(), "get_slow", Request{At: acqTime, Count: 1})
	if err == nil {
		t.Fatal("expected timeout")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout enforcement too slow")
	}
	if m.Stats().Timeouts == 0 && m.Stats().Errors == 0 {
		t.Fatalf("stats did not record the failure: %+v", m.Stats())
	}
}

func TestManagerErrorCounting(t *testing.T) {
	p := &FuncProvider{
		SensorKind: "bad", SensorSource: SourceEmbedded,
		Sample: func(Request) (Reading, error) {
			return Reading{}, errors.New("hardware fault")
		},
	}
	m := NewManager()
	if err := m.Register("get_bad", p); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Acquire(context.Background(), "get_bad", Request{At: acqTime, Count: 1}); err == nil {
		t.Fatal("provider error must propagate")
	}
	if m.Stats().Errors != 1 {
		t.Fatalf("stats = %+v", m.Stats())
	}
}

func TestManagerConcurrentAcquire(t *testing.T) {
	p := constantProvider("light", 300)
	m := NewManager()
	if err := m.Register("get_light", p); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := Request{At: acqTime.Add(time.Duration(i) * time.Minute), Count: 2}
			_, err := m.Acquire(context.Background(), "get_light", req)
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestBluetoothLinkConnectAndFail(t *testing.T) {
	link := NewBluetoothLink(1, 0, 0, 0)
	if err := link.use(context.Background()); err != nil {
		t.Fatal(err)
	}
	if link.Connects() != 1 {
		t.Fatalf("connects = %d", link.Connects())
	}
	// Second use keeps the connection.
	if err := link.use(context.Background()); err != nil {
		t.Fatal(err)
	}
	if link.Connects() != 1 {
		t.Fatal("reconnected unnecessarily")
	}
	link.Drop()
	if err := link.use(context.Background()); err != nil {
		t.Fatal(err)
	}
	if link.Connects() != 2 {
		t.Fatal("drop did not force reconnect")
	}
}

func TestBluetoothAlwaysFailing(t *testing.T) {
	link := NewBluetoothLink(1, 0, 0, 1.0) // always fails
	inner := constantProvider("temperature", 66)
	ext := WrapExternal(inner, link, 2)
	if ext.Source() != SourceExternal {
		t.Fatal("wrapped provider should be external")
	}
	if ext.Kind() != "temperature" {
		t.Fatal("kind should pass through")
	}
	_, err := ext.Acquire(context.Background(), Request{At: acqTime, Count: 1})
	if err == nil {
		t.Fatal("always-failing link must error")
	}
	if link.Failures() != 3 { // initial + 2 retries
		t.Fatalf("failures = %d, want 3", link.Failures())
	}
}

func TestBluetoothRetrySucceeds(t *testing.T) {
	// With a 50% failure rate and several retries, acquisition should
	// eventually succeed (deterministic seed).
	link := NewBluetoothLink(42, 0, 0, 0.5)
	inner := constantProvider("humidity", 55)
	ext := WrapExternal(inner, link, 10)
	r, err := ext.Acquire(context.Background(), Request{At: acqTime, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Values) != 2 || r.Values[0] != 55 {
		t.Fatalf("reading = %+v", r)
	}
}

func TestManagerWithExternalProvider(t *testing.T) {
	// Full stack: manager -> bluetooth wrapper -> provider.
	link := NewBluetoothLink(7, time.Millisecond, 0, 0.3)
	inner := constantProvider("temperature", 66)
	m := NewManager(WithAcquireTimeout(5 * time.Second))
	if err := m.Register("get_temperature_readings", WrapExternal(inner, link, 5)); err != nil {
		t.Fatal(err)
	}
	r, err := m.Acquire(context.Background(), "get_temperature_readings",
		Request{At: acqTime, Count: 4, Window: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Values) != 4 {
		t.Fatalf("reading = %+v", r)
	}
}
