package sensors

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// BluetoothLink simulates the Bluetooth connection between a phone and an
// external multisensor such as the Sensordrone: a connect handshake,
// per-request latency, and a configurable transient failure rate. External
// providers are wrapped with WrapExternal so data acquisition exercises the
// same failure paths real hardware produces.
type BluetoothLink struct {
	mu        sync.Mutex
	rng       *rand.Rand
	connected bool
	// ConnectLatency is paid on the first use (or after Drop).
	ConnectLatency time.Duration
	// RequestLatency is paid per acquisition.
	RequestLatency time.Duration
	// FailureRate is the probability a request fails transiently.
	FailureRate float64
	connects    int
	failures    int
}

// NewBluetoothLink builds a link with deterministic randomness.
func NewBluetoothLink(seed int64, connectLatency, requestLatency time.Duration, failureRate float64) *BluetoothLink {
	return &BluetoothLink{
		rng:            rand.New(rand.NewSource(seed)),
		ConnectLatency: connectLatency,
		RequestLatency: requestLatency,
		FailureRate:    failureRate,
	}
}

// Drop disconnects the link; the next use reconnects.
func (l *BluetoothLink) Drop() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.connected = false
}

// Connects reports how many handshakes have run.
func (l *BluetoothLink) Connects() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.connects
}

// Failures reports how many transient failures were injected.
func (l *BluetoothLink) Failures() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failures
}

// use pays the link costs for one request and possibly injects a failure.
func (l *BluetoothLink) use(ctx context.Context) error {
	l.mu.Lock()
	needConnect := !l.connected
	fail := l.rng.Float64() < l.FailureRate
	if needConnect {
		l.connects++
	}
	if fail {
		l.failures++
	}
	l.mu.Unlock()

	wait := l.RequestLatency
	if needConnect {
		wait += l.ConnectLatency
	}
	if wait > 0 {
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return fmt.Errorf("sensors: bluetooth wait cancelled: %w", ctx.Err())
		}
	}
	if fail {
		// A transient failure also drops the connection.
		l.mu.Lock()
		l.connected = false
		l.mu.Unlock()
		return fmt.Errorf("sensors: bluetooth transient failure")
	}
	l.mu.Lock()
	l.connected = true
	l.mu.Unlock()
	return nil
}

// externalProvider wraps a provider behind a Bluetooth link.
type externalProvider struct {
	inner Provider
	link  *BluetoothLink
	// retries is how many times a transient failure is retried.
	retries int
}

var _ Provider = (*externalProvider)(nil)

// WrapExternal puts a provider behind the Bluetooth link with the given
// number of retries for transient failures.
func WrapExternal(p Provider, link *BluetoothLink, retries int) Provider {
	return &externalProvider{inner: p, link: link, retries: retries}
}

// Kind implements Provider.
func (e *externalProvider) Kind() string { return e.inner.Kind() }

// Source implements Provider.
func (e *externalProvider) Source() Source { return SourceExternal }

// Acquire implements Provider.
func (e *externalProvider) Acquire(ctx context.Context, req Request) (Reading, error) {
	var lastErr error
	for attempt := 0; attempt <= e.retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return Reading{}, fmt.Errorf("sensors: external acquire cancelled: %w", err)
		}
		if err := e.link.use(ctx); err != nil {
			lastErr = err
			continue
		}
		return e.inner.Acquire(ctx, req)
	}
	return Reading{}, fmt.Errorf("sensors: external %s failed after %d attempts: %w",
		e.inner.Kind(), e.retries+1, lastErr)
}
