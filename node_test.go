package sor_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"sor"
	"sor/internal/cluster"
	"sor/internal/replica"
	"sor/internal/wire"
)

// nodeTestCatalog is a one-feature catalog so uploads fold without the
// full paper catalog.
func nodeTestCatalog() map[string][]sor.Feature {
	return map[string][]sor.Feature{
		"cafe": {{Name: "temperature", Unit: "°F",
			Default: sor.Preference{Kind: sor.PrefValue, Value: 72}}},
		"trail": {{Name: "temperature", Unit: "°F",
			Default: sor.Preference{Kind: sor.PrefValue, Value: 60}}},
	}
}

func nodeTestApp(id, category string, lat float64) sor.Application {
	return sor.Application{
		ID:        id,
		Creator:   "node-test",
		Category:  category,
		Place:     id + "-place",
		Lat:       lat,
		Lon:       -76.0,
		RadiusM:   500,
		Script:    "return 1",
		PeriodSec: 3600,
	}
}

// nodeParticipate joins user to app through a node's wire endpoint and
// returns the scheduled task ID.
func nodeParticipate(t *testing.T, c *sor.Client, app, user string, lat float64) string {
	t.Helper()
	resp, err := c.Send(context.Background(), &wire.Participate{
		UserID: user,
		Token:  "tok-" + user,
		AppID:  app,
		Loc:    wire.Location{Lat: lat, Lon: -76.0},
		Budget: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	ack, ok := resp.(*wire.Ack)
	if !ok || !ack.OK {
		t.Fatalf("participate %s refused: %+v", user, resp)
	}
	inner, err := wire.Decode(ack.Payload)
	if err != nil {
		t.Fatal(err)
	}
	sched, ok := inner.(*wire.Schedule)
	if !ok {
		t.Fatalf("participate payload was %s", inner.Type())
	}
	return sched.TaskID
}

func nodeUpload(t *testing.T, c *sor.Client, task, app, user string, seq int, temp float64) {
	t.Helper()
	at := time.Date(2013, time.November, 15, 11, 0, 0, 0, time.UTC).
		Add(time.Duration(seq) * 10 * time.Second).UnixMilli()
	resp, err := c.Send(context.Background(), &wire.DataUpload{
		TaskID: task,
		AppID:  app,
		UserID: user,
		Series: []wire.SensorSeries{{Sensor: "temperature", Samples: []wire.SensorSample{
			{AtUnixMilli: at, WindowMilli: 5000, Readings: []float64{temp, temp + 0.2}},
		}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ack, ok := resp.(*wire.Ack); !ok || !ack.OK {
		t.Fatalf("upload %d refused: %+v", seq, resp)
	}
}

// waitFor polls until cond or the deadline.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestStartNodeReplicaFollowsAndResyncs runs the whole node lifecycle
// through the declarative facade: a durable leader and a streaming
// replica, a compaction that orphans the replica, the automatic
// snapshot-ship resync on its next start (no operator dir surgery), and
// a Demote/Promote failover.
func TestStartNodeReplicaFollowsAndResyncs(t *testing.T) {
	ctx := context.Background()
	dirA, dirB := t.TempDir(), t.TempDir()

	leader, err := sor.StartNode(ctx, sor.Node{
		Name:    "node-a",
		Role:    sor.RoleLeader,
		Listen:  "127.0.0.1:0",
		Data:    dirA,
		Catalog: nodeTestCatalog(),
		DurableOptions: []sor.DurableOption{
			sor.WithWALSegmentBytes(256),
			sor.WithSnapshotInterval(time.Hour),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = leader.Close() }()
	leaderURL := "http://" + leader.Addr()

	if err := leader.Server().CreateApp(nodeTestApp("cafe-1", "cafe", 43.0)); err != nil {
		t.Fatal(err)
	}
	lc, err := sor.NewClient(leaderURL, sor.WithClientRetry(sor.Retry{Attempts: 1, Base: time.Millisecond, Seed: 1}))
	if err != nil {
		t.Fatal(err)
	}
	task := nodeParticipate(t, lc, "cafe-1", "alice", 43.0)
	for i := 0; i < 3; i++ {
		nodeUpload(t, lc, task, "cafe-1", "alice", i, 70+float64(i))
	}

	replicaSpec := sor.Node{
		Name:          "node-b",
		Role:          sor.RoleReplica,
		Listen:        "127.0.0.1:0",
		Data:          dirB,
		Leader:        leaderURL,
		PullInterval:  2 * time.Millisecond,
		MaxReplicaLag: 0,
		Catalog:       nodeTestCatalog(),
	}
	rep, err := sor.StartNode(ctx, replicaSpec)
	if err != nil {
		t.Fatal(err)
	}
	leaderLSN := leader.Server().DB().AppliedLSN()
	waitFor(t, 5*time.Second, "replica catch-up", func() bool {
		srv := rep.Server()
		return srv != nil && srv.DB().AppliedLSN() >= leaderLSN
	})

	// Replica refuses writes retryably; the replicated state serves reads.
	rc, err := sor.NewClient("http://" + rep.Addr())
	if err != nil {
		t.Fatal(err)
	}
	wresp, err := rc.Send(ctx, &wire.Participate{
		UserID: "bob", Token: "tok-bob", AppID: "cafe-1",
		Loc: wire.Location{Lat: 43.0, Lon: -76.0}, Budget: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ack, ok := wresp.(*wire.Ack); !ok || ack.OK || ack.Code != 503 {
		t.Fatalf("replica accepted a write: %+v", wresp)
	}

	// Orphan the replica: drop its retention pin, grow the log past it,
	// compact. Its next start must resync automatically. A pull in
	// flight at Close can re-register the follower on the leader after a
	// single forget, so retry until the follower table stays empty.
	if err := rep.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "follower forgotten", func() bool {
		leader.ForgetFollower("node-b")
		var st replica.Status
		hr, err := http.Get(leaderURL + replica.DebugPath)
		if err != nil {
			return false
		}
		defer func() { _ = hr.Body.Close() }()
		if err := json.NewDecoder(hr.Body).Decode(&st); err != nil {
			return false
		}
		return len(st.Followers) == 0
	})
	for i := 3; i < 9; i++ {
		nodeUpload(t, lc, task, "cafe-1", "alice", i, 70+float64(i))
	}
	if err := leader.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	rep2, err := sor.StartNode(ctx, replicaSpec)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rep2.Close() }()
	waitFor(t, 5*time.Second, "automatic resync", func() bool {
		if err := rep2.Err(); err != nil {
			t.Fatalf("replication supervision died: %v", err)
		}
		return rep2.Resyncs() >= 1
	})
	// A leader-side rank folds the uploads into features, which ship to
	// the replica through the log like every other mutation.
	if _, err := lc.Send(ctx, &wire.RankRequest{UserID: "alice", Category: "cafe"}); err != nil {
		t.Fatal(err)
	}
	leaderLSN = leader.Server().DB().AppliedLSN()
	waitFor(t, 5*time.Second, "post-resync catch-up", func() bool {
		srv := rep2.Server()
		return srv != nil && srv.DB().AppliedLSN() >= leaderLSN
	})

	// The swapped-in dispatcher serves rank reads from the resynced state.
	rc2, err := sor.NewClient("http://" + rep2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	rresp, err := rc2.Send(ctx, &wire.RankRequest{UserID: "alice", Category: "cafe"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rresp.(*wire.RankResponse); !ok {
		t.Fatalf("post-resync rank answered %+v, want a rank response", rresp)
	}

	// Planned failover through the facade: old leader freezes, standby
	// promotes, writes land on the new leader.
	if err := leader.Demote(); err != nil {
		t.Fatal(err)
	}
	if err := rep2.Promote(); err != nil {
		t.Fatal(err)
	}
	nodeUpload(t, rc2, task, "cafe-1", "alice", 9, 79)
}

// TestStartNodeRouterRoutes stands up a 2-shard cluster purely from
// Node specs — members self-register in the shared map file — and
// checks the router forwards by app category and serves its status.
func TestStartNodeRouterRoutes(t *testing.T) {
	ctx := context.Background()
	mapPath := filepath.Join(t.TempDir(), "cluster.json")

	var leaders []*sor.RunningNode
	for i, shard := range []string{"shard-a", "shard-b"} {
		n, err := sor.StartNode(ctx, sor.Node{
			Name:    fmt.Sprintf("%s-1", shard),
			Role:    sor.RoleLeader,
			Listen:  "127.0.0.1:0",
			Data:    t.TempDir(),
			Cluster: mapPath,
			Shard:   shard,
			Catalog: nodeTestCatalog(),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = n.Close() }()
		leaders = append(leaders, n)
		app, lat := "cafe-1", 43.0
		if i == 1 {
			app, lat = "trail-1", 44.0
		}
		if err := n.Server().CreateApp(nodeTestApp(app, app[:len(app)-2], lat)); err != nil {
			t.Fatal(err)
		}
	}

	// Route both categories, pinning one apart if rendezvous co-locates
	// them (the map is authored out-of-band, as sorctl would).
	reg, err := cluster.LoadRegistry(mapPath)
	if err != nil {
		t.Fatal(err)
	}
	reg.RegisterApp("cafe-1", "cafe")
	reg.RegisterApp("trail-1", "trail")
	reg.PinKey("cafe", "shard-a")
	reg.PinKey("trail", "shard-b")

	router, err := sor.StartNode(ctx, sor.Node{
		Name:    "router-1",
		Role:    sor.RoleRouter,
		Listen:  "127.0.0.1:0",
		Cluster: mapPath,
		Retry:   sor.Retry{Attempts: 2, Base: -1, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = router.Close() }()

	c, err := sor.NewClient("http://" + router.Addr())
	if err != nil {
		t.Fatal(err)
	}
	taskCafe := nodeParticipate(t, c, "cafe-1", "alice", 43.0)
	taskTrail := nodeParticipate(t, c, "trail-1", "bob", 44.0)
	nodeUpload(t, c, taskCafe, "cafe-1", "alice", 0, 71)
	nodeUpload(t, c, taskTrail, "trail-1", "bob", 0, 58)

	// Each shard leader stored exactly its own category's upload.
	for i, want := range []string{"cafe-1", "trail-1"} {
		ups := leaders[i].Server().DB().AllUploads()
		if len(ups) != 1 || ups[0].AppID != want {
			t.Fatalf("shard %d uploads = %+v, want one for %s", i, ups, want)
		}
	}

	// Rank queries route to the category's home shard through the router.
	resp, err := c.Send(ctx, &wire.RankRequest{UserID: "alice", Category: "cafe"})
	if err != nil {
		t.Fatal(err)
	}
	rank, ok := resp.(*wire.RankResponse)
	if !ok || len(rank.Ranked) == 0 {
		t.Fatalf("routed rank = %+v, want ranked places", resp)
	}

	// The router serves the cluster map on its debug surface.
	st := struct {
		Router string `json:"router"`
		Shards []struct {
			Name string `json:"name"`
		} `json:"shards"`
	}{}
	hresp, err := http.Get("http://" + router.Addr() + sor.ClusterDebugPath)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = hresp.Body.Close() }()
	if err := json.NewDecoder(hresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Router != "router-1" || len(st.Shards) != 2 {
		t.Fatalf("cluster status = %+v", st)
	}
}
