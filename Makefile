# SOR reproduction — convenience targets.

GO ?= go

.PHONY: all build test test-short race vet bench experiments fieldtest sim clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table and figure.
experiments: fieldtest sim

fieldtest:
	$(GO) run ./cmd/fieldtest -category both

sim:
	$(GO) run ./cmd/sorsim -sweep both -runs 10

clean:
	$(GO) clean ./...
