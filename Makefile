# SOR reproduction — convenience targets.

GO ?= go

.PHONY: all build test test-short race vet bench bench-smoke fuzz-smoke ci experiments fieldtest sim clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark — catches bit-rot without the cost of
# a real measurement run.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# 10-second fuzz smoke over the wire decoder (the open-network surface).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzDecode -fuzztime 10s ./internal/wire/

# Everything CI runs (.github/workflows/ci.yml mirrors this).
ci: vet build test
	$(GO) test -race -short ./...
	$(MAKE) bench-smoke
	$(MAKE) fuzz-smoke

# Regenerate every paper table and figure.
experiments: fieldtest sim

fieldtest:
	$(GO) run ./cmd/fieldtest -category both

sim:
	$(GO) run ./cmd/sorsim -sweep both -runs 10

clean:
	$(GO) clean ./...
