# SOR reproduction — convenience targets.

GO ?= go

.PHONY: all build test test-short race vet bench bench-smoke fuzz-smoke obs-smoke chaos chaos-short crash-soak replica-soak replica-soak-short cluster-soak cluster-soak-short fleet-soak fleet-soak-short session-soak session-soak-short ci experiments fieldtest sim clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark (catches bit-rot, including the
# 200/2k/10k columnar scaling table) plus the rank hot-path allocation
# gate — a cached-hit rank query must stay O(1) allocations. -short
# skips only the ~4-minute 2 000-place monolithic-baseline solve; the
# 200-place baseline point still runs.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x -short ./...
	$(GO) test -count=1 -run 'TestRankCachedHitAllocs|TestRankTopKBoundsResponse' -v ./internal/server/

# 10-second fuzz smokes over the three decoders that face untrusted
# bytes: the wire decoder (open network), the session frame decoder
# (open network, wraps the wire codec), and the WAL record decoder
# (disk after a crash).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzDecode -fuzztime 10s ./internal/wire/
	$(GO) test -run '^$$' -fuzz FuzzSessionFrame -fuzztime 10s ./internal/transport/session/
	$(GO) test -run '^$$' -fuzz FuzzWALDecode -fuzztime 10s ./internal/wal/

# Boot a real sord, scrape /debug/metrics via sorctl, assert every
# promised series is present and that traffic moves the counters.
obs-smoke:
	bash scripts/obs_smoke.sh

# Full exactly-once chaos soak under the race detector: a fleet of phones
# over a network dropping requests, acks and partitioning mid-upload must
# converge to server state byte-identical to a fault-free run.
chaos:
	$(GO) test -race -count=1 -v ./internal/chaos/

# Trimmed chaos soak for CI (smaller fleet, shorter partition).
chaos-short:
	$(GO) test -race -short -count=1 ./internal/chaos/

# Crash-restart soak under the race detector: kill a durable server at
# random points under the PR-3 fault schedule, recover from the newest
# snapshot plus the WAL tail, and require converged state bit-identical
# to the same seed never crashing.
crash-soak:
	$(GO) test -race -count=1 -run CrashSoak -v ./internal/chaos/

# Replication chaos soak under the race detector: a 3-node cluster
# (leader + two WAL-streaming followers) on virtual time survives random
# kill -9s, timed partitions, checkpoint/truncation races, and one
# planned failover, and every node's state digest must match a
# never-crashed single-node baseline byte for byte.
replica-soak:
	$(GO) test -race -count=1 -run ReplicaSoak -v ./internal/chaos/

replica-soak-short:
	$(GO) test -race -short -count=1 -run ReplicaSoak ./internal/chaos/

# Scale-out cluster soak under the race detector: two shards of two
# nodes each behind a rendezvous-routing router on virtual time survive
# kills, partitions, checkpoint races, one planned failover per shard
# (one of them discovered by the router, not announced), and a follower
# orphaned past compaction that rejoins via snapshot-ship resync; every
# node's state digest must match a never-crashed single-node baseline
# that applied only its shard's category workload.
cluster-soak:
	$(GO) test -race -count=1 -run ClusterSoak -v ./internal/chaos/

cluster-soak-short:
	$(GO) test -race -short -count=1 -run ClusterSoak ./internal/chaos/

# Discrete-event fleet soak on virtual time: deterministic, fixed-seed,
# race-enabled. The determinism gate runs the same seed twice and diffs
# the end-state digests (a divergence prints the first differing
# canonical line plus a one-line SOR_SOAK_SEED replay command).
fleet-soak:
	$(GO) test -race -count=1 -v ./internal/fleetsim/
	$(GO) run ./cmd/sorsim -fleet -phones 20000 -per-app 50 -verify

fleet-soak-short:
	$(GO) test -race -short -count=1 ./internal/fleetsim/
	$(GO) run ./cmd/sorsim -fleet -phones 1000 -per-app 50 -verify

# Persistent-session transport soak: the stream session tests and the
# exactly-once resume property test under the race detector, then the
# fleetsim determinism gate over the stream transport — handshakes,
# frame envelopes, server push and partition-severed sessions all ride
# virtual time, and the same seed twice must produce byte-identical
# digests.
session-soak:
	$(GO) test -race -count=1 -v ./internal/transport/session/
	$(GO) test -race -count=1 -run 'Session|Stream' -v ./internal/chaos/
	$(GO) test -race -count=1 -run Stream -v ./internal/fleetsim/
	$(GO) run ./cmd/sorsim -fleet -phones 5000 -per-app 50 -transport stream -verify

session-soak-short:
	$(GO) test -race -short -count=1 ./internal/transport/session/
	$(GO) test -race -short -count=1 -run Stream ./internal/fleetsim/
	$(GO) run ./cmd/sorsim -fleet -phones 1000 -per-app 50 -transport stream -verify

# Everything CI runs (.github/workflows/ci.yml mirrors this).
ci: vet build test
	$(GO) test -race -short ./...
	$(MAKE) bench-smoke
	$(MAKE) fuzz-smoke
	$(MAKE) obs-smoke
	$(MAKE) chaos-short
	$(MAKE) crash-soak
	$(MAKE) replica-soak
	$(MAKE) cluster-soak
	$(MAKE) fleet-soak-short
	$(MAKE) session-soak-short

# Regenerate every paper table and figure.
experiments: fieldtest sim

fieldtest:
	$(GO) run ./cmd/fieldtest -category both

sim:
	$(GO) run ./cmd/sorsim -sweep both -runs 10

clean:
	$(GO) clean ./...
