// Columnar rank-core benchmarks: ns per rank query at 200 / 2 000 /
// 10 000 places through the server's serving layer (snapshot + columnar
// top-k), plus the monolithic-aggregation baseline the pre-columnar read
// path paid per uncached solve. These back BENCH_rankcol.json and the
// "Columnar rank core" section of DESIGN.md.
//
// The category is seeded from a latent-quality model — each place has an
// underlying quality and every feature observes it with small noise, the
// regime the SOR paper's sensed features live in (a genuinely good coffee
// shop is quiet AND warm AND bright). Correlated columns are what make
// clean cuts dense, so bounded queries solve a handful of small blocks;
// adversarially uncorrelated columns degrade to the full solve, which the
// full-uncached variants measure.
//
//	go test -bench=RankColumnar -benchtime=2s .
package sor_test

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"sor/internal/rankagg"
	"sor/internal/ranking"
	"sor/internal/server"
	"sor/internal/store"
	"sor/internal/wire"
)

const colBenchCategory = "colbench"

// colBenchScales are the place counts of the scaling table. The
// monolithic baseline only runs through 2 000: at 10 000 places its n×n
// cost matrix alone is ~800 MB and the single matching solve takes
// minutes — which is the point of the columnar core.
var colBenchScales = []int{200, 2000, 10000}

const colBenchMonolithicMax = 2000

// colBenchEnv is an in-process server with a fully sensed n-place
// category generated from the latent-quality model.
type colBenchEnv struct {
	srv    *server.Server
	db     *store.Store
	handle func(wire.Message) (wire.Message, error)
	n      int
	start  time.Time
}

// colBenchValues returns the four feature values a place with latent
// quality u (0 = best) out of n reports. The noise term displaces a
// place by a couple of ranks regardless of scale, so the per-feature
// rankings agree on coarse order but not fine order — the clean cuts the
// block decomposition feeds on stay dense (every few ranks) while blocks
// stay non-trivial. Wider noise shrinks cut density: at ±25 ranks with
// four independent features, cuts all but vanish and every solve
// degrades to the monolithic fallback (the regime
// BenchmarkRankMonolithicBaseline prices).
func colBenchValues(rng *rand.Rand, u float64, n int) [4]float64 {
	// jitterRanks controls how many ranks a single feature observation is
	// displaced by sensing noise.
	const jitterRanks = 2.0
	noise := func(spread float64) float64 {
		return (rng.Float64()*2 - 1) * jitterRanks * spread / float64(n)
	}
	return [4]float64{
		73 + u*20 + noise(20),     // temperature: default prefers 73 exactly
		1000 - u*500 + noise(500), // brightness: PrefMax
		30 + u*40 + noise(40),     // noise: PrefMin
		-40 - u*30 + noise(30),    // wifi: PrefMax
	}
}

func newColBenchEnv(b *testing.B, n int) *colBenchEnv {
	b.Helper()
	catalog := map[string][]ranking.Feature{
		colBenchCategory: {
			{Name: "temperature", Unit: "°F",
				Default: ranking.Preference{Kind: ranking.PrefValue, Value: 73, Weight: 3}},
			{Name: "brightness", Unit: "lux",
				Default: ranking.Preference{Kind: ranking.PrefMax, Weight: 2}},
			{Name: "noise", Unit: "",
				Default: ranking.Preference{Kind: ranking.PrefMin, Weight: 4}},
			{Name: "wifi", Unit: "dBm",
				Default: ranking.Preference{Kind: ranking.PrefMax, Weight: 1}},
		},
	}
	db := store.New()
	srv, err := server.New(server.Config{
		DB:          db,
		Catalog:     catalog,
		RankRefresh: time.Second,
		Observer:    benchObserver(),
	})
	if err != nil {
		b.Fatal(err)
	}
	env := &colBenchEnv{srv: srv, db: db, n: n, start: time.Now().UTC()}
	h := srv.Handler()
	env.handle = func(m wire.Message) (wire.Message, error) { return h(nil, m) }
	rng := rand.New(rand.NewSource(int64(n)))
	features := catalog[colBenchCategory]
	for p := 0; p < n; p++ {
		place := fmt.Sprintf("col-place-%05d", p)
		if err := srv.CreateApp(store.Application{
			ID: fmt.Sprintf("col-app-%05d", p), Creator: "bench", Category: colBenchCategory,
			Place: place, Lat: 43.0 + float64(p)*1e-4, Lon: -76.0,
			RadiusM: 500, Script: "return 1", PeriodSec: benchPeriodSec,
		}); err != nil {
			b.Fatal(err)
		}
		vals := colBenchValues(rng, float64(p)/float64(n), n)
		for j, f := range features {
			if err := db.UpsertFeature(store.FeatureRow{
				Category: colBenchCategory, Place: place, Feature: f.Name,
				Value: vals[j], Samples: 3, Updated: env.start,
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
	return env
}

// colBenchPrefs perturbs the preferred temperature per sequence number:
// the ranking is essentially unchanged but every query is a distinct
// cache key, so "uncached" variants measure real solves, not map hits.
func colBenchPrefs(seq int) []wire.PrefEntry {
	return []wire.PrefEntry{
		{Feature: "temperature", Kind: int(ranking.PrefValue),
			Value: 73 + float64(seq%100000)*1e-9, Weight: 3},
		{Feature: "noise", Kind: int(ranking.PrefMin), Weight: 4},
	}
}

// query issues one rank request and sanity-checks the response shape.
func (e *colBenchEnv) query(seq, topK, wantRanked int) error {
	resp, err := e.handle(&wire.RankRequest{
		UserID: "col-bench", Category: colBenchCategory, TopK: topK,
		Prefs: colBenchPrefs(seq),
	})
	if err != nil {
		return err
	}
	ranked, ok := resp.(*wire.RankResponse)
	if !ok {
		return fmt.Errorf("rank refused: %+v", resp)
	}
	if len(ranked.Ranked) != wantRanked {
		return fmt.Errorf("ranked %d places, want %d", len(ranked.Ranked), wantRanked)
	}
	return nil
}

// colBenchEnvs memoizes one settled env per scale so filtered bench runs
// never pay setup for scales they skip, and the three variants of one
// scale share a snapshot.
var colBenchEnvs = map[int]*colBenchEnv{}

func colEnv(b *testing.B, n int) *colBenchEnv {
	b.Helper()
	if env, ok := colBenchEnvs[n]; ok {
		return env
	}
	env := newColBenchEnv(b, n)
	if err := env.query(0, 0, n); err != nil { // settle the snapshot
		b.Fatal(err)
	}
	colBenchEnvs[n] = env
	return env
}

// BenchmarkRankColumnar is the scaling table: per-query cost of the
// columnar serving path at each scale, bounded (top-10) and full,
// uncached (distinct profile every query — the per-epoch solve cost) and
// cached (the steady-state hit). ns/op counts one query.
func BenchmarkRankColumnar(b *testing.B) {
	for _, n := range colBenchScales {
		n := n
		b.Run(fmt.Sprintf("places=%d/topk10-uncached", n), func(b *testing.B) {
			env := colEnv(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := env.query(i+1, 10, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("places=%d/full-uncached", n), func(b *testing.B) {
			env := colEnv(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := env.query(i+1, 0, n); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("places=%d/topk10-cached", n), func(b *testing.B) {
			env := colEnv(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := env.query(0, 10, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRankMonolithicBaseline is the pre-columnar uncached solve: one
// monolithic n×n footrule aggregation over the same individual rankings
// the columnar path block-decomposes. Deliberately conservative — it
// times only the aggregation, not the per-query matrix assembly the old
// path also paid. Capped at 2 000 places (see colBenchMonolithicMax).
func BenchmarkRankMonolithicBaseline(b *testing.B) {
	for _, n := range colBenchScales {
		if n > colBenchMonolithicMax {
			continue
		}
		// One 2 000-place monolithic solve takes ~4 minutes; the 200-place
		// point keeps the baseline alive in smoke runs (-short).
		if testing.Short() && n > 200 {
			continue
		}
		n := n
		b.Run(fmt.Sprintf("places=%d/monolithic-uncached", n), func(b *testing.B) {
			env := colEnv(b, n)
			matrix, err := env.srv.FeatureMatrix(colBenchCategory)
			if err != nil {
				b.Fatal(err)
			}
			ranker, err := ranking.NewRanker(matrix)
			if err != nil {
				b.Fatal(err)
			}
			prof := ranking.Profile{Name: "bench", Prefs: map[string]ranking.Preference{}}
			for _, p := range colBenchPrefs(0) {
				prof.Prefs[p.Feature] = ranking.Preference{
					Kind: ranking.PrefKind(p.Kind), Value: p.Value, Weight: p.Weight,
				}
			}
			res, err := ranker.Rank(prof)
			if err != nil {
				b.Fatal(err)
			}
			coll := rankagg.Collection{}
			for _, f := range matrix.Features {
				coll.Rankings = append(coll.Rankings, rankagg.Ranking(res.Individual[f.Name]))
				coll.Weights = append(coll.Weights, float64(res.Weights[f.Name]))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := rankagg.FootruleAggregate(coll); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRankColumnarLiveIngest measures the 10k-place bounded query
// path while a writer keeps touching a small rotating set of places —
// every staleness-bound expiry forces an epoch rebuild, which the serving
// layer satisfies with an incremental column merge (membership is
// stable). ns/op counts one query; rebuild cost lands on the unlucky
// queries that trigger it, exactly as in production.
// This benchmark is defined last in the file so its store mutations
// cannot disturb the shared envs of the scaling-table benchmarks above.
func BenchmarkRankColumnarLiveIngest(b *testing.B) {
	const n = 10000
	env := colEnv(b, n)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		rng := rand.New(rand.NewSource(99))
		ticker := time.NewTicker(2 * time.Millisecond)
		defer ticker.Stop()
		var seq int
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
			}
			// Touch ~8 places per tick: re-derived features move slightly,
			// the store records them changed, the next rebuild delta-merges.
			for i := 0; i < 8; i++ {
				p := rng.Intn(n)
				vals := colBenchValues(rng, float64(p)/float64(n), n)
				if err := env.db.UpsertFeature(store.FeatureRow{
					Category: colBenchCategory, Place: fmt.Sprintf("col-place-%05d", p),
					Feature: "temperature", Value: vals[0], Samples: 3,
					Updated: env.start.Add(time.Duration(seq) * time.Second),
				}); err != nil {
					b.Error(err)
					return
				}
				seq++
			}
		}
	}()
	b.ResetTimer()
	var next atomic.Int64
	const workers = 8
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			for {
				seq := int(next.Add(1)) - 1
				if seq >= b.N {
					errCh <- nil
					return
				}
				if err := env.query(seq, 10, 10); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errCh; err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	<-done
}
