// Cluster benchmarks: what the scale-out work buys. These back
// BENCH_cluster.json (see DESIGN.md "Cluster routing & resync").
//
// BenchmarkClusterRoutedIngest compares ingest throughput on one
// durable leader against two category-sharded durable leaders behind
// the cluster router, under wal.SyncEach — every report acked only
// after its own flush — where a leader's throughput is bounded by one
// serialized commit pipeline no matter how many uploaders it has.
// Sharding doubles the pipelines, which only pays when each shard owns
// its commit device, as deployed shards do; this benchmark host is one
// core and one ext4 volume, so the headline "dedicated-disk-model"
// variants put the data on tmpfs and model each shard's device as a
// fixed 250us sync wait inside the WAL (store.WithWALSyncWait). The
// sync-each variants are the same discipline on the real shared
// volume (its two-stream sync overlap caps near 1.5x), and the
// sync-grouped variants are the honest control where sharding buys
// nothing: group commit already amortizes every concurrent uploader
// behind one fsync, so splitting the pool is amortization-neutral.
//
// BenchmarkClusterReplicaReadScaling measures aggregate rank-query
// throughput against a fixed reader pool spread over 1, 2, then 4
// caught-up replicas (plus the leader itself as the 0-replica
// baseline) — the read-capacity story for adding standbys to a shard.
//
//	go test -run=NONE -bench=ClusterRoutedIngest -benchtime=2s .
//	go test -run=NONE -bench=ClusterReplicaRead -benchtime=2s .
package sor_test

import (
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"sor/internal/cluster"
	"sor/internal/ranking"
	"sor/internal/replica"
	"sor/internal/server"
	"sor/internal/store"
	"sor/internal/transport"
	"sor/internal/wal"
	"sor/internal/wire"
)

// The two-shard bench topology: one category per shard, pinned so the
// split is deterministic rather than at the mercy of rendezvous
// placement.
const (
	clusterShardA = "shard-a"
	clusterShardB = "shard-b"
	clusterCatA   = "bench-coffee"
	clusterCatB   = "bench-trail"
)

// handlerSender adapts an in-process transport.Handler to the Sender
// interface the router dials and the follower pulls through, so the
// benchmark measures routing and replication logic, not sockets.
type handlerSender struct{ h transport.Handler }

func (s handlerSender) Send(ctx context.Context, m wire.Message) (wire.Message, error) {
	return s.h(ctx, m)
}

func clusterBenchCatalog() map[string][]ranking.Feature {
	feats := []ranking.Feature{
		{Name: "temperature", Unit: "°F",
			Default: ranking.Preference{Kind: ranking.PrefValue, Value: 73}},
		{Name: "noise", Unit: "",
			Default: ranking.Preference{Kind: ranking.PrefMin}},
	}
	return map[string][]ranking.Feature{clusterCatA: feats, clusterCatB: feats}
}

// clusterBenchApps is the four-app workload, alternating categories so
// consecutive users land on alternating shards and the 8 uploader
// workers split 4/4 across the two leaders.
func clusterBenchApps() []store.Application {
	var apps []store.Application
	for i := 0; i < 4; i++ {
		cat := clusterCatA
		if i%2 == 1 {
			cat = clusterCatB
		}
		apps = append(apps, store.Application{
			ID:        fmt.Sprintf("bench-%s-%d", cat, i/2),
			Creator:   "bench",
			Category:  cat,
			Place:     fmt.Sprintf("bench-place-%d", i),
			Lat:       43.0 + float64(i),
			Lon:       -76.0,
			RadiusM:   500,
			Script:    "return 1",
			PeriodSec: benchPeriodSec,
		})
	}
	return apps
}

// clusterBenchBackends builds one WAL/store backend per leader in the
// topology under test; the routed-ingest comparison runs each topology
// over the same backend recipe so the only variable is the number of
// commit pipelines.
type clusterBenchBackends func(b *testing.B) *store.DurableBackend

func diskBackend(sync wal.SyncPolicy) clusterBenchBackends {
	return func(b *testing.B) *store.DurableBackend {
		return store.NewDurableBackend(b.TempDir(), store.WithWALSync(sync))
	}
}

// modeledDiskBackend stands in for the deployment topology this box
// cannot host: every shard leader owning its own commit device. Data
// lives on tmpfs (so the benchmark host's one shared ext4 volume stays
// out of the measurement) and each acked record waits out a fixed
// 250us device service time inside the WAL — the sync-each discipline
// with the disk modeled instead of shared.
func modeledDiskBackend() clusterBenchBackends {
	return func(b *testing.B) *store.DurableBackend {
		dir, err := os.MkdirTemp("/dev/shm", "sor-bench-")
		if err != nil {
			dir = b.TempDir() // no tmpfs: the model rides the real disk
		} else {
			b.Cleanup(func() { os.RemoveAll(dir) })
		}
		return store.NewDurableBackend(dir,
			store.WithWALSync(wal.SyncEach),
			store.WithWALSyncWait(250*time.Microsecond),
		)
	}
}

// newDurableLeader opens a durable server over mk's backend.
func newDurableLeader(b *testing.B, start time.Time, mk clusterBenchBackends) (*server.Server, *store.DurableBackend) {
	b.Helper()
	backend := mk(b)
	srv, err := server.New(server.Config{
		Storage:  backend,
		Now:      func() time.Time { return start },
		Catalog:  clusterBenchCatalog(),
		Observer: benchObserver(),
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Open(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = srv.Close() })
	return srv, backend
}

// joinClusterUsers participates users through handle (the router on the
// sharded side, so placement itself is exercised) and records the task
// IDs the benchmark uploads against. User u joins apps[u%len(apps)].
func joinClusterUsers(b *testing.B, env *benchEnv, users int) {
	b.Helper()
	for u := 0; u < users; u++ {
		userID := fmt.Sprintf("bench-user-%d", u)
		resp, err := env.handle(&wire.Participate{
			UserID: userID,
			Token:  "bench-token-" + userID,
			AppID:  env.appIDs[u%len(env.appIDs)],
			Loc:    wire.Location{Lat: 43.0 + float64(u%len(env.appIDs)), Lon: -76.0},
			Budget: 17,
		})
		if err != nil {
			b.Fatal(err)
		}
		ack, ok := resp.(*wire.Ack)
		if !ok || !ack.OK {
			b.Fatalf("participate %s refused: %+v", userID, resp)
		}
		inner, err := wire.Decode(ack.Payload)
		if err != nil {
			b.Fatal(err)
		}
		sched, ok := inner.(*wire.Schedule)
		if !ok {
			b.Fatalf("participate payload was %s", inner.Type())
		}
		env.userIDs = append(env.userIDs, userID)
		env.taskIDs = append(env.taskIDs, sched.TaskID)
	}
}

// newSingleLeaderClusterEnv is the baseline: one durable leader
// holding both categories' apps, driven directly through its handler.
func newSingleLeaderClusterEnv(b *testing.B, mk clusterBenchBackends) *benchEnv {
	b.Helper()
	start := time.Date(2013, time.November, 15, 11, 0, 0, 0, time.UTC)
	srv, _ := newDurableLeader(b, start, mk)
	env := &benchEnv{srv: srv, start: start}
	h := srv.Handler()
	env.handle = func(m wire.Message) (wire.Message, error) {
		return h(context.Background(), m)
	}
	for _, app := range clusterBenchApps() {
		if err := srv.CreateApp(app); err != nil {
			b.Fatal(err)
		}
		env.appIDs = append(env.appIDs, app.ID)
	}
	joinClusterUsers(b, env, ingestWorkers)
	return env
}

// newRoutedClusterEnv is the sharded side: two durable leaders, one
// category each, a registry pinning each category to its shard, and a
// router whose handler the benchmark drives exactly as the baseline
// drives the single leader's.
func newRoutedClusterEnv(b *testing.B, mk clusterBenchBackends) (*benchEnv, [2]*server.Server) {
	b.Helper()
	start := time.Date(2013, time.November, 15, 11, 0, 0, 0, time.UTC)
	var leaders [2]*server.Server
	senders := map[string]cluster.Sender{}
	reg := cluster.NewRegistry()
	for i, shard := range []string{clusterShardA, clusterShardB} {
		srv, _ := newDurableLeader(b, start, mk)
		leaders[i] = srv
		reg.AddShard(shard)
		if err := reg.AddMember(cluster.Member{
			Name:  shard + "-0",
			Shard: shard,
			Role:  cluster.RoleLeader,
			Addr:  "mem://" + shard,
		}); err != nil {
			b.Fatal(err)
		}
		senders["mem://"+shard] = handlerSender{srv.Handler()}
	}
	reg.PinKey(clusterCatA, clusterShardA)
	reg.PinKey(clusterCatB, clusterShardB)
	rt, err := cluster.NewRouter("bench-router", reg, func(addr string) (cluster.Sender, error) {
		s, ok := senders[addr]
		if !ok {
			return nil, fmt.Errorf("bench: no route to %s", addr)
		}
		return s, nil
	})
	if err != nil {
		b.Fatal(err)
	}

	env := &benchEnv{srv: leaders[0], start: start}
	h := rt.Handler()
	env.handle = func(m wire.Message) (wire.Message, error) {
		return h(context.Background(), m)
	}
	for _, app := range clusterBenchApps() {
		shard := 0
		if app.Category == clusterCatB {
			shard = 1
		}
		if err := leaders[shard].CreateApp(app); err != nil {
			b.Fatal(err)
		}
		reg.RegisterApp(app.ID, app.Category)
		env.appIDs = append(env.appIDs, app.ID)
	}
	joinClusterUsers(b, env, ingestWorkers)
	return env, leaders
}

// BenchmarkClusterRoutedIngest is the headline BENCH_cluster.json
// number: ns per acked report with 8 uploader workers, one durable
// leader vs two category-sharded durable leaders behind the router,
// under each WAL sync policy. b.N counts reports on both sides, so the
// speedup is the ratio of the two ns/op figures; the bar is routed
// >= 1.6x single under sync-each, the fsync-pipeline-bound regime.
func BenchmarkClusterRoutedIngest(b *testing.B) {
	upload := func(env *benchEnv) func(w, seq int) error {
		return func(w, seq int) error {
			resp, err := env.handle(env.report(w, int64(seq)))
			if err != nil {
				return err
			}
			if ack, ok := resp.(*wire.Ack); !ok || !ack.OK {
				return fmt.Errorf("upload refused: %+v", resp)
			}
			return nil
		}
	}
	for _, pc := range []struct {
		name string
		mk   clusterBenchBackends
	}{
		{"dedicated-disk-model", modeledDiskBackend()},
		{"sync-each", diskBackend(wal.SyncEach)},
		{"sync-grouped", diskBackend(wal.SyncGrouped)},
	} {
		b.Run(pc.name+"/single-leader", func(b *testing.B) {
			env := newSingleLeaderClusterEnv(b, pc.mk)
			b.ResetTimer()
			benchUploaders(b, ingestWorkers, b.N, upload(env))
			b.StopTimer()
			reportIngested(b, env)
		})
		b.Run(pc.name+"/routed-2-shards", func(b *testing.B) {
			env, leaders := newRoutedClusterEnv(b, pc.mk)
			b.ResetTimer()
			benchUploaders(b, ingestWorkers, b.N, upload(env))
			b.StopTimer()
			// Both shards must have taken real load for the comparison
			// to mean anything.
			for i, srv := range leaders {
				if pending := srv.DB().PendingUploads(); pending == 0 && b.N > 1 {
					b.Fatalf("shard %d ingested nothing over %d reports", i, b.N)
				}
			}
		})
	}
}

// clusterReadReplicas stands up a durable leader carrying folded
// feature data and n durable replicas caught up over the WAL-shipping
// protocol, returning every node's rank-serving handler (leader first).
func clusterReadReplicas(b *testing.B, n int) []transport.Handler {
	b.Helper()
	start := time.Date(2013, time.November, 15, 11, 0, 0, 0, time.UTC)
	srv, backend := newDurableLeader(b, start, diskBackend(wal.SyncOS))
	env := &benchEnv{srv: srv, start: start}
	h := srv.Handler()
	env.handle = func(m wire.Message) (wire.Message, error) {
		return h(context.Background(), m)
	}
	for _, app := range clusterBenchApps() {
		if err := srv.CreateApp(app); err != nil {
			b.Fatal(err)
		}
		env.appIDs = append(env.appIDs, app.ID)
	}
	joinClusterUsers(b, env, ingestWorkers)
	// Land a fixed corpus and fold it so every node serves identical,
	// fully-processed feature state and ns/op measures the read path.
	for u := 0; u < ingestWorkers; u++ {
		for s := 0; s < 32; s++ {
			resp, err := env.handle(env.report(u, int64(s)))
			if err != nil {
				b.Fatal(err)
			}
			if ack, ok := resp.(*wire.Ack); !ok || !ack.OK {
				b.Fatalf("upload refused: %+v", resp)
			}
		}
	}
	srv.Processor().Process()

	ld, err := replica.NewLeader(backend.WAL(),
		replica.WithSnapshotSource(backend),
		replica.WithFollowerTTL(24*time.Hour),
	)
	if err != nil {
		b.Fatal(err)
	}
	leaderHandler := replica.Handler(ld, srv.Handler())

	handlers := []transport.Handler{srv.Handler()}
	for i := 0; i < n; i++ {
		rbackend := store.NewDurableBackend(b.TempDir())
		rsrv, err := server.New(server.Config{
			Storage:  rbackend,
			Now:      func() time.Time { return start },
			Catalog:  clusterBenchCatalog(),
			Observer: benchObserver(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := rsrv.OpenAsReplica(); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = rsrv.Close() })
		fol := replica.NewFollower(fmt.Sprintf("bench-replica-%d", i),
			rsrv.DB(), handlerSender{leaderHandler})
		for {
			got, err := fol.PullOnce(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			if got == 0 {
				break
			}
		}
		handlers = append(handlers, rsrv.Handler())
	}
	return handlers
}

// BenchmarkClusterReplicaReadScaling drives 8 reader workers issuing
// rank queries round-robin over the leader alone ("leader") and then
// over 1, 2, and 4 caught-up replicas — the capacity curve for
// offloading a shard's reads onto standbys. b.N counts rank queries
// pool-wide.
func BenchmarkClusterReplicaReadScaling(b *testing.B) {
	const readWorkers = ingestWorkers
	cats := [2]string{clusterCatA, clusterCatB}
	rank := func(targets []transport.Handler) func(w, seq int) error {
		return func(w, seq int) error {
			h := targets[seq%len(targets)]
			resp, err := h(context.Background(), &wire.RankRequest{
				UserID:   "bench-ranker",
				Category: cats[seq%2],
			})
			if err != nil {
				return err
			}
			if _, ok := resp.(*wire.RankResponse); !ok {
				return fmt.Errorf("rank refused: %+v", resp)
			}
			return nil
		}
	}
	nodes := clusterReadReplicas(b, 4) // leader + 4 replicas
	for _, bc := range []struct {
		name    string
		targets []transport.Handler
	}{
		{"leader", nodes[:1]},
		{"replicas-1", nodes[1:2]},
		{"replicas-2", nodes[1:3]},
		{"replicas-4", nodes[1:5]},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ResetTimer()
			benchUploaders(b, readWorkers, b.N, rank(bc.targets))
		})
	}
}
