module sor

go 1.22
