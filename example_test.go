package sor_test

import (
	"fmt"
	"time"

	"sor"
)

// ExampleScheduleSensing demonstrates §III: schedule two users' sensing
// for maximal time coverage under per-user budgets.
func ExampleScheduleSensing() {
	start := time.Date(2013, time.November, 15, 11, 0, 0, 0, time.UTC)
	plan, err := sor.ScheduleSensing(sor.SensingRequest{
		Start:  start,
		Period: 30 * time.Minute,
		Participants: []sor.Participant{
			{UserID: "alice", Arrive: start, Leave: start.Add(30 * time.Minute), Budget: 3},
			{UserID: "bob", Arrive: start.Add(10 * time.Minute), Leave: start.Add(30 * time.Minute), Budget: 2},
		},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("alice: %d measurements\n", len(plan.Plan.Assignments["alice"].Instants))
	fmt.Printf("bob:   %d measurements\n", len(plan.Plan.Assignments["bob"].Instants))
	fmt.Printf("greedy beats baseline: %v\n",
		plan.Plan.AverageCoverage > plan.Baseline.AverageCoverage)
	// Output:
	// alice: 3 measurements
	// bob:   2 measurements
	// greedy beats baseline: true
}

// ExampleRankPlaces demonstrates §IV: personalized ranking over a feature
// matrix.
func ExampleRankPlaces() {
	matrix := &sor.Matrix{
		Places: []string{"Tim Hortons", "B&N Cafe", "Starbucks"},
		Features: []sor.Feature{
			{Name: "noise", Default: sor.Preference{Kind: sor.PrefMin}},
			{Name: "wifi", Unit: "dBm", Default: sor.Preference{Kind: sor.PrefMax}},
		},
		Values: [][]float64{
			{0.05, -62},
			{0.08, -50},
			{0.18, -72},
		},
	}
	res, err := sor.RankPlaces(matrix, sor.Profile{
		Name: "studious",
		Prefs: map[string]sor.Preference{
			"noise": {Kind: sor.PrefMin, Weight: 5},
			"wifi":  {Kind: sor.PrefMax, Weight: 4},
		},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for i, place := range res.Order {
		fmt.Printf("No. %d: %s\n", i+1, place)
	}
	// Output:
	// No. 1: Tim Hortons
	// No. 2: B&N Cafe
	// No. 3: Starbucks
}

// ExampleRankHybrid blends objective features with subjective stars.
func ExampleRankHybrid() {
	matrix := &sor.Matrix{
		Places: []string{"quiet-but-unknown", "loud-but-famous"},
		Features: []sor.Feature{
			{Name: "noise", Default: sor.Preference{Kind: sor.PrefMin}},
		},
		Values: [][]float64{{0.05}, {0.2}},
	}
	profile := sor.Profile{Name: "u", Prefs: map[string]sor.Preference{
		"noise": {Kind: sor.PrefMin, Weight: 2},
	}}
	stars := []float64{3.0, 4.8}
	objective, err := sor.RankHybrid(matrix, profile, stars, 0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	crowd, err := sor.RankHybrid(matrix, profile, stars, 5)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("sensors say:", objective.Order[0])
	fmt.Println("crowd says: ", crowd.Order[0])
	// Output:
	// sensors say: quiet-but-unknown
	// crowd says:  loud-but-famous
}
