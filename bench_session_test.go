// Session-transport benchmarks: sustained upload throughput and
// server→device push latency for the persistent stream transport vs the
// one-shot HTTP transport, at a fleet of concurrent simulated devices.
// These back BENCH_session.json (see DESIGN.md "Session transport &
// push").
//
// Both transports run fully in-process over net.Pipe so the comparison
// isolates protocol cost, not the kernel TCP stack: the HTTP side dials a
// fresh pipe per request with keep-alives disabled (the one-shot
// connection-per-upload model the PR replaces), the stream side holds one
// long-lived framed pipe per device. Every upload on either side carries
// the identical wire-codec payload and lands in the same server handler.
//
//	go test -run=NONE -bench=SessionTransport -benchtime=20000x .
//	go test -run=NONE -bench=SessionPush -benchtime=20000x .
package sor_test

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"sor/internal/ranking"
	"sor/internal/server"
	"sor/internal/store"
	"sor/internal/transport"
	"sor/internal/transport/session"
	"sor/internal/wire"
)

// benchDevices is the fleet size for the transport benchmarks: 10k
// concurrent simulated devices (the BENCH_session.json bar), trimmed
// under -short so the CI bench smoke stays fast. The fleet is sharded
// 100 devices per application, matching the fleetsim default.
func benchDevices() int {
	if testing.Short() {
		return 200
	}
	return 10000
}

// pipeListener is a net.Listener fed by dial: every dial call
// manufactures a net.Pipe, hands the server end to Accept and returns the
// client end. It lets an http.Server serve connection-per-request
// traffic from 10k devices without consuming file descriptors.
type pipeListener struct {
	conns chan net.Conn
	done  chan struct{}
	once  sync.Once
}

func newPipeListener() *pipeListener {
	return &pipeListener{conns: make(chan net.Conn), done: make(chan struct{})}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *pipeListener) Addr() net.Addr { return pipeAddr{} }

func (l *pipeListener) dial(ctx context.Context, _, _ string) (net.Conn, error) {
	c, s := net.Pipe()
	select {
	case l.conns <- s:
		return c, nil
	case <-l.done:
		c.Close()
		return nil, net.ErrClosed
	case <-ctx.Done():
		c.Close()
		return nil, ctx.Err()
	}
}

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

// sessionBenchEnv holds one shared server and both transport front doors:
// an HTTP server in one-shot (connection-per-request) mode and a stream
// session server, each reached over in-process pipes.
type sessionBenchEnv struct {
	env *benchEnv

	httpClient *transport.Client
	httpServer *http.Server
	httpLn     *pipeListener

	registry  *session.Registry
	streamSrv *session.Server
	devices   []*session.Client
}

// newFleetBenchEnv is newBenchEnv at fleet scale: the greedy scheduler
// runs on the fleetsim parameters (5-minute timeline step, budget 2)
// instead of the paper's 10-second step and budget 17, so joining 10k
// devices takes seconds rather than dominating the benchmark. Upload
// handling is identical — only Participate-time schedule computation
// changes.
func newFleetBenchEnv(b *testing.B, apps, users int) *benchEnv {
	b.Helper()
	start := time.Date(2013, time.November, 15, 11, 0, 0, 0, time.UTC)
	catalog := map[string][]ranking.Feature{
		"bench": {
			{Name: "temperature", Unit: "°F",
				Default: ranking.Preference{Kind: ranking.PrefValue, Value: 73}},
			{Name: "noise", Unit: "",
				Default: ranking.Preference{Kind: ranking.PrefMin}},
		},
	}
	srv, err := server.New(server.Config{
		DB:       store.New(),
		Now:      func() time.Time { return start },
		Step:     5 * time.Minute,
		Catalog:  catalog,
		Observer: benchObserver(),
	})
	if err != nil {
		b.Fatal(err)
	}
	env := &benchEnv{srv: srv, start: start}
	h := srv.Handler()
	env.handle = func(m wire.Message) (wire.Message, error) {
		return h(context.Background(), m)
	}
	for a := 0; a < apps; a++ {
		appID := fmt.Sprintf("bench-app-%d", a)
		if err := srv.CreateApp(store.Application{
			ID:        appID,
			Creator:   "bench",
			Category:  "bench",
			Place:     fmt.Sprintf("bench-place-%d", a),
			Lat:       43.0 + float64(a),
			Lon:       -76.0,
			RadiusM:   500,
			Script:    "return 1",
			PeriodSec: benchPeriodSec,
		}); err != nil {
			b.Fatal(err)
		}
		env.appIDs = append(env.appIDs, appID)
	}
	for u := 0; u < users; u++ {
		appID := env.appIDs[u%apps]
		userID := fmt.Sprintf("bench-user-%d", u)
		resp, err := env.handle(&wire.Participate{
			UserID: userID,
			Token:  "bench-token-" + userID,
			AppID:  appID,
			Loc:    wire.Location{Lat: 43.0 + float64(u%apps), Lon: -76.0},
			Budget: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		ack, ok := resp.(*wire.Ack)
		if !ok || !ack.OK {
			b.Fatalf("participate %s refused: %+v", userID, resp)
		}
		inner, err := wire.Decode(ack.Payload)
		if err != nil {
			b.Fatal(err)
		}
		sched, ok := inner.(*wire.Schedule)
		if !ok {
			b.Fatalf("participate payload was %s", inner.Type())
		}
		env.userIDs = append(env.userIDs, userID)
		env.taskIDs = append(env.taskIDs, sched.TaskID)
	}
	return env
}

func newSessionBenchEnv(b *testing.B, devices, apps int) *sessionBenchEnv {
	b.Helper()
	e := &sessionBenchEnv{env: newFleetBenchEnv(b, apps, devices)}

	// One-shot HTTP: keep-alives off, so every request pays connection
	// setup — the pre-session model of a phone waking, POSTing, sleeping.
	hh, err := transport.NewHTTPHandler(e.env.srv.Handler())
	if err != nil {
		b.Fatal(err)
	}
	e.httpLn = newPipeListener()
	e.httpServer = &http.Server{Handler: hh}
	go e.httpServer.Serve(e.httpLn)
	httpClient, err := transport.NewClient("http://sor-bench", transport.WithHTTPClient(&http.Client{
		Transport: &http.Transport{DialContext: e.httpLn.dial, DisableKeepAlives: true},
	}))
	if err != nil {
		b.Fatal(err)
	}
	e.httpClient = httpClient

	// Stream: one persistent framed pipe per device, all multiplexed
	// through the same handler the HTTP side uses.
	e.registry = session.NewRegistry()
	e.streamSrv, err = session.NewServer(e.env.srv.Handler(), e.registry)
	if err != nil {
		b.Fatal(err)
	}
	dial := func(ctx context.Context) (net.Conn, error) {
		c, s := net.Pipe()
		go e.streamSrv.ServeConn(s)
		return c, nil
	}
	e.devices = make([]*session.Client, devices)
	for d := range e.devices {
		cli, err := session.NewClient(dial, e.env.userIDs[d],
			session.WithEventBuffer(4))
		if err != nil {
			b.Fatal(err)
		}
		e.devices[d] = cli
	}
	b.Cleanup(func() {
		for _, cli := range e.devices {
			cli.Close()
		}
		e.streamSrv.Close()
		e.httpServer.Close()
		e.httpLn.Close()
	})
	return e
}

// prime forces every device to dial and handshake so the timed region
// measures steady-state sessions, not connection storms.
func (e *sessionBenchEnv) prime(b *testing.B) {
	b.Helper()
	benchUploaders(b, 256, len(e.devices), func(_, d int) error {
		resp, err := e.devices[d].Send(context.Background(), e.env.report(d, 0))
		if err != nil {
			return err
		}
		if ack, ok := resp.(*wire.Ack); !ok || !ack.OK {
			return fmt.Errorf("prime upload refused: %+v", resp)
		}
		return nil
	})
	if live := e.registry.Count(); live != len(e.devices) {
		b.Fatalf("only %d of %d sessions live after priming", live, len(e.devices))
	}
}

// BenchmarkSessionTransportUpload is the headline BENCH_session.json
// number: ns per acked upload with the whole fleet sending concurrently.
// b.N counts uploads fleet-wide, so per-device sustained throughput is
// (1e9/ns_per_op)/devices and the stream-vs-http speedup is the ratio of
// the two ns/op figures.
func BenchmarkSessionTransportUpload(b *testing.B) {
	devices := benchDevices()
	e := newSessionBenchEnv(b, devices, devices/100)
	e.prime(b)
	b.Run(fmt.Sprintf("http-oneshot/devices-%d", devices), func(b *testing.B) {
		benchUploaders(b, len(e.devices), b.N, func(d, seq int) error {
			resp, err := e.httpClient.Send(context.Background(), e.env.report(d, int64(seq)))
			if err != nil {
				return err
			}
			if ack, ok := resp.(*wire.Ack); !ok || !ack.OK {
				return fmt.Errorf("upload refused: %+v", resp)
			}
			return nil
		})
	})
	b.Run(fmt.Sprintf("stream/devices-%d", devices), func(b *testing.B) {
		benchUploaders(b, len(e.devices), b.N, func(d, seq int) error {
			resp, err := e.devices[d].Send(context.Background(), e.env.report(d, int64(seq)))
			if err != nil {
				return err
			}
			if ack, ok := resp.(*wire.Ack); !ok || !ack.OK {
				return fmt.Errorf("upload refused: %+v", resp)
			}
			return nil
		})
	})
}

// BenchmarkSessionPushLatency measures server→device delivery: ns from
// Registry.PushMessage to the message arriving on the device's Events
// channel, with the full fleet of sessions attached. The one-shot HTTP
// transport has no server-initiated path at all — a device would pay a
// full poll round-trip (the http-oneshot ns/op above) just to ask, and
// only learns at its polling cadence.
func BenchmarkSessionPushLatency(b *testing.B) {
	devices := benchDevices()
	e := newSessionBenchEnv(b, devices, devices/100)
	e.prime(b)
	sched := &wire.Schedule{TaskID: "bench-push", AppID: "bench-app-0"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := i % len(e.devices)
		if err := e.registry.PushMessage(e.env.userIDs[d], sched); err != nil {
			b.Fatal(err)
		}
		select {
		case <-e.devices[d].Events():
		case <-time.After(10 * time.Second):
			b.Fatalf("push to device %d never arrived", d)
		}
	}
}
