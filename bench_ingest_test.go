// Ingest-path benchmarks: how fast the sensing server absorbs report
// uploads under concurrent load, and how rank queries behave while ingest
// is running. These back the sharding work (see DESIGN.md "Concurrency
// model"): BenchmarkIngestParallel is the number quoted in CHANGES.md.
//
//	go test -bench=Ingest -benchtime=2s .
package sor_test

import (
	"context"
	"fmt"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"sor/internal/obs"
	"sor/internal/ranking"
	"sor/internal/server"
	"sor/internal/store"
	"sor/internal/wire"
)

// benchEnv is an in-process server with apps and joined uploaders, driven
// through the same transport.Handler the HTTP layer uses (no sockets, so
// the benchmark measures the server, not the loopback stack).
type benchEnv struct {
	srv     *server.Server
	handle  func(m wire.Message) (wire.Message, error)
	start   time.Time
	userIDs []string // userIDs[u] is joined to apps[u % apps]
	taskIDs []string
	appIDs  []string
}

const benchPeriodSec = 3 * 60 * 60

// benchObserver returns the observer the benchmark servers run with: a
// live one by default (the numbers must hold with metrics enabled), nil
// when SOR_BENCH_BASELINE=1 (the uninstrumented baseline side of the
// BENCH_obs.json comparison).
func benchObserver() *obs.Observer {
	if os.Getenv("SOR_BENCH_BASELINE") == "1" {
		return nil
	}
	return obs.NewObserver()
}

func newBenchEnv(b *testing.B, apps, users int) *benchEnv {
	return newStorageBenchEnv(b, apps, users, nil)
}

// newDurableBenchEnv is newBenchEnv on the WAL-backed durable store with
// its default sync policy — the configuration whose ingest overhead the
// durability work is accountable for (within 25% of in-memory).
func newDurableBenchEnv(b *testing.B, apps, users int) *benchEnv {
	return newStorageBenchEnv(b, apps, users, store.NewDurableBackend(b.TempDir()))
}

func newStorageBenchEnv(b *testing.B, apps, users int, backend store.Backend) *benchEnv {
	b.Helper()
	start := time.Date(2013, time.November, 15, 11, 0, 0, 0, time.UTC)
	catalog := map[string][]ranking.Feature{
		"bench": {
			{Name: "temperature", Unit: "°F",
				Default: ranking.Preference{Kind: ranking.PrefValue, Value: 73}},
			{Name: "noise", Unit: "",
				Default: ranking.Preference{Kind: ranking.PrefMin}},
		},
	}
	// Metrics stay on in the benchmarks: the acceptance bar for the
	// observability layer is that the instrumented hot path holds the
	// uninstrumented numbers (BENCH_obs.json records the comparison;
	// SOR_BENCH_BASELINE=1 turns the observer off to measure the
	// baseline side on the same machine).
	cfg := server.Config{
		Now:      func() time.Time { return start },
		Catalog:  catalog,
		Observer: benchObserver(),
	}
	if backend != nil {
		cfg.Storage = backend
	} else {
		cfg.DB = store.New()
	}
	srv, err := server.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if backend != nil {
		if err := srv.Open(); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = srv.Close() })
	}
	env := &benchEnv{srv: srv, start: start}
	h := srv.Handler()
	env.handle = func(m wire.Message) (wire.Message, error) {
		return h(context.Background(), m)
	}
	for a := 0; a < apps; a++ {
		appID := fmt.Sprintf("bench-app-%d", a)
		if err := srv.CreateApp(store.Application{
			ID:        appID,
			Creator:   "bench",
			Category:  "bench",
			Place:     fmt.Sprintf("bench-place-%d", a),
			Lat:       43.0 + float64(a),
			Lon:       -76.0,
			RadiusM:   500,
			Script:    "return 1",
			PeriodSec: benchPeriodSec,
		}); err != nil {
			b.Fatal(err)
		}
		env.appIDs = append(env.appIDs, appID)
	}
	for u := 0; u < users; u++ {
		appID := env.appIDs[u%apps]
		userID := fmt.Sprintf("bench-user-%d", u)
		resp, err := env.handle(&wire.Participate{
			UserID: userID,
			Token:  "bench-token-" + userID,
			AppID:  appID,
			Loc:    wire.Location{Lat: 43.0 + float64(u%apps), Lon: -76.0},
			Budget: 17,
		})
		if err != nil {
			b.Fatal(err)
		}
		ack, ok := resp.(*wire.Ack)
		if !ok || !ack.OK {
			b.Fatalf("participate %s refused: %+v", userID, resp)
		}
		inner, err := wire.Decode(ack.Payload)
		if err != nil {
			b.Fatal(err)
		}
		sched, ok := inner.(*wire.Schedule)
		if !ok {
			b.Fatalf("participate payload was %s", inner.Type())
		}
		env.userIDs = append(env.userIDs, userID)
		env.taskIDs = append(env.taskIDs, sched.TaskID)
	}
	return env
}

// report builds one small sensed-data report (the overhead-dominated
// regime bursty phones actually produce: a couple of samples per upload).
func (e *benchEnv) report(u int, seq int64) *wire.DataUpload {
	at := e.start.Add(time.Duration(seq%1000) * 10 * time.Second).UnixMilli()
	return &wire.DataUpload{
		TaskID: e.taskIDs[u],
		AppID:  e.appIDs[u%len(e.appIDs)],
		UserID: e.userIDs[u],
		Series: []wire.SensorSeries{
			{Sensor: "temperature", Samples: []wire.SensorSample{
				{AtUnixMilli: at, WindowMilli: 5000, Readings: []float64{70.1, 70.3, 70.2, 70.4}},
			}},
			{Sensor: "microphone", Samples: []wire.SensorSample{
				{AtUnixMilli: at, WindowMilli: 2000, Readings: []float64{0.1, 0.12, 0.11, 0.13}},
			}},
		},
	}
}

// benchUploaders drives total reports through fn from `workers` goroutines
// and fails the benchmark on any refused upload.
func benchUploaders(b *testing.B, workers int, total int, fn func(worker, seq int) error) {
	b.Helper()
	var next atomic.Int64
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for {
				seq := int(next.Add(1)) - 1
				if seq >= total {
					errCh <- nil
					return
				}
				if err := fn(w, seq); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errCh; err != nil {
			b.Fatal(err)
		}
	}
}

const ingestWorkers = 8

// benchBatchSize is how many reports a store-and-forward phone coalesces
// into one DataUploadBatch message.
const benchBatchSize = 32

// BenchmarkIngestParallel measures ingest throughput with 8 uploader
// goroutines spread over 4 applications. The "single" variant sends one
// report per message (the paper's phone behaviour and the pre-shard
// baseline workload); the "batched" variant coalesces benchBatchSize
// reports per message through HandleReportBatch. b.N counts reports in
// both variants, so ns/op is ns per report and the two are comparable.
func BenchmarkIngestParallel(b *testing.B) {
	single := func(env *benchEnv) func(b *testing.B) {
		return func(b *testing.B) {
			b.ResetTimer()
			benchUploaders(b, ingestWorkers, b.N, func(w, seq int) error {
				resp, err := env.handle(env.report(w, int64(seq)))
				if err != nil {
					return err
				}
				if ack, ok := resp.(*wire.Ack); !ok || !ack.OK {
					return fmt.Errorf("upload refused: %+v", resp)
				}
				return nil
			})
			b.StopTimer()
			reportIngested(b, env)
		}
	}
	batched := func(env *benchEnv) func(b *testing.B) {
		return func(b *testing.B) {
			batches := (b.N + benchBatchSize - 1) / benchBatchSize
			b.ResetTimer()
			benchUploaders(b, ingestWorkers, batches, func(w, seq int) error {
				n := benchBatchSize
				if seq == batches-1 && b.N%benchBatchSize != 0 {
					n = b.N % benchBatchSize // last batch carries the remainder
				}
				batch := &wire.DataUploadBatch{Uploads: make([]wire.DataUpload, n)}
				for i := 0; i < n; i++ {
					batch.Uploads[i] = *env.report(w, int64(seq*benchBatchSize+i))
				}
				resp, err := env.handle(batch)
				if err != nil {
					return err
				}
				if ack, ok := resp.(*wire.Ack); !ok || !ack.OK {
					return fmt.Errorf("batch refused: %+v", resp)
				}
				return nil
			})
			b.StopTimer()
			reportIngested(b, env)
		}
	}
	b.Run("single", func(b *testing.B) { single(newBenchEnv(b, 4, ingestWorkers))(b) })
	b.Run("batched", func(b *testing.B) { batched(newBenchEnv(b, 4, ingestWorkers))(b) })
	// The durable variants write-ahead-log every report before the ack
	// (WAL on tmpfs-or-disk at b.TempDir(), default SyncOS policy).
	b.Run("durable-single", func(b *testing.B) { single(newDurableBenchEnv(b, 4, ingestWorkers))(b) })
	b.Run("durable-batched", func(b *testing.B) { batched(newDurableBenchEnv(b, 4, ingestWorkers))(b) })
}

// BenchmarkRankDuringIngest measures rank-query latency while 8 uploader
// goroutines land batched reports in the background — the
// reader-under-writer regime the sharding work targets. Uploaders are
// paced (one batch per 5 ms each) so the backlog a rank query drains stays
// bounded and ns/op measures contention, not backlog size. b.N counts rank
// queries.
func BenchmarkRankDuringIngest(b *testing.B) {
	env := newBenchEnv(b, 4, ingestWorkers)
	// Pre-sense every place so queries rank instead of refusing.
	for u := 0; u < ingestWorkers; u++ {
		if _, err := env.handle(env.report(u, int64(u))); err != nil {
			b.Fatal(err)
		}
	}
	env.srv.Processor().Process()
	stop := make(chan struct{})
	done := make(chan struct{}, ingestWorkers)
	for w := 0; w < ingestWorkers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			var seq int64
			ticker := time.NewTicker(5 * time.Millisecond)
			defer ticker.Stop()
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
				}
				batch := &wire.DataUploadBatch{Uploads: make([]wire.DataUpload, benchBatchSize)}
				for i := range batch.Uploads {
					batch.Uploads[i] = *env.report(w, seq)
					seq++
				}
				if _, err := env.handle(batch); err != nil {
					b.Error(err)
					return
				}
			}
		}(w)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := env.handle(&wire.RankRequest{UserID: "bench-ranker", Category: "bench"})
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := resp.(*wire.RankResponse); !ok {
			b.Fatalf("rank refused: %+v", resp)
		}
	}
	b.StopTimer()
	close(stop)
	for w := 0; w < ingestWorkers; w++ {
		<-done
	}
}

// reportIngested sanity-checks that the benchmark actually landed data.
func reportIngested(b *testing.B, env *benchEnv) {
	b.Helper()
	if pending := env.srv.DB().PendingUploads(); pending == 0 && b.N > 0 {
		b.Fatalf("no uploads pending after %d reports", b.N)
	}
}
