#!/usr/bin/env bash
# obs-smoke: boot a real sord, scrape its metrics endpoint with sorctl,
# and assert that every series the observability layer promises is
# present at boot (they are registered eagerly, not on first traffic).
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${OBS_SMOKE_PORT:-18080}"
ADDR="127.0.0.1:${PORT}"
BASE="http://${ADDR}"
BIN="$(mktemp -d)"
trap 'kill "${SORD_PID:-}" 2>/dev/null || true; rm -rf "$BIN"' EXIT

go build -o "$BIN/sord" ./cmd/sord
go build -o "$BIN/sorctl" ./cmd/sorctl

"$BIN/sord" -addr "$ADDR" >"$BIN/sord.log" 2>&1 &
SORD_PID=$!

# The series the instrumented layers register at construction: server
# ingest/scheduling/rank counters, per-type request series, handler
# latency histograms, and the HTTP endpoint counters.
REQUIRED='sor_http_requests_total,sor_http_decode_errors_total'
REQUIRED+=',sor_ingest_reports_total,sor_ingest_accepted_total,sor_ingest_duplicate_total,sor_ingest_rejected_total'
REQUIRED+=',sor_sched_replans_total,sor_snapshot_rebuilds_total,sor_rank_cache_hits_total,sor_rank_cache_misses_total'
REQUIRED+=',sor_snapshot_delta_rebuilds_total,sor_snapshot_rearms_total,sor_rank_warm_blocks_total'
REQUIRED+=',sor_server_requests_total{type="ping"},sor_server_requests_total{type="data-upload"}'
REQUIRED+=',sor_server_requests_total{type="data-upload-batch"},sor_server_requests_total{type="rank-request"}'
REQUIRED+=',sor_server_handler_ms{type="data-upload"},sor_snapshot_rebuild_ms'
REQUIRED+=',sor_processor_uploads_total,sor_processor_decode_errors_total'
REQUIRED+=',sor_session_active,sor_session_opened_total,sor_session_closed_total'
REQUIRED+=',sor_session_pushes_total,sor_session_wakes_total,sor_session_push_dropped_total'

# Poll until the server answers (or fail after ~10 s).
for i in $(seq 1 50); do
    if "$BIN/sorctl" -server "$BASE" metrics -require "$REQUIRED" >/dev/null 2>&1; then
        echo "obs-smoke: all required series present on $BASE"
        # One real request must move the counters end to end. The ping is
        # refused (unknown token) but still served and counted.
        "$BIN/sorctl" -server "$BASE" ping -token smoke-token >/dev/null 2>&1 || true
        PINGS=$("$BIN/sorctl" -server "$BASE" metrics |
            grep -F 'sor_server_requests_total{type="ping"}' | awk '{print $NF}')
        if [ "${PINGS:-0}" -lt 1 ]; then
            echo "obs-smoke: ping was not counted (got $PINGS)" >&2
            exit 1
        fi
        echo "obs-smoke: traffic counted (ping series = $PINGS)"
        exit 0
    fi
    if ! kill -0 "$SORD_PID" 2>/dev/null; then
        echo "obs-smoke: sord died:" >&2
        cat "$BIN/sord.log" >&2
        exit 1
    fi
    sleep 0.2
done

echo "obs-smoke: required series never appeared; last attempt:" >&2
"$BIN/sorctl" -server "$BASE" metrics -require "$REQUIRED" >&2 || true
cat "$BIN/sord.log" >&2
exit 1
