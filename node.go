package sor

// This file is the node-level half of the public API: one declarative
// Node spec and StartNode, which assembles the full stack for any
// cluster role — leader (durable store, WAL shipping, snapshot-ship
// resync source), replica (follower pull loop with automatic in-place
// resync when the leader has compacted past it), or router (the
// app-sharded forwarding tier over a cluster map). The option-level API
// in api.go remains for callers composing the pieces by hand.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"sor/internal/cluster"
	"sor/internal/replica"
	"sor/internal/store"
	"sor/internal/transport"
	"sor/internal/wire"
)

// Cluster roles a Node can hold.
const (
	RoleLeader  = cluster.RoleLeader
	RoleReplica = cluster.RoleReplica
	RoleRouter  = cluster.RoleRouter
)

// ClusterStatus is the /debug/cluster payload: shards, members with
// roles and liveness, and resolved app placements.
type ClusterStatus = cluster.Status

// ClusterDebugPath serves the cluster status JSON.
const ClusterDebugPath = cluster.DebugPath

// ReplicaDebugPath serves the replication status JSON.
const ReplicaDebugPath = replica.DebugPath

// Node declares one cluster node. Zero values mean "leader, in-memory,
// no listeners" — the smallest thing StartNode will run.
type Node struct {
	// Name is the node's cluster identity (heartbeat replies, replication
	// follower ID, resync session ID). Defaults to "node".
	Name string
	// Role is RoleLeader (default), RoleReplica, or RoleRouter.
	Role string
	// Listen is the HTTP wire endpoint address (":0" picks a port).
	// Empty serves no HTTP; the node is then driven through Handler().
	Listen string
	// StreamListen additionally accepts persistent device streams.
	StreamListen string
	// Data roots durable state (snapshot + WAL). Required for a replica;
	// empty on a leader means in-memory state with no replication.
	Data string
	// DurableOptions tunes the Data-rooted backend (WAL sync policy,
	// segment size, checkpoint cadence).
	DurableOptions []DurableOption
	// Cluster is the cluster map file. Required for a router; on a
	// leader or replica it registers this member (Shard, Advertise) so
	// routers can find it.
	Cluster string
	// Shard names the shard this member serves (cluster registration).
	Shard string
	// Advertise is the address other nodes dial to reach this one
	// (defaults to http://localhost<Listen>).
	Advertise string
	// Leader is the leader's base URL (required for a replica).
	Leader string
	// MaxReplicaLag bounds replica rank-read staleness (see
	// WithMaxReplicaLag).
	MaxReplicaLag time.Duration
	// PullInterval paces the replica's caught-up pulls.
	PullInterval time.Duration
	// Retry is the consolidated retry envelope for every outbound path
	// the node owns: the replica's leader client and reconnect backoff,
	// and the router's forwarded sends.
	Retry Retry
	// Observer instruments the node (default: a fresh one).
	Observer *Observer
	// Catalog overrides the category→features catalog (leader/replica).
	Catalog map[string][]Feature
	// Mux, when set, receives the node's debug endpoints and wire
	// endpoint instead of a fresh mux — the hook for callers mounting
	// extra routes on the same listener.
	Mux *http.ServeMux
}

// RunningNode is a started Node: its live dispatcher, listeners, and
// role machinery. The dispatcher is held behind an atomic pointer so a
// replica's automatic resync can rebuild the whole store underneath it
// without its HTTP or stream endpoints ever going away.
type RunningNode struct {
	spec Node
	obsv *Observer

	handler atomic.Value // transport.Handler

	mu       sync.Mutex
	srv      *Server
	storage  Storage
	durable  *store.DurableBackend
	repl     *replica.Leader
	follower *replica.Follower
	registry *cluster.Registry
	router   *cluster.Router

	cancel         context.CancelFunc
	followerCancel context.CancelFunc
	wg             sync.WaitGroup

	httpServer   *http.Server
	httpLn       net.Listener
	streamServer *StreamServer
	streamLn     net.Listener
	sessions     *SessionRegistry

	resyncs atomic.Uint64
	lastErr atomic.Value // error: why replication supervision stopped
}

// Err reports why the node's replication supervision stopped, if it
// did (a failed resync, a dead leader client). Nil while healthy.
func (rn *RunningNode) Err() error {
	if err, ok := rn.lastErr.Load().(error); ok {
		return err
	}
	return nil
}

// StartNode assembles and starts a node from its spec. The returned
// node is serving (when Listen/StreamListen are set) and replicating
// (role replica) until ctx ends or Close is called.
func StartNode(ctx context.Context, n Node) (*RunningNode, error) {
	if n.Name == "" {
		n.Name = "node"
	}
	if n.Role == "" {
		n.Role = RoleLeader
	}
	rn := &RunningNode{spec: n, obsv: n.Observer}
	if rn.obsv == nil {
		rn.obsv = NewObserver()
	}
	runCtx, cancel := context.WithCancel(ctx)
	rn.cancel = cancel

	var err error
	switch n.Role {
	case RoleLeader, RoleReplica:
		err = rn.buildMember(runCtx)
	case RoleRouter:
		err = rn.buildRouter(runCtx)
	default:
		err = fmt.Errorf("sor: unknown node role %q (leader|replica|router)", n.Role)
	}
	if err != nil {
		cancel()
		return nil, err
	}
	if err := rn.startListeners(); err != nil {
		cancel()
		_ = rn.closeCore()
		return nil, err
	}
	if n.Cluster != "" && n.Role != RoleRouter {
		if err := rn.registerMember(); err != nil {
			_ = rn.Close()
			return nil, err
		}
	}
	return rn, nil
}

// buildMember stands up a leader or replica: storage, server, and the
// replication role, publishing the dispatcher last.
func (rn *RunningNode) buildMember(ctx context.Context) error {
	n := rn.spec
	var storage Storage
	var durable *store.DurableBackend
	if n.Data != "" {
		dopts := append([]DurableOption{store.WithMetrics(rn.obsv.Metrics())}, n.DurableOptions...)
		durable = store.NewDurableBackend(n.Data, dopts...)
		storage = durable
	} else {
		if n.Role == RoleReplica {
			return errors.New("sor: a replica needs Data (its log is its copy of the leader's)")
		}
		storage = Memory()
	}

	catalog := n.Catalog
	if catalog == nil {
		catalog = DefaultCatalog()
	}
	sessions := NewSessionRegistry(WithSessionMetrics(rn.obsv.Metrics()))
	srv, err := NewServer(
		WithStorage(storage),
		WithCatalog(catalog),
		WithTransport(sessions),
		WithObserver(rn.obsv),
		WithMaxReplicaLag(n.MaxReplicaLag),
	)
	if err != nil {
		return err
	}

	handler := srv.Handler()
	var repl *replica.Leader
	var follower *replica.Follower
	var followerCancel context.CancelFunc
	switch n.Role {
	case RoleReplica:
		if n.Leader == "" {
			return errors.New("sor: a replica needs Leader (the leader's base URL)")
		}
		if err := srv.OpenAsReplica(); err != nil {
			return err
		}
		client, err := NewClient(n.Leader, WithClientRetry(n.Retry))
		if err != nil {
			_ = srv.Close()
			return err
		}
		fopts := []replica.FollowerOption{
			replica.WithFollowerMetrics(rn.obsv.Metrics()),
		}
		if n.PullInterval > 0 {
			fopts = append(fopts, replica.WithPullInterval(n.PullInterval))
		}
		if n.Retry != (Retry{}) {
			fopts = append(fopts, replica.WithFollowerBackoff(
				n.Retry.ResolveBase(100*time.Millisecond),
				n.Retry.ResolveCap(10*time.Second),
				n.Retry.ResolveSeed(time.Now().UnixNano()),
			))
		}
		follower = replica.NewFollower(n.Name, srv.DB(), client, fopts...)
		srv.SetReplicaLagProbe(follower.LagProbe())
		var fctx context.Context
		fctx, followerCancel = context.WithCancel(ctx)
		rn.wg.Add(1)
		go rn.superviseReplication(ctx, fctx, follower)
	case RoleLeader:
		if err := srv.Open(); err != nil {
			return err
		}
		// The §IV feature pipeline runs on a cadence, like sord's; rank
		// requests still fold on demand in between.
		if _, err := srv.StartProcessing(ctx, 30*time.Second); err != nil {
			_ = srv.Close()
			return err
		}
		if durable != nil && durable.WAL() != nil {
			repl, err = replica.NewLeader(durable.WAL(),
				replica.WithStateDir(durable.Dir()),
				replica.WithLeaderMetrics(rn.obsv.Metrics()),
				replica.WithSnapshotSource(durable),
			)
			if err != nil {
				_ = srv.Close()
				return err
			}
			handler = replica.Handler(repl, handler)
		}
	}

	handler = cluster.MemberHandler(n.Name, rn.roleName, rn.appliedLSN, handler)

	rn.mu.Lock()
	rn.srv, rn.storage, rn.durable = srv, storage, durable
	rn.repl, rn.follower = repl, follower
	rn.followerCancel = followerCancel
	rn.sessions = sessions
	rn.mu.Unlock()
	rn.handler.Store(transport.Handler(handler))
	return nil
}

// buildRouter stands up the forwarding tier over the cluster map.
func (rn *RunningNode) buildRouter(ctx context.Context) error {
	n := rn.spec
	if n.Cluster == "" {
		return errors.New("sor: a router needs Cluster (the cluster map file)")
	}
	reg, err := cluster.LoadRegistry(n.Cluster)
	if err != nil {
		return err
	}
	retry := n.Retry
	dial := func(addr string) (cluster.Sender, error) {
		return transport.NewClient(addr, transport.WithRetry(retry))
	}
	rt, err := cluster.NewRouter(n.Name, reg, dial,
		cluster.WithRouterRetry(retry),
		cluster.WithRouterMetrics(rn.obsv.Metrics()),
	)
	if err != nil {
		return err
	}
	rn.mu.Lock()
	rn.registry, rn.router = reg, rt
	rn.mu.Unlock()
	rn.handler.Store(transport.Handler(rt.Handler()))
	rn.wg.Add(1)
	go func() {
		defer rn.wg.Done()
		rt.RunHeartbeats(ctx, cluster.DefaultHeartbeatInterval)
	}()
	return nil
}

// registerMember records this node in the cluster map so routers
// loading (or re-loading) it can dial us.
func (rn *RunningNode) registerMember() error {
	n := rn.spec
	if n.Shard == "" {
		return errors.New("sor: registering in a cluster map needs Shard")
	}
	reg, err := cluster.LoadRegistry(n.Cluster)
	if err != nil {
		return err
	}
	addr := n.Advertise
	if addr == "" {
		if a := rn.Addr(); a != "" {
			addr = "http://" + a
		} else {
			return errors.New("sor: registering in a cluster map needs Advertise or Listen")
		}
	}
	reg.AddShard(n.Shard)
	return reg.AddMember(cluster.Member{
		Name:  n.Name,
		Shard: n.Shard,
		Role:  rn.roleName(),
		Addr:  addr,
	})
}

// superviseReplication runs the follower pull loop and owns the
// automatic resync: when the leader has compacted past this replica,
// the node fetches the leader's current snapshot over the wire,
// installs it, rebuilds store and server in place, and resumes pulling
// — the dispatcher pointer swaps, the listeners never notice.
func (rn *RunningNode) superviseReplication(ctx, fctx context.Context, follower *replica.Follower) {
	defer rn.wg.Done()
	for {
		err := follower.Run(fctx)
		if ctx.Err() != nil || fctx.Err() != nil {
			return
		}
		if !errors.Is(err, replica.ErrNeedsResync) {
			if err != nil {
				rn.lastErr.Store(err)
			}
			return
		}
		follower, err = rn.resync(ctx)
		if err != nil {
			rn.lastErr.Store(err)
			return
		}
		if follower == nil {
			return
		}
	}
}

// resync rebuilds the replica from a leader snapshot: park the
// dispatcher on a retryable refusal, close the old stack, ship the
// snapshot into the data dir, rebuild, and publish the new dispatcher.
func (rn *RunningNode) resync(ctx context.Context) (*replica.Follower, error) {
	n := rn.spec
	rn.handler.Store(transport.Handler(func(context.Context, wire.Message) (wire.Message, error) {
		return &wire.Ack{OK: false, Code: 503, Message: "replica: resyncing from the leader"}, nil
	}))
	rn.mu.Lock()
	srv := rn.srv
	rn.srv, rn.follower, rn.followerCancel = nil, nil, nil
	rn.mu.Unlock()
	if srv != nil {
		_ = srv.Close()
	}
	client, err := NewClient(n.Leader, WithClientRetry(n.Retry))
	if err != nil {
		return nil, err
	}
	if _, err := replica.ResyncDataDir(ctx, n.Name, client, n.Data); err != nil {
		return nil, fmt.Errorf("sor: resync: %w", err)
	}
	// buildMember starts a fresh supervisor goroutine for the new
	// follower; this one ends (superviseReplication sees nil).
	if err := rn.buildMember(ctx); err != nil {
		return nil, err
	}
	rn.resyncs.Add(1)
	return nil, nil
}

// startListeners binds the HTTP wire endpoint (with the debug surface)
// and the device stream endpoint, both dispatching through Handler().
func (rn *RunningNode) startListeners() error {
	n := rn.spec
	if n.Listen != "" {
		mux := n.Mux
		if mux == nil {
			mux = http.NewServeMux()
		}
		wireHandler, err := NewHTTPHandler(rn.Handler(), WithHandlerObserver(rn.obsv))
		if err != nil {
			return err
		}
		mux.Handle(ServerPath, wireHandler)
		RegisterDebug(mux, rn.obsv)
		replica.RegisterDebug(mux, rn.replicaStatus)
		if n.Role == RoleRouter {
			cluster.RegisterDebug(mux, func() ClusterStatus { return rn.router.Status() })
		}
		ln, err := net.Listen("tcp", n.Listen)
		if err != nil {
			return err
		}
		rn.httpLn = ln
		rn.httpServer = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		rn.wg.Add(1)
		go func() {
			defer rn.wg.Done()
			_ = rn.httpServer.Serve(ln)
		}()
	}
	if n.StreamListen != "" {
		if n.Role == RoleRouter {
			return errors.New("sor: routers serve HTTP only (streams pin a device to one node)")
		}
		ss, err := NewStreamServer(rn.Handler(), rn.sessions, WithStreamServerObserver(rn.obsv))
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", n.StreamListen)
		if err != nil {
			return err
		}
		rn.streamServer, rn.streamLn = ss, ln
		rn.wg.Add(1)
		go func() {
			defer rn.wg.Done()
			_ = ss.Serve(ln)
		}()
	}
	return nil
}

// Handler returns the node's dispatcher. The returned function is
// stable across a replica resync — it always reads the current
// dispatcher through the atomic pointer.
func (rn *RunningNode) Handler() Handler {
	return func(ctx context.Context, m wire.Message) (wire.Message, error) {
		return rn.handler.Load().(transport.Handler)(ctx, m)
	}
}

// Server returns the node's sensing server (nil for a router, and nil
// mid-resync).
func (rn *RunningNode) Server() *Server {
	rn.mu.Lock()
	defer rn.mu.Unlock()
	return rn.srv
}

// Addr is the HTTP wire endpoint's bound address ("" without Listen).
func (rn *RunningNode) Addr() string {
	if rn.httpLn == nil {
		return ""
	}
	return rn.httpLn.Addr().String()
}

// StreamAddr is the device stream endpoint's bound address.
func (rn *RunningNode) StreamAddr() string {
	if rn.streamLn == nil {
		return ""
	}
	return rn.streamLn.Addr().String()
}

// Resyncs counts completed automatic snapshot-ship resyncs.
func (rn *RunningNode) Resyncs() uint64 { return rn.resyncs.Load() }

// roleName is the node's live role — it tracks Promote/Demote, so
// heartbeat replies (and cluster re-registration) stay truthful.
func (rn *RunningNode) roleName() string {
	if rn.spec.Role == RoleRouter {
		return RoleRouter
	}
	rn.mu.Lock()
	srv := rn.srv
	rn.mu.Unlock()
	if srv == nil || srv.IsReplica() {
		return RoleReplica
	}
	return RoleLeader
}

// appliedLSN is what this node reports in heartbeat replies: the
// follower's applied position, or the leader's log head.
func (rn *RunningNode) appliedLSN() uint64 {
	rn.mu.Lock()
	follower, durable := rn.follower, rn.durable
	rn.mu.Unlock()
	if follower != nil {
		return follower.Status().AppliedLSN
	}
	if durable != nil && durable.WAL() != nil {
		return durable.WAL().LastLSN()
	}
	return 0
}

// replicaStatus feeds the /debug/replica endpoint.
func (rn *RunningNode) replicaStatus() replica.Status {
	rn.mu.Lock()
	follower, repl := rn.follower, rn.repl
	rn.mu.Unlock()
	switch {
	case follower != nil:
		self := follower.Status()
		return replica.Status{Role: "follower", LastLSN: self.AppliedLSN, Self: &self}
	case repl != nil:
		ls := repl.Status()
		return replica.Status{Role: ls.Role, LastLSN: ls.LastLSN, Followers: ls.Followers}
	default:
		return replica.Status{Role: "single"}
	}
}

// Promote turns a caught-up replica into a leader: the pull loop stops,
// replica mode ends, and scheduling state is rebuilt from the
// replicated log. The operator runbook still applies — wait for the
// applied LSN to reach the old leader's head first.
func (rn *RunningNode) Promote() error {
	rn.mu.Lock()
	srv, followerCancel := rn.srv, rn.followerCancel
	rn.followerCancel = nil
	rn.mu.Unlock()
	if srv == nil {
		return errors.New("sor: node has no server to promote")
	}
	if followerCancel != nil {
		followerCancel()
	}
	return srv.Promote()
}

// Demote is the first step of a planned failover: this node stops
// accepting mutations (refusing them retryably) so its log head freezes
// and a standby can catch up to it.
func (rn *RunningNode) Demote() error {
	rn.mu.Lock()
	srv := rn.srv
	rn.mu.Unlock()
	if srv == nil {
		return errors.New("sor: node has no server to demote")
	}
	srv.Demote()
	return nil
}

// ForgetFollower drops a decommissioned follower's retention pin so the
// leader's log can compact past it (the operator runbook's step before
// reclaiming disk; the follower rejoins via snapshot-ship resync).
func (rn *RunningNode) ForgetFollower(id string) {
	rn.mu.Lock()
	repl := rn.repl
	rn.mu.Unlock()
	if repl != nil {
		repl.Forget(id)
	}
}

// Checkpoint forces a durable checkpoint now: snapshot written, covered
// WAL segments truncated down to the follower retention floor.
func (rn *RunningNode) Checkpoint() error {
	rn.mu.Lock()
	durable := rn.durable
	rn.mu.Unlock()
	if durable == nil {
		return errors.New("sor: node has no durable backend")
	}
	return durable.Checkpoint()
}

// closeCore shuts the storage-owning half down.
func (rn *RunningNode) closeCore() error {
	rn.mu.Lock()
	srv := rn.srv
	rn.srv = nil
	rn.mu.Unlock()
	if srv != nil {
		return srv.Close()
	}
	return nil
}

// Close stops the node: listeners drain, the replication loop ends, and
// the storage backend closes (final checkpoint, WAL close).
func (rn *RunningNode) Close() error {
	rn.cancel()
	if rn.httpServer != nil {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_ = rn.httpServer.Shutdown(shutdownCtx)
		cancel()
	}
	if rn.streamServer != nil {
		_ = rn.streamServer.Close()
	}
	err := rn.closeCore()
	rn.wg.Wait()
	return err
}
