// Package sor is the public API of this reproduction of "SOR: An Objective
// Ranking System Based on Mobile Phone Sensing" (Sheng, Tang, Wang, Gao,
// Xue — IEEE ICDCS 2014). SOR ranks target places (coffee shops, hiking
// trails, …) from objective sensor data collected by participating
// smartphones instead of subjective star ratings.
//
// The package re-exports the two algorithmic contributions —
//
//   - coverage-maximizing sensing scheduling (§III): monotone submodular
//     maximization over a partition matroid, greedy 1/2-approximation,
//     with an event-driven online variant;
//   - personalizable ranking (§IV): per-feature preference distances,
//     per-feature rankings, and weighted-footrule rank aggregation solved
//     exactly as a min-cost perfect matching (a 2-approximation of the
//     NP-hard weighted Kemeny aggregation);
//
// plus the system substrate: the sensing server, the simulated mobile
// frontend, the binary wire protocol, and the §V experiment harnesses.
// See README.md for a tour and EXPERIMENTS.md for paper-vs-measured
// results.
package sor

import (
	"time"

	"sor/internal/core"
	"sor/internal/coverage"
	"sor/internal/fieldtest"
	"sor/internal/ranking"
	"sor/internal/schedule"
	"sor/internal/sim"
)

// ---- Scheduling (§III) ----

// Participant is one mobile user's availability: presence window and
// sensing budget NBk.
type Participant = schedule.Participant

// Assignment is one user's sensing schedule Φk.
type Assignment = schedule.Assignment

// Plan is a complete sensing schedule with its coverage value.
type Plan = schedule.Plan

// Online is the event-driven scheduler (join/leave/execution re-plans).
type Online = schedule.Online

// EnergyModel prices one measurement for a user (energy-aware scheduling).
type EnergyModel = schedule.EnergyModel

// UniformEnergy charges the same price for every measurement.
type UniformEnergy = schedule.UniformEnergy

// PerUserEnergy prices users individually.
type PerUserEnergy = schedule.PerUserEnergy

// EnergyPlan is the result of energy-aware scheduling.
type EnergyPlan = schedule.EnergyPlan

// SensingRequest parameterizes ScheduleSensing.
type SensingRequest = core.SensingRequest

// SensingPlan bundles the greedy plan, the baseline and the timeline.
type SensingPlan = core.SensingPlan

// Kernel models the probability that a measurement taken at one instant
// still covers another (Eq. 1).
type Kernel = coverage.Kernel

// GaussianKernel is the paper's bell-shaped coverage model.
type GaussianKernel = coverage.GaussianKernel

// Timeline is the discretization of a scheduling period into instants.
type Timeline = coverage.Timeline

// ScheduleSensing computes the greedy 1/2-approximate coverage-maximizing
// schedule (Algorithm 1) plus the paper's baseline for comparison.
func ScheduleSensing(req SensingRequest) (*SensingPlan, error) {
	return core.ScheduleSensing(req)
}

// ScheduleEnergyAware reaches a target average coverage at greedily
// minimized device energy (the dual problem from the paper's companion
// work, its ref. [25]).
func ScheduleEnergyAware(req SensingRequest, targetAvgCoverage float64, model EnergyModel) (*EnergyPlan, error) {
	return core.ScheduleEnergyAware(req, targetAvgCoverage, model)
}

// NewOnlineScheduler builds the event-driven scheduler the sensing server
// runs. A nil kernel defaults to the Gaussian with σ = 10 s; a zero step
// defaults to 10 s.
func NewOnlineScheduler(start time.Time, period, step time.Duration, kernel Kernel) (*Online, *Timeline, error) {
	return core.NewOnlineScheduler(start, period, step, kernel)
}

// ---- Ranking (§IV) ----

// Matrix is the feature matrix H (N places × M features).
type Matrix = ranking.Matrix

// Feature describes one column of H with its default preference.
type Feature = ranking.Feature

// Preference is a user's stance on one feature (target value or MIN/MAX,
// plus a weight in 0..5).
type Preference = ranking.Preference

// Profile is a named user's preference vector.
type Profile = ranking.Profile

// RankResult is the output of one personalized ranking run.
type RankResult = ranking.Result

// Preference kinds.
const (
	PrefValue   = ranking.PrefValue
	PrefMin     = ranking.PrefMin
	PrefMax     = ranking.PrefMax
	PrefDefault = ranking.PrefDefault
)

// MaxWeight is the top of the paper's 0..5 preference-weight scale.
const MaxWeight = ranking.MaxWeight

// RankPlaces runs Algorithm 2 (personalizable ranking) for one profile.
func RankPlaces(m *Matrix, profile Profile) (*RankResult, error) {
	return core.RankPlaces(m, profile)
}

// RankAll ranks several profiles over one matrix.
func RankAll(m *Matrix, profiles []Profile) (map[string]*RankResult, error) {
	return core.RankAll(m, profiles)
}

// RankHybrid blends objective feature rankings with an existing subjective
// rating (e.g. Yelp stars, higher = better) entering as one more weighted
// individual ranking — the integration with subjective recommendation
// systems the paper's introduction motivates.
func RankHybrid(m *Matrix, profile Profile, subjective []float64, subjectiveWeight int) (*RankResult, error) {
	return core.RankHybrid(m, profile, subjective, subjectiveWeight)
}

// SubjectiveFeatureName labels the star-rating pseudo-feature in hybrid
// results.
const SubjectiveFeatureName = ranking.SubjectiveFeatureName

// ---- Experiments (§V) ----

// SimConfig parameterizes the §V-C scheduling simulation.
type SimConfig = sim.Config

// SimOutcome is the greedy-vs-baseline coverage metric pair.
type SimOutcome = sim.Outcome

// SimPoint is one x-position of a Fig. 14 sweep.
type SimPoint = sim.SeriesPoint

// RunSim simulates one §V-C scenario.
func RunSim(cfg SimConfig) (SimOutcome, error) { return sim.Run(cfg) }

// OnlineOutcome compares the event-driven scheduler to clairvoyant
// offline greedy on identical workloads.
type OnlineOutcome = sim.OnlineOutcome

// RunOnlineSim replays arrivals through the online scheduler and measures
// the realized coverage against offline greedy (an extension experiment —
// the paper's deployment is inherently online).
func RunOnlineSim(cfg SimConfig) (OnlineOutcome, error) { return sim.RunOnline(cfg) }

// SweepUsers reproduces Fig. 14(a).
func SweepUsers(users []int, budget int, base SimConfig) ([]SimPoint, error) {
	return sim.SweepUsers(users, budget, base)
}

// SweepBudget reproduces Fig. 14(b).
func SweepBudget(budgets []int, users int, base SimConfig) ([]SimPoint, error) {
	return sim.SweepBudget(budgets, users, base)
}

// FieldTestConfig parameterizes a §V-A/§V-B end-to-end field test.
type FieldTestConfig = fieldtest.Config

// FieldTestResult carries the reproduced figures and tables.
type FieldTestResult = fieldtest.Result

// RunFieldTest executes a simulated field test end to end (real HTTP
// server, simulated phones, Lua scripts, binary protocol).
func RunFieldTest(cfg FieldTestConfig) (*FieldTestResult, error) {
	return fieldtest.Run(cfg)
}
