package sor_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sor"
	"sor/internal/wire"
)

// TestPublicSurfaceBootsObservableServer stands up a complete observable
// deployment through the public API alone — server, HTTP handler, debug
// endpoints, client — sends one request, and reads it back out of the
// metrics and trace endpoints. This is the integration the cmd/ binaries
// are built from, pinned without any internal import (wire aside, which
// is the protocol itself).
func TestPublicSurfaceBootsObservableServer(t *testing.T) {
	o := sor.NewObserver()
	epoch := time.Date(2013, time.November, 15, 11, 0, 0, 0, time.UTC)
	srv, err := sor.NewServer(
		sor.WithStore(sor.NewStore()),
		sor.WithCatalog(sor.DefaultCatalog()),
		sor.WithNow(func() time.Time { return epoch }),
		sor.WithTransport(sor.NewSessionRegistry()),
		sor.WithObserver(o),
	)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Observer() != o {
		t.Fatal("WithObserver did not reach the server")
	}

	h, err := sor.NewHTTPHandler(srv.Handler(), sor.WithHandlerObserver(o))
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle(sor.ServerPath, h)
	sor.RegisterDebug(mux, o)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	client, err := sor.NewClient(ts.URL,
		sor.WithClientRetry(sor.Retry{Attempts: 1, Base: time.Millisecond, Seed: 1}),
		sor.WithClientObserver(o))
	if err != nil {
		t.Fatal(err)
	}
	// An unknown token is still a served request: it exercises the full
	// client→handler→dispatch path and must show up in every layer's
	// series.
	resp, err := client.Send(context.Background(), &wire.Ping{Token: "nobody"})
	if err != nil {
		t.Fatal(err)
	}
	if ack, ok := resp.(*wire.Ack); !ok || ack.OK {
		t.Fatalf("ping for an unknown token returned %+v, want a refusing ack", resp)
	}

	// The metrics endpoint serves a snapshot containing the series every
	// layer registered eagerly at construction.
	metricsResp, err := http.Get(ts.URL + sor.MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = metricsResp.Body.Close() }()
	var snap sor.MetricsSnapshot
	if err := json.NewDecoder(metricsResp.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding %s: %v", sor.MetricsPath, err)
	}
	for _, series := range []string{
		"sor_http_requests_total",
		"sor_client_sends_total",
		`sor_server_requests_total{type="ping"}`,
		"sor_ingest_accepted_total",
	} {
		if _, ok := snap.Counters[series]; !ok {
			t.Errorf("metrics endpoint missing series %s", series)
		}
	}
	if got := snap.Counters["sor_http_requests_total"]; got != 1 {
		t.Errorf("sor_http_requests_total = %d, want 1", got)
	}
	if got := snap.Counters[`sor_server_requests_total{type="ping"}`]; got != 1 {
		t.Errorf(`sor_server_requests_total{type="ping"} = %d, want 1`, got)
	}

	// The trace endpoint has the request's spans, client and server side
	// stitched by one RequestID.
	traceResp, err := http.Get(ts.URL + sor.TracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = traceResp.Body.Close() }()
	var trace struct {
		Spans []sor.SpanRecord `json:"spans"`
	}
	if err := json.NewDecoder(traceResp.Body).Decode(&trace); err != nil {
		t.Fatalf("decoding %s: %v", sor.TracePath, err)
	}
	names := map[string]sor.RequestID{}
	for _, s := range trace.Spans {
		names[s.Name] = s.RequestID
	}
	if names["client.send"] == "" || names["server.handle"] == "" {
		t.Fatalf("trace endpoint spans = %v, want client.send and server.handle", names)
	}
	if names["client.send"] != names["server.handle"] {
		t.Errorf("client and server spans carry different RequestIDs: %q vs %q",
			names["client.send"], names["server.handle"])
	}
}

// TestNewServerDefaults pins that the zero-option constructor is usable:
// fresh store, default catalog, observability off.
func TestNewServerDefaults(t *testing.T) {
	srv, err := sor.NewServer()
	if err != nil {
		t.Fatal(err)
	}
	if srv.Observer() != nil {
		t.Fatal("zero-option server should have no observer")
	}
	if _, err := srv.Handler()(context.Background(), &wire.Ping{Token: "x"}); err != nil {
		t.Fatalf("default server refused a ping dispatch: %v", err)
	}
}

// TestWithMetricsRegistry pins the metrics-only instrumentation path: the
// caller's registry receives the server's series without the caller ever
// constructing an observer.
func TestWithMetricsRegistry(t *testing.T) {
	reg := sor.NewRegistry()
	srv, err := sor.NewServer(sor.WithMetricsRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Handler()(context.Background(), &wire.Ping{Token: "x"}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[`sor_server_requests_total{type="ping"}`]; got != 1 {
		t.Errorf(`caller registry sor_server_requests_total{type="ping"} = %d, want 1`, got)
	}
}

// TestBuiltinProfiles pins the profile lookup the CLI leans on.
func TestBuiltinProfiles(t *testing.T) {
	profiles := sor.BuiltinProfiles("coffee-shop")
	if len(profiles) == 0 {
		t.Fatal("no built-in coffee-shop profiles")
	}
	seen := map[string]bool{}
	for _, p := range profiles {
		seen[p.Name] = true
	}
	if !seen["Emma"] && !seen["emma"] {
		t.Errorf("built-in profiles %v missing the paper's Emma", seen)
	}
}
