// Rank-serving benchmarks: ns per rank query under concurrent query load
// with live batched ingest. These back the epoch-snapshot read path (see
// DESIGN.md "Read path & caching"): BenchmarkRankThroughput is the number
// quoted in CHANGES.md and BENCH_rank.json — "legacy" reproduces the
// pre-snapshot per-query pipeline (process, per-cell matrix assembly,
// column sorts, a fresh flow graph per solve, row copies), "snapshot" goes
// through the server's serving layer.
//
//	go test -bench=RankThroughput -benchtime=2s .
package sor_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"sor/internal/ranking"
	"sor/internal/server"
	"sor/internal/store"
	"sor/internal/wire"
)

const (
	rankBenchCategory = "rankbench"
	rankBenchPlaces   = 200
	rankQueryWorkers  = 8
	// rankBenchRefresh is the staleness bound the snapshot variant serves
	// under; live ingest then costs at most one rebuild per bound instead
	// of one processor run per query. Each epoch advance also re-solves
	// every cached profile on first touch (an n=200 matching is tens of
	// ms), so the bound must be wide enough to amortize those misses —
	// 1 s of staleness for a crowdsensed ranking is far fresher than the
	// minutes-scale sensing cadence that feeds it.
	rankBenchRefresh = time.Second
	// rankBenchProfiles is how many distinct preference profiles the query
	// mix rotates through (each is one result-cache slot per epoch).
	rankBenchProfiles = 16
)

// rankBenchEnv is an in-process server with a fully sensed ≥200-place
// category and 8 joined uploaders for live ingest. It runs on the real
// clock so the staleness bound behaves as in production.
type rankBenchEnv struct {
	*benchEnv
}

func newRankBenchEnv(b *testing.B, refresh time.Duration) *rankBenchEnv {
	b.Helper()
	catalog := map[string][]ranking.Feature{
		rankBenchCategory: {
			{Name: "temperature", Unit: "°F",
				Default: ranking.Preference{Kind: ranking.PrefValue, Value: 73, Weight: 3}},
			{Name: "brightness", Unit: "lux",
				Default: ranking.Preference{Kind: ranking.PrefMax, Weight: 2}},
			{Name: "noise", Unit: "",
				Default: ranking.Preference{Kind: ranking.PrefMin, Weight: 4}},
			{Name: "wifi", Unit: "dBm",
				Default: ranking.Preference{Kind: ranking.PrefMax, Weight: 1}},
		},
	}
	db := store.New()
	// Metrics-enabled, like the ingest benchmarks: the rank numbers must
	// hold with the cache/snapshot counters live (SOR_BENCH_BASELINE=1
	// measures the uninstrumented side).
	srv, err := server.New(server.Config{
		DB:          db,
		Catalog:     catalog,
		RankRefresh: refresh,
		Observer:    benchObserver(),
	})
	if err != nil {
		b.Fatal(err)
	}
	env := &rankBenchEnv{benchEnv: &benchEnv{srv: srv, start: time.Now().UTC()}}
	h := srv.Handler()
	env.handle = func(m wire.Message) (wire.Message, error) { return h(nil, m) }
	for p := 0; p < rankBenchPlaces; p++ {
		appID := fmt.Sprintf("rank-app-%d", p)
		place := fmt.Sprintf("rank-place-%03d", p)
		if err := srv.CreateApp(store.Application{
			ID: appID, Creator: "bench", Category: rankBenchCategory,
			Place: place, Lat: 43.0 + float64(p)*0.01, Lon: -76.0,
			RadiusM: 500, Script: "return 1", PeriodSec: benchPeriodSec,
		}); err != nil {
			b.Fatal(err)
		}
		env.appIDs = append(env.appIDs, appID)
		// Seed every feature directly so the whole category is rankable
		// without simulating 200 participants.
		for j, f := range catalog[rankBenchCategory] {
			if err := db.UpsertFeature(store.FeatureRow{
				Category: rankBenchCategory, Place: place, Feature: f.Name,
				Value:   float64((p*7+j*13)%97) + float64(p%5)/10,
				Samples: 3, Updated: env.start,
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Join one uploader per ingest worker (first 8 apps) for live ingest.
	for u := 0; u < ingestWorkers; u++ {
		userID := fmt.Sprintf("rank-user-%d", u)
		resp, err := env.handle(&wire.Participate{
			UserID: userID, Token: "rank-token-" + userID,
			AppID:  env.appIDs[u],
			Loc:    wire.Location{Lat: 43.0 + float64(u)*0.01, Lon: -76.0},
			Budget: 1 << 19,
		})
		if err != nil {
			b.Fatal(err)
		}
		ack, ok := resp.(*wire.Ack)
		if !ok || !ack.OK {
			b.Fatalf("participate %s refused: %+v", userID, resp)
		}
		inner, err := wire.Decode(ack.Payload)
		if err != nil {
			b.Fatal(err)
		}
		env.userIDs = append(env.userIDs, userID)
		env.taskIDs = append(env.taskIDs, inner.(*wire.Schedule).TaskID)
	}
	return env
}

// rankReport carries all four category sensors so processed ingest keeps
// every place fully sensed.
func (e *rankBenchEnv) rankReport(u int, seq int64) *wire.DataUpload {
	at := e.start.Add(time.Duration(seq%1000) * 10 * time.Second).UnixMilli()
	series := make([]wire.SensorSeries, 0, 4)
	for _, sensor := range []string{"temperature", "light", "microphone", "wifi"} {
		series = append(series, wire.SensorSeries{
			Sensor: sensor,
			Samples: []wire.SensorSample{
				{AtUnixMilli: at, WindowMilli: 5000, Readings: []float64{70.1, 70.3, 70.2}},
			},
		})
	}
	return &wire.DataUpload{
		TaskID: e.taskIDs[u], AppID: e.appIDs[u], UserID: e.userIDs[u],
		Series: series,
	}
}

// startLiveIngest launches paced batched uploaders (one batch per 5 ms per
// worker) and returns a stop function that joins them.
func (e *rankBenchEnv) startLiveIngest(b *testing.B) func() {
	b.Helper()
	stop := make(chan struct{})
	done := make(chan struct{}, ingestWorkers)
	for w := 0; w < ingestWorkers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			var seq int64
			ticker := time.NewTicker(5 * time.Millisecond)
			defer ticker.Stop()
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
				}
				batch := &wire.DataUploadBatch{Uploads: make([]wire.DataUpload, benchBatchSize)}
				for i := range batch.Uploads {
					batch.Uploads[i] = *e.rankReport(w, seq)
					seq++
				}
				if _, err := e.handle(batch); err != nil {
					b.Error(err)
					return
				}
			}
		}(w)
	}
	return func() {
		close(stop)
		for w := 0; w < ingestWorkers; w++ {
			<-done
		}
	}
}

// rankBenchPrefs builds the (i mod rankBenchProfiles)-th profile of the
// query mix: a rotating temperature preference plus rotating weights, so
// the mix exercises several cache slots instead of one.
func rankBenchPrefs(i int) []wire.PrefEntry {
	i %= rankBenchProfiles
	return []wire.PrefEntry{
		{Feature: "temperature", Kind: int(ranking.PrefValue),
			Value: 60 + float64(i), Weight: 1 + i%5},
		{Feature: "noise", Kind: int(ranking.PrefMin), Weight: 1 + (i/4)%5},
	}
}

// legacyRank reproduces the pre-snapshot handleRankRequest at the library
// level: fold pending uploads, assemble the matrix cell by cell from the
// store, construct a ranker, solve, and copy out the rows.
func legacyRank(env *rankBenchEnv, prefs []wire.PrefEntry) (*wire.RankResponse, error) {
	env.srv.Processor().Process()
	matrix, err := env.srv.FeatureMatrix(rankBenchCategory)
	if err != nil {
		return nil, err
	}
	ranker, err := ranking.NewRanker(matrix)
	if err != nil {
		return nil, err
	}
	prof := ranking.Profile{Name: "bench", Prefs: make(map[string]ranking.Preference, len(prefs))}
	for _, p := range prefs {
		prof.Prefs[p.Feature] = ranking.Preference{
			Kind: ranking.PrefKind(p.Kind), Value: p.Value, Weight: p.Weight,
		}
	}
	res, err := ranker.Rank(prof)
	if err != nil {
		return nil, err
	}
	resp := &wire.RankResponse{Category: rankBenchCategory}
	for _, f := range matrix.Features {
		resp.Features = append(resp.Features, f.Name)
	}
	for _, idx := range res.OrderIdx {
		resp.Ranked = append(resp.Ranked, wire.RankedPlace{
			Place:         matrix.Places[idx],
			FeatureValues: append([]float64(nil), matrix.Values[idx]...),
		})
	}
	return resp, nil
}

// BenchmarkRankThroughput measures ns per rank query with 8 parallel query
// goroutines over a 200-place category while batched ingest runs live.
// "legacy" is the pre-snapshot pipeline; "snapshot" serves from the
// epoch-versioned snapshot and profile cache. b.N counts queries in both,
// so ns/op is directly comparable (the ≥3× acceptance bar in ISSUE 2).
func BenchmarkRankThroughput(b *testing.B) {
	run := func(b *testing.B, query func(env *rankBenchEnv, seq int) error) {
		env := newRankBenchEnv(b, rankBenchRefresh)
		// Warm: settle the initial snapshot/matrix and touch every profile
		// in the query mix once, so the timed region measures steady-state
		// serving (epoch refreshes still happen live inside it).
		for i := 0; i < rankBenchProfiles; i++ {
			if err := query(env, i); err != nil {
				b.Fatal(err)
			}
		}
		stopIngest := env.startLiveIngest(b)
		b.ResetTimer()
		var next atomic.Int64
		errCh := make(chan error, rankQueryWorkers)
		for w := 0; w < rankQueryWorkers; w++ {
			go func() {
				for {
					seq := int(next.Add(1)) - 1
					if seq >= b.N {
						errCh <- nil
						return
					}
					if err := query(env, seq); err != nil {
						errCh <- err
						return
					}
				}
			}()
		}
		for w := 0; w < rankQueryWorkers; w++ {
			if err := <-errCh; err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		stopIngest()
	}
	b.Run("legacy", func(b *testing.B) {
		run(b, func(env *rankBenchEnv, seq int) error {
			resp, err := legacyRank(env, rankBenchPrefs(seq))
			if err != nil {
				return err
			}
			if len(resp.Ranked) < rankBenchPlaces {
				return fmt.Errorf("ranked %d places, want >= %d", len(resp.Ranked), rankBenchPlaces)
			}
			return nil
		})
	})
	b.Run("snapshot", func(b *testing.B) {
		run(b, func(env *rankBenchEnv, seq int) error {
			resp, err := env.handle(&wire.RankRequest{
				UserID:   fmt.Sprintf("bench-ranker-%d", seq%rankQueryWorkers),
				Category: rankBenchCategory,
				Prefs:    rankBenchPrefs(seq),
			})
			if err != nil {
				return err
			}
			ranked, ok := resp.(*wire.RankResponse)
			if !ok {
				return fmt.Errorf("rank refused: %+v", resp)
			}
			if len(ranked.Ranked) < rankBenchPlaces {
				return fmt.Errorf("ranked %d places, want >= %d", len(ranked.Ranked), rankBenchPlaces)
			}
			return nil
		})
	})
}
