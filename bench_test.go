// Benchmarks regenerating every table and figure of the paper's §V
// evaluation, plus ablations for the design choices called out in
// DESIGN.md. Custom metrics attach the reproduced quantities (coverage,
// improvement) to the benchmark output so `go test -bench` doubles as the
// experiment runner:
//
//	go test -bench=Fig -benchmem        # all figures
//	go test -bench=Table -benchmem      # both tables
//	go test -bench=Ablation -benchmem   # ablations
package sor_test

import (
	"math/rand"
	"testing"
	"time"

	"sor"
	"sor/internal/fieldtest"
	"sor/internal/rankagg"
	"sor/internal/sim"
	"sor/internal/world"
)

// ---- Fig. 6 / Table I (§V-A) ----

// BenchmarkFig6FeatureDataTrails regenerates the Fig. 6 feature data by
// running the full hiking-trail field test (7 phones per trail, real HTTP
// server, Lua scripts, binary uploads).
func BenchmarkFig6FeatureDataTrails(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sor.RunFieldTest(sor.FieldTestConfig{
			Category:       world.CategoryTrail,
			PhonesPerPlace: 7,
			Budget:         20,
			Seed:           int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Features) != 3 {
			b.Fatalf("features for %d places", len(res.Features))
		}
		if i == 0 {
			b.ReportMetric(res.Features[world.CliffTrail]["roughness"], "cliff-roughness")
			b.ReportMetric(res.Features[world.GreenLakeTrail]["humidity"], "greenlake-humidity")
		}
	}
}

// BenchmarkTableIHikingRankings regenerates Table I from the calibrated
// feature matrix (the ranking algorithm alone; the full pipeline is
// covered by BenchmarkFig6FeatureDataTrails).
func BenchmarkTableIHikingRankings(b *testing.B) {
	matrix := trailMatrix()
	profiles := fieldtest.Profiles(world.CategoryTrail)
	want := fieldtest.ExpectedRankings(world.CategoryTrail)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := sor.RankAll(matrix, profiles)
		if err != nil {
			b.Fatal(err)
		}
		for name, res := range out {
			for pos, place := range res.Order {
				if want[name][pos] != place {
					b.Fatalf("%s ranking deviates from Table I: %v", name, res.Order)
				}
			}
		}
	}
}

// ---- Fig. 10 / Table II (§V-B) ----

// BenchmarkFig10FeatureDataCoffee regenerates the Fig. 10 feature data by
// running the full coffee-shop field test (12 phones per shop).
func BenchmarkFig10FeatureDataCoffee(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sor.RunFieldTest(sor.FieldTestConfig{
			Category:             world.CategoryCoffee,
			PhonesPerPlace:       12,
			Budget:               20,
			Seed:                 int64(i + 1),
			BluetoothFailureRate: 0.05,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Features[world.Starbucks]["noise"], "starbucks-noise")
			b.ReportMetric(res.Features[world.TimHortons]["brightness"], "timhortons-lux")
		}
	}
}

// BenchmarkTableIICoffeeRankings regenerates Table II from the calibrated
// feature matrix.
func BenchmarkTableIICoffeeRankings(b *testing.B) {
	matrix := coffeeMatrix()
	profiles := fieldtest.Profiles(world.CategoryCoffee)
	want := fieldtest.ExpectedRankings(world.CategoryCoffee)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := sor.RankAll(matrix, profiles)
		if err != nil {
			b.Fatal(err)
		}
		for name, res := range out {
			for pos, place := range res.Order {
				if want[name][pos] != place {
					b.Fatalf("%s ranking deviates from Table II: %v", name, res.Order)
				}
			}
		}
	}
}

// ---- Fig. 14 (§V-C) ----

// BenchmarkFig14aCoverageVsUsers regenerates the Fig. 14(a) sweep (users
// 10..55, budget 17). The coverage endpoints are attached as metrics.
func BenchmarkFig14aCoverageVsUsers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := sor.SweepUsers(sim.Fig14aUsers(), 17, sor.SimConfig{
			Runs: 2, Seed: int64(i + 1), Lazy: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		last := points[len(points)-1]
		if last.GreedyMean <= last.BaselineMean {
			b.Fatal("greedy lost to baseline")
		}
		if i == 0 {
			b.ReportMetric(last.GreedyMean, "greedy@55users")
			b.ReportMetric(last.BaselineMean, "baseline@55users")
		}
	}
}

// BenchmarkFig14bCoverageVsBudget regenerates the Fig. 14(b) sweep
// (budgets 15..25, 40 users).
func BenchmarkFig14bCoverageVsBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := sor.SweepBudget(sim.Fig14bBudgets(), 40, sor.SimConfig{
			Runs: 2, Seed: int64(i + 1), Lazy: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		var improvement float64
		for _, p := range points {
			improvement += p.Improvement()
		}
		if i == 0 {
			b.ReportMetric(improvement/float64(len(points))*100, "avg-improvement-%")
		}
	}
}

// ---- Ablations ----

// BenchmarkAblationEagerGreedy measures the paper's literal Algorithm 1
// (O(N²) oracle calls per selection round) at the §V-C operating point.
func BenchmarkAblationEagerGreedy(b *testing.B) {
	benchGreedyVariant(b, false)
}

// BenchmarkAblationLazyGreedy measures the lazy-greedy variant (identical
// schedules, far fewer marginal-gain evaluations).
func BenchmarkAblationLazyGreedy(b *testing.B) {
	benchGreedyVariant(b, true)
}

func benchGreedyVariant(b *testing.B, lazy bool) {
	for i := 0; i < b.N; i++ {
		o, err := sor.RunSim(sor.SimConfig{
			Users: 40, Budget: 17, Runs: 1, Seed: int64(i + 1), Lazy: lazy,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(o.GreedyMean, "coverage")
		}
	}
}

// BenchmarkAblationSigma sweeps the Gaussian kernel σ — the knob §III says
// distinguishes slow features (temperature) from fast ones (acceleration).
func BenchmarkAblationSigma(b *testing.B) {
	for _, sigma := range []float64{5, 10, 20, 40} {
		b.Run(sigmaName(sigma), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o, err := sor.RunSim(sor.SimConfig{
					Users: 40, Budget: 17, Runs: 1, Seed: int64(i + 1),
					Sigma: sigma, Lazy: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(o.GreedyMean, "coverage")
				}
			}
		})
	}
}

func sigmaName(s float64) string {
	switch s {
	case 5:
		return "sigma5s"
	case 10:
		return "sigma10s"
	case 20:
		return "sigma20s"
	default:
		return "sigma40s"
	}
}

// BenchmarkAblationOnlineVsOffline replays the §V-C workload through the
// event-driven online scheduler and reports its competitive ratio against
// the clairvoyant offline greedy.
func BenchmarkAblationOnlineVsOffline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o, err := sor.RunOnlineSim(sor.SimConfig{
			Users: 40, Budget: 17, Runs: 1, Seed: int64(i + 1), Lazy: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(o.CompetitiveRatio(), "online/offline")
			b.ReportMetric(o.Replans, "replans")
		}
	}
}

// BenchmarkAblationAggregators compares the three rank aggregators on
// random 8-place, 5-feature instances: the paper's footrule/min-cost-flow
// (exact footrule, 2-approx Kemeny), exact weighted Kemeny (Held–Karp) and
// Borda.
func BenchmarkAblationAggregators(b *testing.B) {
	mkCollection := func(rng *rand.Rand) rankagg.Collection {
		var c rankagg.Collection
		for j := 0; j < 5; j++ {
			r := make(rankagg.Ranking, 8)
			for i := range r {
				r[i] = i
			}
			rng.Shuffle(len(r), func(x, y int) { r[x], r[y] = r[y], r[x] })
			c.Rankings = append(c.Rankings, r)
			c.Weights = append(c.Weights, float64(1+rng.Intn(5)))
		}
		return c
	}
	b.Run("footrule-mincostflow", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < b.N; i++ {
			if _, _, err := rankagg.FootruleAggregate(mkCollection(rng)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exact-kemeny-heldkarp", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < b.N; i++ {
			if _, _, err := rankagg.ExactKemeny(mkCollection(rng)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("borda", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < b.N; i++ {
			if _, err := rankagg.BordaAggregate(mkCollection(rng)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- shared fixtures ----

func trailMatrix() *sor.Matrix {
	return &sor.Matrix{
		Places: []string{world.GreenLakeTrail, world.LongTrail, world.CliffTrail},
		Features: []sor.Feature{
			{Name: "temperature", Unit: "°F", Default: sor.Preference{Kind: sor.PrefValue, Value: 73}},
			{Name: "humidity", Unit: "%", Default: sor.Preference{Kind: sor.PrefValue, Value: 45}},
			{Name: "roughness", Unit: "m/s²", Default: sor.Preference{Kind: sor.PrefMin}},
			{Name: "curvature", Unit: "°/100m", Default: sor.Preference{Kind: sor.PrefMin}},
			{Name: "altitude change", Unit: "m", Default: sor.Preference{Kind: sor.PrefMin}},
		},
		Values: [][]float64{
			{46, 68, 0.5, 25, 5},
			{50, 55, 0.9, 45, 15},
			{49, 50, 1.4, 70, 28},
		},
	}
}

func coffeeMatrix() *sor.Matrix {
	return &sor.Matrix{
		Places: []string{world.TimHortons, world.BNCafe, world.Starbucks},
		Features: []sor.Feature{
			{Name: "temperature", Unit: "°F", Default: sor.Preference{Kind: sor.PrefValue, Value: 73}},
			{Name: "brightness", Unit: "lux", Default: sor.Preference{Kind: sor.PrefMax}},
			{Name: "noise", Default: sor.Preference{Kind: sor.PrefMin}},
			{Name: "wifi", Unit: "dBm", Default: sor.Preference{Kind: sor.PrefMax}},
		},
		Values: [][]float64{
			{66, 1000, 0.05, -62},
			{71, 400, 0.08, -50},
			{73, 150, 0.18, -72},
		},
	}
}

// BenchmarkAblationEnergyAware measures the energy-aware dual scheduler
// (reach 50% coverage at minimum energy) on the §V-C workload shape and
// reports the energy spent vs the full coverage greedy's implied cost.
func BenchmarkAblationEnergyAware(b *testing.B) {
	start := benchStart()
	for i := 0; i < b.N; i++ {
		parts := benchParticipants(int64(i+1), 20, 17)
		plan, err := sor.ScheduleEnergyAware(sor.SensingRequest{
			Start: start, Period: time.Hour, Participants: parts,
		}, 0.5, sor.UniformEnergy{MilliJ: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(plan.EnergyMilliJ, "energy-mJ")
			b.ReportMetric(plan.AverageCoverage, "coverage")
		}
	}
}

func benchStart() time.Time {
	return time.Date(2013, time.November, 15, 11, 0, 0, 0, time.UTC)
}

func benchParticipants(seed int64, users, budget int) []sor.Participant {
	rng := rand.New(rand.NewSource(seed))
	start := benchStart()
	total := int64(3600)
	parts := make([]sor.Participant, 0, users)
	for i := 0; i < users; i++ {
		arrive := rng.Int63n(total)
		leave := arrive + rng.Int63n(total-arrive+1)
		parts = append(parts, sor.Participant{
			UserID: "u" + string(rune('A'+i%26)) + string(rune('0'+i/26)),
			Arrive: start.Add(time.Duration(arrive) * time.Second),
			Leave:  start.Add(time.Duration(leave) * time.Second),
			Budget: budget,
		})
	}
	return parts
}
