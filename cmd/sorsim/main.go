// Command sorsim reproduces the paper's Fig. 14 scheduling simulation:
// greedy coverage maximization vs the every-10-seconds baseline, sweeping
// the number of mobile users (Fig. 14a) or the per-user sensing budget
// (Fig. 14b).
//
// Usage:
//
//	sorsim -sweep users              # Fig. 14(a)
//	sorsim -sweep budget             # Fig. 14(b)
//	sorsim -sweep both -svg out/     # both, plus SVG plots
//	sorsim -sweep online             # online vs clairvoyant offline
//	sorsim -sweep chaos              # exactly-once ingest under a faulty network
//	sorsim -fleet -phones 100000     # deterministic virtual-day fleet simulation
//	sorsim -fleet -transport stream  # same fleet over persistent sessions
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"sor/internal/chaos"
	"sor/internal/fleetsim"
	"sor/internal/sim"
	"sor/internal/viz"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("sorsim: %v", err)
	}
}

func run() error {
	sweep := flag.String("sweep", "both", "which sweep to run: users | budget | both | online | chaos")
	runs := flag.Int("runs", 10, "random instances per point (the paper averages 10)")
	seed := flag.Int64("seed", 2013, "random seed")
	budget := flag.Int("budget", 17, "per-user budget for the users sweep (paper: 17)")
	users := flag.Int("users", 40, "user count for the budget sweep (paper: 40)")
	svgDir := flag.String("svg", "", "optional directory for SVG plots")
	fleet := flag.Bool("fleet", false, "run the deterministic discrete-event fleet simulation instead of a sweep")
	phones := flag.Int("phones", 10000, "fleet size for -fleet")
	perApp := flag.Int("per-app", 100, "phones per application shard for -fleet")
	fleetBudget := flag.Int("fleet-budget", 2, "per-phone budget for -fleet")
	step := flag.Duration("step", 5*time.Minute, "timeline step for -fleet")
	period := flag.Duration("period", 24*time.Hour, "scheduling period for -fleet")
	loss := flag.Float64("loss", 0.05, "request loss probability for -fleet")
	ackLoss := flag.Float64("ack-loss", 0.05, "ack loss probability for -fleet")
	partition := flag.Duration("partition", time.Hour, "partition duration for -fleet (0 = none)")
	verify := flag.Bool("verify", false, "with -fleet: run the same seed twice and require identical digests")
	coverageCurve := flag.Bool("coverage", false, "with -fleet: print the hourly coverage curve")
	rankPlaces := flag.Int("rank-places", 0, "with -fleet: seed a static rank category of this many places and serve bounded rank queries across the virtual day (0 = off; the columnar read-path soak uses 10000)")
	rankQueries := flag.Int("rank-queries", 96, "with -fleet -rank-places: rank queries spread over the period")
	rankTopK := flag.Int("rank-topk", 10, "with -fleet -rank-places: response bound per rank query")
	transport := flag.String("transport", "http", "with -fleet: modeled transport, http (one-shot) or stream (persistent sessions)")
	flag.Parse()

	if *fleet {
		return runFleet(fleetsim.Config{
			Phones:       *phones,
			PhonesPerApp: *perApp,
			Budget:       *fleetBudget,
			Seed:         *seed,
			Period:       *period,
			Step:         *step,
			RequestLoss:  *loss,
			AckLoss:      *ackLoss,
			SpikeProb:    0.02,
			Spike:        time.Second,
			PartitionFor: *partition,
			RankPlaces:   *rankPlaces,
			RankQueries:  *rankQueries,
			RankTopK:     *rankTopK,
			Transport:    *transport,
		}, *verify, *coverageCurve)
	}

	base := sim.Config{Runs: *runs, Seed: *seed, Lazy: true}

	if *sweep == "users" || *sweep == "both" {
		points, err := sim.SweepUsers(sim.Fig14aUsers(), *budget, base)
		if err != nil {
			return err
		}
		printSweep("Fig. 14(a): average coverage probability vs number of mobile users",
			"users", points)
		if *svgDir != "" {
			if err := writeSVG(*svgDir, "fig14a.svg",
				"Fig 14(a): coverage vs users (budget 17)", "# of mobile users", points); err != nil {
				return err
			}
		}
	}
	if *sweep == "budget" || *sweep == "both" {
		points, err := sim.SweepBudget(sim.Fig14bBudgets(), *users, base)
		if err != nil {
			return err
		}
		printSweep("Fig. 14(b): average coverage probability vs sensing budget",
			"budget", points)
		if *svgDir != "" {
			if err := writeSVG(*svgDir, "fig14b.svg",
				"Fig 14(b): coverage vs budget (40 users)", "budget", points); err != nil {
				return err
			}
		}
	}
	if *sweep == "online" {
		o, err := sim.RunOnline(sim.Config{
			Users: *users, Budget: *budget, Runs: *runs, Seed: *seed, Lazy: true,
		})
		if err != nil {
			return err
		}
		fmt.Println("Online (event-driven) vs clairvoyant offline greedy:")
		fmt.Printf("  online  %.3f ± %.3f (avg %.0f re-plans/run)\n", o.OnlineMean, o.OnlineStd, o.Replans)
		fmt.Printf("  offline %.3f ± %.3f\n", o.OfflineMean, o.OfflineStd)
		fmt.Printf("  competitive ratio %.3f\n", o.CompetitiveRatio())
	}
	if *sweep == "chaos" {
		if err := runChaosSweep(*users, *budget, *seed); err != nil {
			return err
		}
	}
	if *sweep != "users" && *sweep != "budget" && *sweep != "both" && *sweep != "online" && *sweep != "chaos" {
		return fmt.Errorf("unknown sweep %q", *sweep)
	}
	return nil
}

// runFleet drives the discrete-event fleet simulation: a whole virtual
// day of joins, uploads, retries and faults in one deterministic pass.
// With -verify it runs the identical seed a second time and fails unless
// the end-state digests match byte for byte.
func runFleet(cfg fleetsim.Config, verify, coverage bool) error {
	wall := time.Now()
	res, err := fleetsim.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Summary())
	fmt.Printf("virtual span %s, wall time %s\n",
		res.VirtualEnd.Sub(fleetsim.Epoch), time.Since(wall).Round(time.Millisecond))
	if coverage {
		fmt.Println("\nhourly coverage (acked measurement instants):")
		fmt.Print(res.CoverageTable())
	}
	if len(res.Rank) > 0 {
		fmt.Println("\nrank-latency curve (virtual hour → wall serving latency):")
		fmt.Print(res.RankTable())
	}
	if verify {
		again, err := fleetsim.Run(cfg)
		if err != nil {
			return fmt.Errorf("verification run: %w", err)
		}
		if again.Digest != res.Digest {
			return fmt.Errorf("NON-DETERMINISTIC: same seed, different digests\n%s",
				fleetsim.FirstDiff(res, again))
		}
		fmt.Println("verified: second run of the same seed is byte-identical")
	}
	if res.Abandoned > 0 {
		return fmt.Errorf("%d reports abandoned; replay with -seed %d", res.Abandoned, cfg.Seed)
	}
	return nil
}

// runChaosSweep runs the exactly-once soak twice — clean network, then
// 30 % request loss + 30 % ack loss + a partition — and reports whether
// the faulty fleet converged to byte-identical server state.
func runChaosSweep(users, budget int, seed int64) error {
	// The full Fig. 14 population is overkill for an end-to-end HTTP soak;
	// cap the fleet so the sweep stays interactive.
	phones := users
	if phones > 12 {
		phones = 12
	}
	if budget > 6 {
		budget = 6
	}
	cfg := chaos.Config{Phones: phones, Budget: budget, Seed: seed}
	clean, err := chaos.RunSoak(cfg)
	if err != nil {
		return fmt.Errorf("fault-free soak: %w", err)
	}
	faulty := cfg
	faulty.RequestLoss = 0.3
	faulty.AckLoss = 0.3
	faulty.SpikeProb = 0.1
	faulty.Spike = 2 * time.Millisecond
	faulty.Partition = 150 * time.Millisecond
	chaotic, err := chaos.RunSoak(faulty)
	if err != nil {
		return fmt.Errorf("chaotic soak: %w", err)
	}
	fmt.Printf("Exactly-once ingest soak (%d phones, budget %d):\n", phones, budget)
	fmt.Printf("  clean   %s\n", clean.Summary())
	fmt.Printf("  chaotic %s\n", chaotic.Summary())
	if diff := chaos.DiffState(clean, chaotic); diff != "" {
		return fmt.Errorf("chaotic run diverged from the fault-free run: %s", diff)
	}
	fmt.Println("  converged: feature matrix, coverage timeline and budget ledger byte-identical")
	return nil
}

func printSweep(title, xName string, points []sim.SeriesPoint) {
	fmt.Println(title)
	fmt.Printf("%8s  %18s  %18s  %12s\n", xName, "greedy (mean±std)", "baseline (mean±std)", "improvement")
	var totalImp float64
	for _, p := range points {
		fmt.Printf("%8d  %9.3f ± %.3f  %9.3f ± %.3f  %+10.0f%%\n",
			p.X, p.GreedyMean, p.GreedyStd, p.BaselineMean, p.BaselineStd,
			p.Improvement()*100)
		totalImp += p.Improvement()
	}
	fmt.Printf("average improvement over the sweep: %+.0f%% (paper reports ~65%%)\n\n",
		totalImp/float64(len(points))*100)
}

func writeSVG(dir, name, title, xlabel string, points []sim.SeriesPoint) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	chart := viz.LineChart{
		Title:  title,
		XLabel: xlabel,
		YLabel: "average coverage probability",
	}
	greedy := viz.Series{Label: "Greedy (this paper)"}
	baseline := viz.Series{Label: "Baseline"}
	for _, p := range points {
		chart.X = append(chart.X, float64(p.X))
		greedy.Values = append(greedy.Values, p.GreedyMean)
		baseline.Values = append(baseline.Values, p.BaselineMean)
	}
	chart.Series = []viz.Series{greedy, baseline}
	svg, err := chart.SVG(640, 400)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
