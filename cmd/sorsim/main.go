// Command sorsim reproduces the paper's Fig. 14 scheduling simulation:
// greedy coverage maximization vs the every-10-seconds baseline, sweeping
// the number of mobile users (Fig. 14a) or the per-user sensing budget
// (Fig. 14b).
//
// Usage:
//
//	sorsim -sweep users              # Fig. 14(a)
//	sorsim -sweep budget             # Fig. 14(b)
//	sorsim -sweep both -svg out/     # both, plus SVG plots
//	sorsim -sweep online             # online vs clairvoyant offline
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"sor/internal/sim"
	"sor/internal/viz"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("sorsim: %v", err)
	}
}

func run() error {
	sweep := flag.String("sweep", "both", "which sweep to run: users | budget | both | online")
	runs := flag.Int("runs", 10, "random instances per point (the paper averages 10)")
	seed := flag.Int64("seed", 2013, "random seed")
	budget := flag.Int("budget", 17, "per-user budget for the users sweep (paper: 17)")
	users := flag.Int("users", 40, "user count for the budget sweep (paper: 40)")
	svgDir := flag.String("svg", "", "optional directory for SVG plots")
	flag.Parse()

	base := sim.Config{Runs: *runs, Seed: *seed, Lazy: true}

	if *sweep == "users" || *sweep == "both" {
		points, err := sim.SweepUsers(sim.Fig14aUsers(), *budget, base)
		if err != nil {
			return err
		}
		printSweep("Fig. 14(a): average coverage probability vs number of mobile users",
			"users", points)
		if *svgDir != "" {
			if err := writeSVG(*svgDir, "fig14a.svg",
				"Fig 14(a): coverage vs users (budget 17)", "# of mobile users", points); err != nil {
				return err
			}
		}
	}
	if *sweep == "budget" || *sweep == "both" {
		points, err := sim.SweepBudget(sim.Fig14bBudgets(), *users, base)
		if err != nil {
			return err
		}
		printSweep("Fig. 14(b): average coverage probability vs sensing budget",
			"budget", points)
		if *svgDir != "" {
			if err := writeSVG(*svgDir, "fig14b.svg",
				"Fig 14(b): coverage vs budget (40 users)", "budget", points); err != nil {
				return err
			}
		}
	}
	if *sweep == "online" {
		o, err := sim.RunOnline(sim.Config{
			Users: *users, Budget: *budget, Runs: *runs, Seed: *seed, Lazy: true,
		})
		if err != nil {
			return err
		}
		fmt.Println("Online (event-driven) vs clairvoyant offline greedy:")
		fmt.Printf("  online  %.3f ± %.3f (avg %.0f re-plans/run)\n", o.OnlineMean, o.OnlineStd, o.Replans)
		fmt.Printf("  offline %.3f ± %.3f\n", o.OfflineMean, o.OfflineStd)
		fmt.Printf("  competitive ratio %.3f\n", o.CompetitiveRatio())
	}
	if *sweep != "users" && *sweep != "budget" && *sweep != "both" && *sweep != "online" {
		return fmt.Errorf("unknown sweep %q", *sweep)
	}
	return nil
}

func printSweep(title, xName string, points []sim.SeriesPoint) {
	fmt.Println(title)
	fmt.Printf("%8s  %18s  %18s  %12s\n", xName, "greedy (mean±std)", "baseline (mean±std)", "improvement")
	var totalImp float64
	for _, p := range points {
		fmt.Printf("%8d  %9.3f ± %.3f  %9.3f ± %.3f  %+10.0f%%\n",
			p.X, p.GreedyMean, p.GreedyStd, p.BaselineMean, p.BaselineStd,
			p.Improvement()*100)
		totalImp += p.Improvement()
	}
	fmt.Printf("average improvement over the sweep: %+.0f%% (paper reports ~65%%)\n\n",
		totalImp/float64(len(points))*100)
}

func writeSVG(dir, name, title, xlabel string, points []sim.SeriesPoint) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	chart := viz.LineChart{
		Title:  title,
		XLabel: xlabel,
		YLabel: "average coverage probability",
	}
	greedy := viz.Series{Label: "Greedy (this paper)"}
	baseline := viz.Series{Label: "Baseline"}
	for _, p := range points {
		chart.X = append(chart.X, float64(p.X))
		greedy.Values = append(greedy.Values, p.GreedyMean)
		baseline.Values = append(baseline.Values, p.BaselineMean)
	}
	chart.Series = []viz.Series{greedy, baseline}
	svg, err := chart.SVG(640, 400)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
