package main

import (
	"os"
	"path/filepath"
	"testing"

	"sor"
)

// backendFor materializes the storage spec storageFromFlags produces —
// the same mapping StartNode applies to Node.Data/DurableOptions.
func backendFor(data string, opts []sor.DurableOption) sor.Storage {
	if data == "" {
		return sor.Memory()
	}
	return sor.Durable(data, opts...)
}

func TestStorageFlagsAreMutuallyExclusive(t *testing.T) {
	if _, _, _, err := storageFromFlags("data", "snap.json"); err == nil {
		t.Fatal("want error when both -data-dir and -snapshot are set")
	}
}

func TestStorageFlagsDefaultToMemory(t *testing.T) {
	data, opts, _, err := storageFromFlags("", "")
	if err != nil {
		t.Fatal(err)
	}
	if data != "" {
		t.Fatalf("default storage rooted at %q, want in-memory", data)
	}
	backend := backendFor(data, opts)
	db, err := backend.Open()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.PutUser(sor.User{ID: "u1"}); err != nil {
		t.Fatal(err)
	}
	if err := backend.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDataDirFlagIsDurable(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sor-data")
	data, opts, _, err := storageFromFlags(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	backend := backendFor(data, opts)
	db, err := backend.Open()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.PutUser(sor.User{ID: "u1", Name: "Alice"}); err != nil {
		t.Fatal(err)
	}
	if err := backend.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.json")); err != nil {
		t.Fatalf("no snapshot in data dir: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "wal")); err != nil {
		t.Fatalf("no wal dir in data dir: %v", err)
	}

	data2, opts2, _, err := storageFromFlags(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	backend2 := backendFor(data2, opts2)
	db2, err := backend2.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer backend2.Close()
	if u, err := db2.User("u1"); err != nil || u.Name != "Alice" {
		t.Fatalf("recovered user = %+v, %v", u, err)
	}
}

// TestDeprecatedSnapshotFlagStillWorks pins the pre-WAL flag's contract:
// state persists in exactly the file it names, with no WAL beside it,
// and loads back on the next start.
func TestDeprecatedSnapshotFlagStillWorks(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sor.json")
	data, opts, desc, err := storageFromFlags("", path)
	if err != nil {
		t.Fatal(err)
	}
	if desc == "" {
		t.Fatal("deprecated flag should describe itself")
	}
	backend := backendFor(data, opts)
	db, err := backend.Open()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.PutUser(sor.User{ID: "u1", Name: "Alice"}); err != nil {
		t.Fatal(err)
	}
	if err := backend.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("snapshot not written to the named file: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "wal")); !os.IsNotExist(err) {
		t.Fatalf("deprecated -snapshot mode must not create a WAL: %v", err)
	}

	data2, opts2, _, err := storageFromFlags("", path)
	if err != nil {
		t.Fatal(err)
	}
	backend2 := backendFor(data2, opts2)
	db2, err := backend2.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer backend2.Close()
	if u, err := db2.User("u1"); err != nil || u.Name != "Alice" {
		t.Fatalf("recovered user = %+v, %v", u, err)
	}
}
