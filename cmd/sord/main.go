// Command sord runs a SOR sensing server: it registers the six canonical
// Syracuse target places as applications, prints their 2D barcodes'
// payloads, and serves the binary-over-HTTP protocol on -addr, plus the
// ops surface: /debug/metrics (JSON metrics snapshot), /debug/trace
// (recent request spans), /debug/replica (replication status), and
// /debug/pprof.
//
// Usage:
//
//	sord -addr :8080 [-stream-addr :8081] [-data-dir sor-data] [-barcodes]
//	sord -addr :8082 -data-dir node-b -role replica -node-id node-b \
//	     -leader-url http://localhost:8080 [-max-replica-lag 5s]
//
// With -stream-addr the server additionally accepts persistent device
// streams (the session transport): one framed TCP connection per phone
// multiplexing uploads, acks, schedule pushes, epoch invalidations, and
// wake-ups, carrying the same wire payloads the HTTP endpoint does.
//
// With -data-dir the server is durable: a checkpointed snapshot plus a
// write-ahead log of every mutation since, recovered on startup. Without
// it state is in-memory and dies with the process.
//
// A durable leader ships its WAL to any follower that pulls, and pins
// log retention per acked follower. A -role replica node bootstraps from
// its own data directory, streams the leader's log, serves rank reads
// (refusing them past -max-replica-lag), and refuses writes. Failover is
// operator-triggered: stop the leader, restart the chosen follower with
// -role leader, point the other nodes' -leader-url at it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"sor"
	"sor/internal/barcode"
	"sor/internal/fieldtest"
	"sor/internal/replica"
	"sor/internal/store"
	"sor/internal/world"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("sord: %v", err)
	}
}

// storageFromFlags picks the backend: -data-dir is the supported knob;
// -snapshot is the deprecated pre-WAL flag, kept as an alias for a
// snapshot-only backend rooted at the file it names.
func storageFromFlags(dataDir, snapshot string) (sor.Storage, string, error) {
	switch {
	case dataDir != "" && snapshot != "":
		return nil, "", errors.New("-data-dir and -snapshot are mutually exclusive")
	case dataDir != "":
		return sor.Durable(dataDir), fmt.Sprintf("durable state in %s (snapshot + WAL)", dataDir), nil
	case snapshot != "":
		// Deprecated path: same file, same periodic-snapshot-only
		// durability as before the WAL existed.
		return sor.Durable(filepath.Dir(snapshot),
			sor.WithSnapshotPath(snapshot),
			sor.WithoutWAL(),
		), fmt.Sprintf("deprecated -snapshot: periodic snapshots in %s, no WAL (use -data-dir)", snapshot), nil
	default:
		return sor.Memory(), "in-memory state (set -data-dir for durability)", nil
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	streamAddr := flag.String("stream-addr", "", "listen address for persistent device streams (empty = HTTP only)")
	dataDir := flag.String("data-dir", "", "directory for durable state (snapshot + write-ahead log)")
	snapshot := flag.String("snapshot", "", "deprecated: JSON snapshot file to load and periodically save (use -data-dir)")
	showBarcodes := flag.Bool("barcodes", false, "print each place's 2D barcode as ASCII art")
	public := flag.String("public-url", "", "base URL phones should use (default http://<addr>)")
	spanBuffer := flag.Int("span-buffer", 0, "trace ring capacity (default 4096)")
	role := flag.String("role", "leader", "cluster role: leader (serves writes and ships its WAL) or replica (streams a leader, serves reads)")
	nodeID := flag.String("node-id", "", "this node's replication identity (default: hostname)")
	leaderURL := flag.String("leader-url", "", "leader base URL (required with -role replica)")
	pullInterval := flag.Duration("pull-interval", replica.DefaultPullInterval, "replica pull/heartbeat cadence while caught up")
	maxReplicaLag := flag.Duration("max-replica-lag", 0, "replica refuses rank queries past this silence from the leader (0 = serve regardless)")
	flag.Parse()

	isReplica := false
	switch *role {
	case "leader":
	case "replica":
		isReplica = true
		if *dataDir == "" {
			return errors.New("-role replica needs -data-dir (the follower appends the leader's WAL to its own log)")
		}
		if *leaderURL == "" {
			return errors.New("-role replica needs -leader-url")
		}
	default:
		return fmt.Errorf("unknown -role %q (leader|replica)", *role)
	}
	if *nodeID == "" {
		if host, err := os.Hostname(); err == nil {
			*nodeID = host
		} else {
			*nodeID = "node"
		}
	}

	storage, storageDesc, err := storageFromFlags(*dataDir, *snapshot)
	if err != nil {
		return err
	}

	obsv := sor.NewObserver(sor.WithTracer(sor.NewTracer(*spanBuffer)))
	// The session registry is the push path: schedules, invalidations,
	// and wake-ups ride whatever device streams are live. With no stream
	// listener it is simply always empty.
	registry := sor.NewSessionRegistry(sor.WithSessionMetrics(obsv.Metrics()))
	srv, err := sor.NewServer(
		sor.WithStorage(storage),
		sor.WithCatalog(sor.DefaultCatalog()),
		sor.WithTransport(registry),
		sor.WithObserver(obsv),
		sor.WithMaxReplicaLag(*maxReplicaLag),
	)
	if err != nil {
		return err
	}
	if isReplica {
		err = srv.OpenAsReplica()
	} else {
		err = srv.Open()
	}
	if err != nil {
		return fmt.Errorf("opening storage: %w", err)
	}
	log.Print(storageDesc)

	// Replication wiring. A durable leader serves ReplPull off its log;
	// a replica pulls the leader's and applies it to its own.
	handler := srv.Handler()
	var leader *replica.Leader
	var follower *replica.Follower
	durable, _ := storage.(*store.DurableBackend)
	switch {
	case isReplica:
		client, err := sor.NewClient(*leaderURL)
		if err != nil {
			return err
		}
		follower = replica.NewFollower(*nodeID, srv.DB(), client,
			replica.WithPullInterval(*pullInterval),
			replica.WithFollowerMetrics(obsv.Metrics()),
		)
		srv.SetReplicaLagProbe(follower.LagProbe())
		log.Printf("replica %s following %s (pull interval %s, max lag %s)",
			*nodeID, *leaderURL, *pullInterval, *maxReplicaLag)
	case durable != nil && durable.WAL() != nil:
		leader, err = replica.NewLeader(durable.WAL(),
			replica.WithStateDir(durable.Dir()),
			replica.WithLeaderMetrics(obsv.Metrics()),
		)
		if err != nil {
			return err
		}
		handler = replica.Handler(leader, handler)
		log.Printf("leader %s shipping WAL from %s", *nodeID, durable.WALDir())
	}

	baseURL := *public
	if baseURL == "" {
		baseURL = "http://localhost" + *addr
	}
	// A replica never registers apps itself: every mutation, including
	// app creation, arrives through the replicated log.
	if !isReplica {
		if err := registerCanonicalApps(srv, baseURL, *showBarcodes); err != nil {
			return err
		}
	}

	sorHandler, err := sor.NewHTTPHandler(handler, sor.WithHandlerObserver(obsv))
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.Handle(sor.ServerPath, sorHandler)
	sor.RegisterDebug(mux, obsv)
	replica.RegisterDebug(mux, func() replica.Status {
		switch {
		case follower != nil:
			self := follower.Status()
			return replica.Status{Role: "follower", LastLSN: self.AppliedLSN, Self: &self}
		case leader != nil:
			ls := leader.Status()
			return replica.Status{Role: ls.Role, LastLSN: ls.LastLSN, Followers: ls.Followers}
		default:
			return replica.Status{Role: "single"}
		}
	})
	// The Visualization module (§II-B): /charts?category=coffee-shop
	// renders the current feature data as inline SVG bar charts.
	mux.HandleFunc("/charts", func(w http.ResponseWriter, r *http.Request) {
		category := r.URL.Query().Get("category")
		if category == "" {
			category = world.CategoryCoffee
		}
		if !isReplica {
			// A replica's features arrive via the replicated log; folding
			// here would write to its own.
			srv.Processor().Process()
		}
		charts, err := srv.Charts(category)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, "<!DOCTYPE html><html><head><title>SOR feature data</title></head><body><h1>%s</h1>\n", category)
		for _, c := range charts {
			svg, err := c.SVG(480, 320)
			if err != nil {
				continue
			}
			fmt.Fprintln(w, svg)
		}
		fmt.Fprintln(w, "</body></html>")
	})

	processingCtx, stopProcessing := context.WithCancel(context.Background())
	defer stopProcessing()
	replCh := make(chan error, 1)
	if isReplica {
		go func() { replCh <- follower.Run(processingCtx) }()
	} else {
		if _, err := srv.StartProcessing(processingCtx, 30*time.Second); err != nil {
			return err
		}
	}

	log.Printf("sensing server listening on %s (endpoints %s, /charts, %s, %s, %s, /debug/pprof)",
		*addr, sor.ServerPath, sor.MetricsPath, sor.TracePath, replica.DebugPath)
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	// Graceful shutdown: stop accepting, then close the storage backend so
	// the final checkpoint and WAL close happen before exit.
	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.ListenAndServe() }()

	// The stream endpoint shares the exact dispatcher (replica wrapper
	// included), so both transports serve the same message set.
	var streamServer *sor.StreamServer
	if *streamAddr != "" {
		streamServer, err = sor.NewStreamServer(handler, registry,
			sor.WithStreamServerObserver(obsv))
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", *streamAddr)
		if err != nil {
			return fmt.Errorf("stream listener: %w", err)
		}
		log.Printf("device stream endpoint listening on %s", ln.Addr())
		go func() {
			serveErr := streamServer.Serve(ln)
			if serveErr != nil && !errors.Is(serveErr, net.ErrClosed) {
				errCh <- fmt.Errorf("stream endpoint: %w", serveErr)
			}
		}()
	}
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	shutdown := func() error {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpServer.Shutdown(shutdownCtx)
		if streamServer != nil {
			_ = streamServer.Close()
		}
		stopProcessing()
		if err := srv.Close(); err != nil {
			return fmt.Errorf("closing storage: %w", err)
		}
		return nil
	}
	select {
	case err := <-errCh:
		if streamServer != nil {
			_ = streamServer.Close()
		}
		_ = srv.Close()
		return err
	case err := <-replCh:
		// The stream became unresumable (the leader compacted past us):
		// exit cleanly so the operator can resync from a fresh data dir.
		if closeErr := shutdown(); closeErr != nil {
			return closeErr
		}
		return fmt.Errorf("replication stopped: %w", err)
	case sig := <-sigCh:
		log.Printf("received %s, shutting down", sig)
		return shutdown()
	}
}

// registerCanonicalApps creates the six paper field-test applications
// (idempotent over recovered state) and prints their join barcodes.
func registerCanonicalApps(srv *sor.Server, baseURL string, showBarcodes bool) error {
	w, err := world.Canonical()
	if err != nil {
		return err
	}
	type appDef struct {
		id, place, category, script string
	}
	apps := []appDef{
		{"hiking-trail-1", world.GreenLakeTrail, world.CategoryTrail, fieldtest.TrailScript},
		{"hiking-trail-2", world.LongTrail, world.CategoryTrail, fieldtest.TrailScript},
		{"hiking-trail-3", world.CliffTrail, world.CategoryTrail, fieldtest.TrailScript},
		{"coffee-shop-1", world.TimHortons, world.CategoryCoffee, fieldtest.CoffeeScript},
		{"coffee-shop-2", world.BNCafe, world.CategoryCoffee, fieldtest.CoffeeScript},
		{"coffee-shop-3", world.Starbucks, world.CategoryCoffee, fieldtest.CoffeeScript},
	}
	for _, a := range apps {
		place, err := w.Place(a.place)
		if err != nil {
			return err
		}
		err = srv.CreateApp(sor.Application{
			ID:        a.id,
			Creator:   "sord",
			Category:  a.category,
			Place:     a.place,
			Lat:       place.Loc.Lat,
			Lon:       place.Loc.Lon,
			RadiusM:   place.RadiusM,
			Script:    a.script,
			PeriodSec: 10800,
		})
		if err != nil {
			// Recovered state may already contain the apps.
			log.Printf("app %s: %v (continuing)", a.id, err)
			continue
		}
		code, err := barcode.Encode(barcode.Payload{AppID: a.id, Place: a.place, Server: baseURL})
		if err != nil {
			return err
		}
		log.Printf("registered %-16s -> %s (barcode: %dx%d modules)", a.id, a.place, code.Size, code.Size)
		if showBarcodes {
			fmt.Println(code.ASCII())
		}
	}
	return nil
}
