// Command sord runs a SOR node: a sensing server (leader or replica) or
// a cluster router. A leader registers the six canonical Syracuse target
// places as applications, prints their 2D barcodes' payloads, and serves
// the binary-over-HTTP protocol on -addr, plus the ops surface:
// /debug/metrics (JSON metrics snapshot), /debug/trace (recent request
// spans), /debug/replica (replication status), /debug/cluster (on a
// router), and /debug/pprof.
//
// Usage:
//
//	sord -addr :8080 [-stream-addr :8081] [-data-dir sor-data] [-barcodes]
//	sord -addr :8082 -data-dir node-b -role replica -node-id node-b \
//	     -leader-url http://localhost:8080 [-max-replica-lag 5s]
//	sord -addr :8090 -role router -node-id router-0 -cluster cluster.json
//
// With -stream-addr the server additionally accepts persistent device
// streams (the session transport): one framed TCP connection per phone
// multiplexing uploads, acks, schedule pushes, epoch invalidations, and
// wake-ups, carrying the same wire payloads the HTTP endpoint does.
//
// With -data-dir the server is durable: a checkpointed snapshot plus a
// write-ahead log of every mutation since, recovered on startup. Without
// it state is in-memory and dies with the process.
//
// A durable leader ships its WAL to any follower that pulls, pins log
// retention per acked follower, and serves snapshot-ship resync
// sessions. A -role replica node bootstraps from its own data directory,
// streams the leader's log, serves rank reads (refusing them past
// -max-replica-lag), and refuses writes; if the leader has compacted
// past it, the node automatically refetches the leader's snapshot over
// the wire and rejoins — no operator data-dir copying. With -cluster and
// -shard a member also registers itself in the shared cluster map so
// routers can find it; a -role router node forwards phone traffic to the
// owning shard's leader by app category, failing over to promoted
// standbys it discovers through heartbeats.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"sor"
	"sor/internal/barcode"
	"sor/internal/fieldtest"
	"sor/internal/world"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("sord: %v", err)
	}
}

// storageFromFlags maps the storage flags onto a Node's Data spec:
// -data-dir is the supported knob; -snapshot is the deprecated pre-WAL
// flag, kept as an alias for a snapshot-only backend rooted at the file
// it names. Empty data means in-memory state.
func storageFromFlags(dataDir, snapshot string) (data string, opts []sor.DurableOption, desc string, err error) {
	switch {
	case dataDir != "" && snapshot != "":
		return "", nil, "", errors.New("-data-dir and -snapshot are mutually exclusive")
	case dataDir != "":
		return dataDir, nil, fmt.Sprintf("durable state in %s (snapshot + WAL)", dataDir), nil
	case snapshot != "":
		// Deprecated path: same file, same periodic-snapshot-only
		// durability as before the WAL existed.
		return filepath.Dir(snapshot), []sor.DurableOption{
			sor.WithSnapshotPath(snapshot),
			sor.WithoutWAL(),
		}, fmt.Sprintf("deprecated -snapshot: periodic snapshots in %s, no WAL (use -data-dir)", snapshot), nil
	default:
		return "", nil, "in-memory state (set -data-dir for durability)", nil
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	streamAddr := flag.String("stream-addr", "", "listen address for persistent device streams (empty = HTTP only)")
	dataDir := flag.String("data-dir", "", "directory for durable state (snapshot + write-ahead log)")
	snapshot := flag.String("snapshot", "", "deprecated: JSON snapshot file to load and periodically save (use -data-dir)")
	showBarcodes := flag.Bool("barcodes", false, "print each place's 2D barcode as ASCII art")
	public := flag.String("public-url", "", "base URL phones should use (default http://<addr>)")
	spanBuffer := flag.Int("span-buffer", 0, "trace ring capacity (default 4096)")
	role := flag.String("role", sor.RoleLeader, "node role: leader (serves writes and ships its WAL), replica (streams a leader, serves reads), or router (forwards to shard leaders)")
	nodeID := flag.String("node-id", "", "this node's cluster identity (default: hostname)")
	leaderURL := flag.String("leader-url", "", "leader base URL (required with -role replica)")
	clusterMap := flag.String("cluster", "", "cluster map file (required for -role router; on a member, registers it for routers)")
	shard := flag.String("shard", "", "shard this member serves (required with -cluster on a member)")
	advertise := flag.String("advertise", "", "address other nodes dial to reach this one (default http://localhost<addr>)")
	pullInterval := flag.Duration("pull-interval", 0, "replica pull/heartbeat cadence while caught up (0 = default)")
	maxReplicaLag := flag.Duration("max-replica-lag", 0, "replica refuses rank queries past this silence from the leader (0 = serve regardless)")
	flag.Parse()

	switch *role {
	case sor.RoleLeader, sor.RoleReplica, sor.RoleRouter:
	default:
		return fmt.Errorf("unknown -role %q (leader|replica|router)", *role)
	}
	if *nodeID == "" {
		if host, err := os.Hostname(); err == nil {
			*nodeID = host
		} else {
			*nodeID = "node"
		}
	}
	data, durableOpts, storageDesc, err := storageFromFlags(*dataDir, *snapshot)
	if err != nil {
		return err
	}
	node := sor.Node{
		Name:           *nodeID,
		Role:           *role,
		Listen:         *addr,
		StreamListen:   *streamAddr,
		Data:           data,
		DurableOptions: durableOpts,
		Cluster:        *clusterMap,
		Shard:          *shard,
		Advertise:      *advertise,
		Leader:         *leaderURL,
		MaxReplicaLag:  *maxReplicaLag,
		PullInterval:   *pullInterval,
		Observer:       sor.NewObserver(sor.WithTracer(sor.NewTracer(*spanBuffer))),
		Mux:            http.NewServeMux(),
	}

	// The Visualization module (§II-B): /charts?category=coffee-shop
	// renders the current feature data as inline SVG bar charts. Mounted
	// through Node.Mux so it shares the node's listener; rn is bound
	// after StartNode, before the listener can receive traffic routed
	// here by a human.
	var rn *sor.RunningNode
	if *role != sor.RoleRouter {
		node.Mux.HandleFunc("/charts", func(w http.ResponseWriter, r *http.Request) {
			category := r.URL.Query().Get("category")
			if category == "" {
				category = world.CategoryCoffee
			}
			srv := rn.Server()
			if srv == nil {
				http.Error(w, "resyncing from the leader", http.StatusServiceUnavailable)
				return
			}
			if *role == sor.RoleLeader {
				// A replica's features arrive via the replicated log; folding
				// here would write to its own.
				srv.Processor().Process()
			}
			charts, err := srv.Charts(category)
			if err != nil {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			fmt.Fprintf(w, "<!DOCTYPE html><html><head><title>SOR feature data</title></head><body><h1>%s</h1>\n", category)
			for _, c := range charts {
				svg, err := c.SVG(480, 320)
				if err != nil {
					continue
				}
				fmt.Fprintln(w, svg)
			}
			fmt.Fprintln(w, "</body></html>")
		})
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rn, err = sor.StartNode(ctx, node)
	if err != nil {
		return err
	}
	if *role != sor.RoleRouter {
		log.Print(storageDesc)
	}

	baseURL := *public
	if baseURL == "" {
		baseURL = "http://localhost" + *addr
	}
	switch *role {
	case sor.RoleLeader:
		// A replica never registers apps itself: every mutation, including
		// app creation, arrives through the replicated log. A router holds
		// no apps at all.
		if err := registerCanonicalApps(rn.Server(), baseURL, *showBarcodes); err != nil {
			_ = rn.Close()
			return err
		}
		log.Printf("leader %s listening on %s (endpoints %s, /charts, %s, %s, %s, /debug/pprof)",
			*nodeID, rn.Addr(), sor.ServerPath, sor.MetricsPath, sor.TracePath, sor.ReplicaDebugPath)
	case sor.RoleReplica:
		log.Printf("replica %s following %s on %s (pull interval %s, max lag %s)",
			*nodeID, *leaderURL, rn.Addr(), *pullInterval, *maxReplicaLag)
	case sor.RoleRouter:
		log.Printf("router %s listening on %s (endpoints %s, %s, %s, %s, /debug/pprof)",
			*nodeID, rn.Addr(), sor.ServerPath, sor.MetricsPath, sor.TracePath, sor.ClusterDebugPath)
	}
	if a := rn.StreamAddr(); a != "" {
		log.Printf("device stream endpoint listening on %s", a)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	// A replica's resyncs are automatic and invisible; only a replication
	// supervisor that gave up entirely (Err) should bring the node down.
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for {
		select {
		case sig := <-sigCh:
			log.Printf("received %s, shutting down", sig)
			return rn.Close()
		case <-ticker.C:
			if err := rn.Err(); err != nil {
				_ = rn.Close()
				return fmt.Errorf("replication stopped: %w", err)
			}
		}
	}
}

// registerCanonicalApps creates the six paper field-test applications
// (idempotent over recovered state) and prints their join barcodes.
func registerCanonicalApps(srv *sor.Server, baseURL string, showBarcodes bool) error {
	w, err := world.Canonical()
	if err != nil {
		return err
	}
	type appDef struct {
		id, place, category, script string
	}
	apps := []appDef{
		{"hiking-trail-1", world.GreenLakeTrail, world.CategoryTrail, fieldtest.TrailScript},
		{"hiking-trail-2", world.LongTrail, world.CategoryTrail, fieldtest.TrailScript},
		{"hiking-trail-3", world.CliffTrail, world.CategoryTrail, fieldtest.TrailScript},
		{"coffee-shop-1", world.TimHortons, world.CategoryCoffee, fieldtest.CoffeeScript},
		{"coffee-shop-2", world.BNCafe, world.CategoryCoffee, fieldtest.CoffeeScript},
		{"coffee-shop-3", world.Starbucks, world.CategoryCoffee, fieldtest.CoffeeScript},
	}
	for _, a := range apps {
		place, err := w.Place(a.place)
		if err != nil {
			return err
		}
		err = srv.CreateApp(sor.Application{
			ID:        a.id,
			Creator:   "sord",
			Category:  a.category,
			Place:     a.place,
			Lat:       place.Loc.Lat,
			Lon:       place.Loc.Lon,
			RadiusM:   place.RadiusM,
			Script:    a.script,
			PeriodSec: 10800,
		})
		if err != nil {
			// Recovered state may already contain the apps.
			log.Printf("app %s: %v (continuing)", a.id, err)
			continue
		}
		code, err := barcode.Encode(barcode.Payload{AppID: a.id, Place: a.place, Server: baseURL})
		if err != nil {
			return err
		}
		log.Printf("registered %-16s -> %s (barcode: %dx%d modules)", a.id, a.place, code.Size, code.Size)
		if showBarcodes {
			fmt.Println(code.ASCII())
		}
	}
	return nil
}
