// Command sord runs a SOR sensing server: it registers the six canonical
// Syracuse target places as applications, prints their 2D barcodes'
// payloads, and serves the binary-over-HTTP protocol on -addr, plus the
// ops surface: /debug/metrics (JSON metrics snapshot), /debug/trace
// (recent request spans), and /debug/pprof.
//
// Usage:
//
//	sord -addr :8080 [-data-dir sor-data] [-barcodes] [-span-buffer 4096]
//
// With -data-dir the server is durable: a checkpointed snapshot plus a
// write-ahead log of every mutation since, recovered on startup. Without
// it state is in-memory and dies with the process.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"sor"
	"sor/internal/barcode"
	"sor/internal/fieldtest"
	"sor/internal/world"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("sord: %v", err)
	}
}

// storageFromFlags picks the backend: -data-dir is the supported knob;
// -snapshot is the deprecated pre-WAL flag, kept as an alias for a
// snapshot-only backend rooted at the file it names.
func storageFromFlags(dataDir, snapshot string) (sor.Storage, string, error) {
	switch {
	case dataDir != "" && snapshot != "":
		return nil, "", errors.New("-data-dir and -snapshot are mutually exclusive")
	case dataDir != "":
		return sor.Durable(dataDir), fmt.Sprintf("durable state in %s (snapshot + WAL)", dataDir), nil
	case snapshot != "":
		// Deprecated path: same file, same periodic-snapshot-only
		// durability as before the WAL existed.
		return sor.Durable(filepath.Dir(snapshot),
			sor.WithSnapshotPath(snapshot),
			sor.WithoutWAL(),
		), fmt.Sprintf("deprecated -snapshot: periodic snapshots in %s, no WAL (use -data-dir)", snapshot), nil
	default:
		return sor.Memory(), "in-memory state (set -data-dir for durability)", nil
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	dataDir := flag.String("data-dir", "", "directory for durable state (snapshot + write-ahead log)")
	snapshot := flag.String("snapshot", "", "deprecated: JSON snapshot file to load and periodically save (use -data-dir)")
	showBarcodes := flag.Bool("barcodes", false, "print each place's 2D barcode as ASCII art")
	public := flag.String("public-url", "", "base URL phones should use (default http://<addr>)")
	spanBuffer := flag.Int("span-buffer", 0, "trace ring capacity (default 4096)")
	flag.Parse()

	storage, storageDesc, err := storageFromFlags(*dataDir, *snapshot)
	if err != nil {
		return err
	}

	obsv := sor.NewObserver(sor.WithTracer(sor.NewTracer(*spanBuffer)))
	srv, err := sor.NewServer(
		sor.WithStorage(storage),
		sor.WithCatalog(sor.DefaultCatalog()),
		sor.WithPush(sor.NewPush()),
		sor.WithObserver(obsv),
	)
	if err != nil {
		return err
	}
	if err := srv.Open(); err != nil {
		return fmt.Errorf("opening storage: %w", err)
	}
	log.Print(storageDesc)

	w, err := world.Canonical()
	if err != nil {
		return err
	}
	baseURL := *public
	if baseURL == "" {
		baseURL = "http://localhost" + *addr
	}
	type appDef struct {
		id, place, category, script string
	}
	apps := []appDef{
		{"hiking-trail-1", world.GreenLakeTrail, world.CategoryTrail, fieldtest.TrailScript},
		{"hiking-trail-2", world.LongTrail, world.CategoryTrail, fieldtest.TrailScript},
		{"hiking-trail-3", world.CliffTrail, world.CategoryTrail, fieldtest.TrailScript},
		{"coffee-shop-1", world.TimHortons, world.CategoryCoffee, fieldtest.CoffeeScript},
		{"coffee-shop-2", world.BNCafe, world.CategoryCoffee, fieldtest.CoffeeScript},
		{"coffee-shop-3", world.Starbucks, world.CategoryCoffee, fieldtest.CoffeeScript},
	}
	for _, a := range apps {
		place, err := w.Place(a.place)
		if err != nil {
			return err
		}
		err = srv.CreateApp(sor.Application{
			ID:        a.id,
			Creator:   "sord",
			Category:  a.category,
			Place:     a.place,
			Lat:       place.Loc.Lat,
			Lon:       place.Loc.Lon,
			RadiusM:   place.RadiusM,
			Script:    a.script,
			PeriodSec: 10800,
		})
		if err != nil {
			// Recovered state may already contain the apps.
			log.Printf("app %s: %v (continuing)", a.id, err)
			continue
		}
		code, err := barcode.Encode(barcode.Payload{AppID: a.id, Place: a.place, Server: baseURL})
		if err != nil {
			return err
		}
		log.Printf("registered %-16s -> %s (barcode: %dx%d modules)", a.id, a.place, code.Size, code.Size)
		if *showBarcodes {
			fmt.Println(code.ASCII())
		}
	}

	sorHandler, err := sor.NewHTTPHandler(srv.Handler(), sor.WithHandlerObserver(obsv))
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.Handle(sor.ServerPath, sorHandler)
	sor.RegisterDebug(mux, obsv)
	// The Visualization module (§II-B): /charts?category=coffee-shop
	// renders the current feature data as inline SVG bar charts.
	mux.HandleFunc("/charts", func(w http.ResponseWriter, r *http.Request) {
		category := r.URL.Query().Get("category")
		if category == "" {
			category = world.CategoryCoffee
		}
		srv.Processor().Process()
		charts, err := srv.Charts(category)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, "<!DOCTYPE html><html><head><title>SOR feature data</title></head><body><h1>%s</h1>\n", category)
		for _, c := range charts {
			svg, err := c.SVG(480, 320)
			if err != nil {
				continue
			}
			fmt.Fprintln(w, svg)
		}
		fmt.Fprintln(w, "</body></html>")
	})

	processingCtx, stopProcessing := context.WithCancel(context.Background())
	defer stopProcessing()
	if _, err := srv.StartProcessing(processingCtx, 30*time.Second); err != nil {
		return err
	}

	log.Printf("sensing server listening on %s (endpoints %s, /charts, %s, %s, /debug/pprof)",
		*addr, sor.ServerPath, sor.MetricsPath, sor.TracePath)
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	// Graceful shutdown: stop accepting, then close the storage backend so
	// the final checkpoint and WAL close happen before exit.
	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.ListenAndServe() }()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		_ = srv.Close()
		return err
	case sig := <-sigCh:
		log.Printf("received %s, shutting down", sig)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpServer.Shutdown(shutdownCtx)
		stopProcessing()
		if err := srv.Close(); err != nil {
			return fmt.Errorf("closing storage: %w", err)
		}
		return nil
	}
}
