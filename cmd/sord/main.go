// Command sord runs a SOR sensing server: it registers the six canonical
// Syracuse target places as applications, prints their 2D barcodes'
// payloads, and serves the binary-over-HTTP protocol on -addr, plus the
// ops surface: /debug/metrics (JSON metrics snapshot), /debug/trace
// (recent request spans), and /debug/pprof.
//
// Usage:
//
//	sord -addr :8080 [-snapshot sor.json] [-barcodes] [-span-buffer 4096]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"sor"
	"sor/internal/barcode"
	"sor/internal/fieldtest"
	"sor/internal/world"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("sord: %v", err)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	snapshot := flag.String("snapshot", "", "optional JSON snapshot file to load and periodically save")
	showBarcodes := flag.Bool("barcodes", false, "print each place's 2D barcode as ASCII art")
	public := flag.String("public-url", "", "base URL phones should use (default http://<addr>)")
	spanBuffer := flag.Int("span-buffer", 0, "trace ring capacity (default 4096)")
	flag.Parse()

	db := sor.NewStore()
	if *snapshot != "" {
		loaded, err := sor.LoadStore(*snapshot)
		if err != nil {
			return fmt.Errorf("loading snapshot: %w", err)
		}
		db = loaded
		log.Printf("state loaded from %s", *snapshot)
	}

	obsv := sor.NewObserver(sor.WithTracer(sor.NewTracer(*spanBuffer)))
	srv, err := sor.NewServer(
		sor.WithStore(db),
		sor.WithCatalog(sor.DefaultCatalog()),
		sor.WithPush(sor.NewPush()),
		sor.WithObserver(obsv),
	)
	if err != nil {
		return err
	}

	w, err := world.Canonical()
	if err != nil {
		return err
	}
	baseURL := *public
	if baseURL == "" {
		baseURL = "http://localhost" + *addr
	}
	type appDef struct {
		id, place, category, script string
	}
	apps := []appDef{
		{"hiking-trail-1", world.GreenLakeTrail, world.CategoryTrail, fieldtest.TrailScript},
		{"hiking-trail-2", world.LongTrail, world.CategoryTrail, fieldtest.TrailScript},
		{"hiking-trail-3", world.CliffTrail, world.CategoryTrail, fieldtest.TrailScript},
		{"coffee-shop-1", world.TimHortons, world.CategoryCoffee, fieldtest.CoffeeScript},
		{"coffee-shop-2", world.BNCafe, world.CategoryCoffee, fieldtest.CoffeeScript},
		{"coffee-shop-3", world.Starbucks, world.CategoryCoffee, fieldtest.CoffeeScript},
	}
	for _, a := range apps {
		place, err := w.Place(a.place)
		if err != nil {
			return err
		}
		err = srv.CreateApp(sor.Application{
			ID:        a.id,
			Creator:   "sord",
			Category:  a.category,
			Place:     a.place,
			Lat:       place.Loc.Lat,
			Lon:       place.Loc.Lon,
			RadiusM:   place.RadiusM,
			Script:    a.script,
			PeriodSec: 10800,
		})
		if err != nil {
			// Snapshot restores may already contain the apps.
			log.Printf("app %s: %v (continuing)", a.id, err)
			continue
		}
		code, err := barcode.Encode(barcode.Payload{AppID: a.id, Place: a.place, Server: baseURL})
		if err != nil {
			return err
		}
		log.Printf("registered %-16s -> %s (barcode: %dx%d modules)", a.id, a.place, code.Size, code.Size)
		if *showBarcodes {
			fmt.Println(code.ASCII())
		}
	}

	sorHandler, err := sor.NewHTTPHandler(srv.Handler(), sor.WithHandlerObserver(obsv))
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.Handle(sor.ServerPath, sorHandler)
	sor.RegisterDebug(mux, obsv)
	// The Visualization module (§II-B): /charts?category=coffee-shop
	// renders the current feature data as inline SVG bar charts.
	mux.HandleFunc("/charts", func(w http.ResponseWriter, r *http.Request) {
		category := r.URL.Query().Get("category")
		if category == "" {
			category = world.CategoryCoffee
		}
		srv.Processor().Process()
		charts, err := srv.Charts(category)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, "<!DOCTYPE html><html><head><title>SOR feature data</title></head><body><h1>%s</h1>\n", category)
		for _, c := range charts {
			svg, err := c.SVG(480, 320)
			if err != nil {
				continue
			}
			fmt.Fprintln(w, svg)
		}
		fmt.Fprintln(w, "</body></html>")
	})

	if _, err := srv.StartProcessing(context.Background(), 30*time.Second); err != nil {
		return err
	}
	if *snapshot != "" {
		if _, err := db.AutoSnapshot(context.Background(), *snapshot, 30*time.Second); err != nil {
			return err
		}
	}

	log.Printf("sensing server listening on %s (endpoints %s, /charts, %s, %s, /debug/pprof)",
		*addr, sor.ServerPath, sor.MetricsPath, sor.TracePath)
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	return httpServer.ListenAndServe()
}
