// Command sorbarcode encodes and decodes SOR's 2D matrix barcodes — the
// trigger a mobile user scans at a target place to start participating.
//
// Usage:
//
//	sorbarcode encode -app coffee-shop-3 -place "Starbucks" -server http://localhost:8080
//	sorbarcode encode ... -out code.txt      # save the module grid
//	sorbarcode decode -in code.txt           # read it back
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sor/internal/barcode"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("sorbarcode: %v", err)
	}
}

func run() error {
	if len(os.Args) < 2 {
		return fmt.Errorf("usage: sorbarcode encode|decode [flags]")
	}
	switch os.Args[1] {
	case "encode":
		return encode(os.Args[2:])
	case "decode":
		return decode(os.Args[2:])
	default:
		return fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
}

func encode(args []string) error {
	fs := flag.NewFlagSet("encode", flag.ContinueOnError)
	app := fs.String("app", "", "application id (required)")
	place := fs.String("place", "", "target place display name")
	server := fs.String("server", "", "sensing server base URL (required)")
	out := fs.String("out", "", "write the module grid to this file (default: ASCII art to stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := barcode.Encode(barcode.Payload{AppID: *app, Place: *place, Server: *server})
	if err != nil {
		return err
	}
	if *out == "" {
		fmt.Print(m.ASCII())
		return nil
	}
	grid, err := m.MarshalText()
	if err != nil {
		return err
	}
	return os.WriteFile(*out, grid, 0o644)
}

func decode(args []string) error {
	fs := flag.NewFlagSet("decode", flag.ContinueOnError)
	in := fs.String("in", "", "module grid file produced by encode -out (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("decode needs -in")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	var m barcode.Matrix
	if err := m.UnmarshalText(data); err != nil {
		return err
	}
	p, err := barcode.Decode(&m)
	if err != nil {
		return err
	}
	fmt.Printf("app:    %s\nplace:  %s\nserver: %s\n", p.AppID, p.Place, p.Server)
	return nil
}
