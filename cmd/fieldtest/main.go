// Command fieldtest reproduces the paper's §V-A and §V-B field tests end
// to end — a real sensing server over HTTP, a fleet of simulated phones
// per place, Lua sensing scripts, binary uploads — and prints the Fig. 6 /
// Fig. 10 feature data and the Table I / Table II personalized rankings,
// comparing against the paper.
//
// Usage:
//
//	fieldtest -category trails
//	fieldtest -category coffee -phones 12 -budget 20
//	fieldtest -category both -svg out/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"sor/internal/fieldtest"
	"sor/internal/viz"
	"sor/internal/world"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("fieldtest: %v", err)
	}
}

func run() error {
	category := flag.String("category", "both", "trails | coffee | both")
	phones := flag.Int("phones", 0, "phones per place (default: 7 trails, 12 coffee — the paper's counts)")
	budget := flag.Int("budget", 20, "per-user sensing budget")
	seed := flag.Int64("seed", 2013, "random seed")
	svgDir := flag.String("svg", "", "optional directory for SVG feature charts")
	faulty := flag.Int("faulty", 0, "miscalibrated phones per place (fault injection)")
	robust := flag.Bool("robust", false, "enable MAD outlier rejection in the Data Processor")
	flag.Parse()

	var cats []string
	switch *category {
	case "trails":
		cats = []string{world.CategoryTrail}
	case "coffee":
		cats = []string{world.CategoryCoffee}
	case "both":
		cats = []string{world.CategoryTrail, world.CategoryCoffee}
	default:
		return fmt.Errorf("unknown category %q", *category)
	}

	for _, cat := range cats {
		n := *phones
		if n == 0 {
			if cat == world.CategoryTrail {
				n = 7
			} else {
				n = 12
			}
		}
		res, err := fieldtest.Run(fieldtest.Config{
			Category:             cat,
			PhonesPerPlace:       n,
			Budget:               *budget,
			Seed:                 *seed,
			BluetoothFailureRate: 0.05,
			FaultyPhones:         *faulty,
			RobustExtraction:     *robust,
		})
		if err != nil {
			return err
		}
		report(cat, res)
		if *svgDir != "" {
			if err := writeCharts(*svgDir, cat, res); err != nil {
				return err
			}
		}
	}
	return nil
}

func report(cat string, res *fieldtest.Result) {
	fig, table := "Fig. 10", "Table II"
	if cat == world.CategoryTrail {
		fig, table = "Fig. 6", "Table I"
	}
	fmt.Printf("=== %s: %d phones, %d uploads, %d scheduled measurements ===\n\n",
		cat, res.Phones, res.Uploads, res.Measurements)

	// Feature data (the paper's figure).
	fmt.Printf("%s — feature data collected through the full pipeline:\n", fig)
	places := sortedKeys(res.Features)
	features := sortedKeys(res.Features[places[0]])
	fmt.Printf("%-18s", "place")
	for _, f := range features {
		fmt.Printf("  %14s", f)
	}
	fmt.Println()
	for _, p := range places {
		fmt.Printf("%-18s", p)
		for _, f := range features {
			fmt.Printf("  %14.3f", res.Features[p][f])
		}
		fmt.Println()
	}
	fmt.Println()

	// Rankings (the paper's table).
	fmt.Printf("%s — personalized rankings:\n", table)
	expected := fieldtest.ExpectedRankings(cat)
	profs := sortedKeys(res.Rankings)
	allMatch := true
	for _, prof := range profs {
		got := res.Rankings[prof]
		want := expected[prof]
		match := "MATCHES PAPER"
		if strings.Join(got, "|") != strings.Join(want, "|") {
			match = "DIFFERS (paper: " + strings.Join(want, " > ") + ")"
			allMatch = false
		}
		fmt.Printf("  %-6s %-70s %s\n", prof, strings.Join(got, " > "), match)
	}
	if allMatch {
		fmt.Printf("all %d rankings match the paper's %s\n", len(profs), table)
	}
	fmt.Println()
}

func writeCharts(dir, cat string, res *fieldtest.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	places := sortedKeys(res.Features)
	features := sortedKeys(res.Features[places[0]])
	for _, f := range features {
		chart := viz.BarChart{Title: f, Categories: places}
		for _, p := range places {
			chart.Values = append(chart.Values, res.Features[p][f])
		}
		svg, err := chart.SVG(480, 320)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("%s-%s.svg", cat, strings.ReplaceAll(f, " ", "-"))
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
