package main

import (
	"bytes"
	"encoding/binary"
	"flag"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"sor"
	"sor/internal/cluster"
	"sor/internal/obs"
	"sor/internal/replica"
	"sor/internal/wal"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// checkGolden compares got against testdata/<name> (rewriting it under
// -update).
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run: go test ./cmd/sorctl -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// walSegment builds a segment image from the documented framing: the
// 16-byte header (magic + firstLSN) followed by length|crc32c|payload
// records.
func walSegment(firstLSN uint64, payloads ...string) []byte {
	b := append([]byte(nil), []byte("SORWAL1\n")...)
	b = binary.LittleEndian.AppendUint64(b, firstLSN)
	table := crc32.MakeTable(crc32.Castagnoli)
	for _, p := range payloads {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(p)))
		b = binary.LittleEndian.AppendUint32(b, crc32.Checksum([]byte(p), table))
		b = append(b, p...)
	}
	return b
}

// TestWALInspectGolden pins the human `sorctl wal inspect` rendering over
// a fixture holding a sealed segment, a torn segment, and a corrupt one.
func TestWALInspectGolden(t *testing.T) {
	dir := t.TempDir()
	// Sealed: ends exactly at a record boundary.
	if err := os.WriteFile(filepath.Join(dir, "000001.wal"),
		walSegment(1, "participate", "upload", "upload"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Torn: the last record's payload is cut short.
	torn := walSegment(4, "upload", "a-longer-final-record")
	torn = torn[:len(torn)-8]
	if err := os.WriteFile(filepath.Join(dir, "000002.wal"), torn, 0o644); err != nil {
		t.Fatal(err)
	}
	// Corrupt: one payload byte of the first record flipped.
	rot := walSegment(6, "upload", "upload")
	rot[16+8] ^= 0xFF
	if err := os.WriteFile(filepath.Join(dir, "000003.wal"), rot, 0o644); err != nil {
		t.Fatal(err)
	}

	segs, err := wal.Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	renderSegments(&buf, dir, segs)
	checkGolden(t, "wal_inspect.golden", buf.Bytes())

	var empty bytes.Buffer
	renderSegments(&empty, "data/wal", nil)
	checkGolden(t, "wal_inspect_empty.golden", empty.Bytes())
}

// TestMetricsGolden pins the human `sorctl metrics` rendering: counters,
// gauges, then histograms, each sorted by series name.
func TestMetricsGolden(t *testing.T) {
	snap := sor.MetricsSnapshot{
		Counters: map[string]int64{
			"sor_requests_total{type=data-upload}": 128,
			"sor_requests_total{type=participate}": 32,
			"sor_dedup_hits_total":                 7,
		},
		Gauges: map[string]int64{
			"sor_outbox_pending": 3,
		},
		Histograms: map[string]obs.HistogramSnapshot{
			"sor_handler_ms{type=data-upload}": {
				Count: 16, Mean: 1.5, Min: 0.25, Max: 12.5, P50: 1.0, P99: 9.75,
			},
		},
	}
	var buf bytes.Buffer
	renderMetrics(&buf, snap)
	checkGolden(t, "metrics.golden", buf.Bytes())
}

// TestReplicaStatusGolden pins the human `sorctl replica status`
// rendering for a leader with followers, a connected follower, and a
// follower that must resync.
func TestReplicaStatusGolden(t *testing.T) {
	var buf bytes.Buffer
	renderReplicaStatus(&buf, replica.Status{
		Role:    "leader",
		LastLSN: 2048,
		Followers: []replica.FollowerStatus{
			{ID: "node-b", AckLSN: 2048, LagRecords: 0, SilentForMS: 120, Live: true},
			{ID: "node-c", AckLSN: 1500, LagRecords: 548, SilentForMS: 700000, Live: false},
		},
	})
	buf.WriteByte('\n')
	renderReplicaStatus(&buf, replica.Status{
		Role:    "follower",
		LastLSN: 2040,
		Self: &replica.FollowerSelf{
			ID: "node-b", AppliedLSN: 2040, LeaderLSN: 2048, LagRecords: 8,
			LastContactMS: 120, Connected: true,
		},
	})
	buf.WriteByte('\n')
	renderReplicaStatus(&buf, replica.Status{
		Role:    "follower",
		LastLSN: 10,
		Self: &replica.FollowerSelf{
			ID: "node-late", AppliedLSN: 10, LeaderLSN: 0,
			LastContactMS: -1, Failures: 3, NeedsResync: true,
		},
	})
	checkGolden(t, "replica_status.golden", buf.Bytes())
}

// TestClusterStatusGolden pins the human `sorctl cluster status`
// rendering: a router's view of a 2-shard cluster mid-failover (one
// member never heartbeated, one silent past its TTL) plus the app
// placement table, and the degenerate empty map.
func TestClusterStatusGolden(t *testing.T) {
	var buf bytes.Buffer
	renderClusterStatus(&buf, cluster.Status{
		Router: "router-0",
		Shards: []cluster.ShardStatus{
			{
				Name:   "shard-a",
				Leader: "shard-a-0",
				Members: []cluster.MemberStatus{
					{Name: "shard-a-0", Role: "leader", Addr: "http://10.0.0.1:8080",
						Live: true, AppliedLSN: 2048, SilentForMS: 150},
					{Name: "shard-a-1", Role: "replica", Addr: "http://10.0.0.2:8080",
						Live: false, AppliedLSN: 1500, SilentForMS: 700000},
				},
			},
			{
				Name: "shard-b",
				Members: []cluster.MemberStatus{
					{Name: "shard-b-0", Role: "replica", Addr: "http://10.0.1.1:8080",
						Live: true, AppliedLSN: 4096, SilentForMS: 90},
					{Name: "shard-b-1", Role: "replica", Addr: "http://10.0.1.2:8080",
						Live: false, AppliedLSN: 0, SilentForMS: -1},
				},
			},
		},
		Apps: []cluster.AppRoute{
			{AppID: "app-coffee", Category: "coffee-shop", Shard: "shard-a"},
			{AppID: "app-trail", Category: "hiking-trail", Shard: "shard-b"},
		},
	})
	buf.WriteByte('\n')
	renderClusterStatus(&buf, cluster.Status{})
	checkGolden(t, "cluster_status.golden", buf.Bytes())
}
