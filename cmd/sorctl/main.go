// Command sorctl is the SOR client CLI: it talks the binary wire protocol
// to a running sensing server (see cmd/sord) and scrapes its ops surface.
//
// Usage:
//
//	sorctl -server http://localhost:8080 rank -category coffee-shop -profile emma
//	sorctl -server http://localhost:8080 ping -token token-0-1
//	sorctl -server http://localhost:8080 metrics [-json] [-require a,b,c]
//	sorctl -server http://localhost:8080 trace [-request ID] [-limit 50]
//	sorctl -server http://localhost:8080 replica status [-json]
//	sorctl -server http://localhost:8080 cluster status [-json]
//	sorctl wal inspect <data-dir|wal-dir>
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"sor"
	"sor/internal/cluster"
	"sor/internal/replica"
	"sor/internal/wal"
	"sor/internal/wire"
	"sor/internal/world"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("sorctl: %v", err)
	}
}

func run() error {
	serverURL := flag.String("server", "http://localhost:8080", "sensing server base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		return fmt.Errorf("usage: sorctl [-server URL] rank|ping|metrics|trace|replica|cluster|wal [flags]")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	switch args[0] {
	case "rank":
		return rank(ctx, *serverURL, args[1:])
	case "ping":
		return ping(ctx, *serverURL, args[1:])
	case "metrics":
		return metrics(ctx, *serverURL, args[1:])
	case "trace":
		return trace(ctx, *serverURL, args[1:])
	case "replica":
		return replicaCmd(ctx, *serverURL, args[1:])
	case "cluster":
		return clusterCmd(ctx, *serverURL, args[1:])
	case "wal":
		return walCmd(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// walCmd is the offline WAL toolbox; `wal inspect <dir>` dumps segment
// headers, record counts, and the offset of any torn or corrupt record.
// It accepts either the wal directory itself or a sord -data-dir (it
// looks for a wal/ subdirectory).
func walCmd(args []string) error {
	if len(args) < 1 || args[0] != "inspect" {
		return fmt.Errorf("usage: sorctl wal inspect <data-dir|wal-dir>")
	}
	fs := flag.NewFlagSet("wal inspect", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "print the segment list as JSON")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: sorctl wal inspect <data-dir|wal-dir>")
	}
	dir := fs.Arg(0)
	// A sord -data-dir holds the log under wal/.
	if sub := filepath.Join(dir, "wal"); dirExists(sub) {
		dir = sub
	}
	segs, err := wal.Inspect(dir)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(segs)
	}
	renderSegments(os.Stdout, dir, segs)
	return nil
}

// renderSegments writes the human `wal inspect` table. Split from walCmd
// so the golden-output test drives it against a bytes.Buffer.
func renderSegments(w io.Writer, dir string, segs []wal.SegmentInfo) {
	if len(segs) == 0 {
		fmt.Fprintf(w, "no WAL segments in %s\n", dir)
		return
	}
	var records int
	var bytes int64
	fmt.Fprintf(w, "%-24s %12s %10s %12s  %s\n", "SEGMENT", "FIRST-LSN", "RECORDS", "BYTES", "STATUS")
	for _, s := range segs {
		status := "ok"
		switch {
		case s.Corrupt != nil:
			status = fmt.Sprintf("CORRUPT at offset %d: %v", s.Corrupt.Offset, s.Corrupt.Err)
		case s.Torn:
			status = fmt.Sprintf("torn tail at offset %d", s.TornAt)
		}
		fmt.Fprintf(w, "%-24s %12d %10d %12d  %s\n", s.Name, s.FirstLSN, s.Records, s.Bytes, status)
		records += s.Records
		bytes += s.Bytes
	}
	fmt.Fprintf(w, "%d segments, %d records, %d bytes\n", len(segs), records, bytes)
}

func dirExists(path string) bool {
	info, err := os.Stat(path)
	return err == nil && info.IsDir()
}

func newClient(serverURL string) (*sor.Client, error) {
	return sor.NewClient(serverURL)
}

func rank(ctx context.Context, serverURL string, args []string) error {
	fs := flag.NewFlagSet("rank", flag.ContinueOnError)
	category := fs.String("category", world.CategoryCoffee, "place category")
	profileName := fs.String("profile", "", "built-in profile name (alice|bob|chris|david|emma) or empty for defaults")
	topK := fs.Int("topk", 0, "return only the best K places (0 = full ranking)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *topK < 0 {
		return fmt.Errorf("-topk must be >= 0, got %d", *topK)
	}
	client, err := newClient(serverURL)
	if err != nil {
		return err
	}
	req := &wire.RankRequest{Category: *category, UserID: *profileName, TopK: *topK}
	if *profileName != "" {
		found := false
		for _, p := range sor.BuiltinProfiles(*category) {
			if strings.EqualFold(p.Name, *profileName) {
				for feat, pref := range p.Prefs {
					req.Prefs = append(req.Prefs, wire.PrefEntry{
						Feature: feat, Kind: int(pref.Kind),
						Value: pref.Value, Weight: pref.Weight,
					})
				}
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("no built-in profile %q for category %s", *profileName, *category)
		}
		sort.Slice(req.Prefs, func(i, j int) bool { return req.Prefs[i].Feature < req.Prefs[j].Feature })
	}
	resp, err := client.Send(ctx, req)
	if err != nil {
		return err
	}
	switch r := resp.(type) {
	case *wire.RankResponse:
		fmt.Printf("ranking for %s (%s):\n", orAnon(*profileName), r.Category)
		for i, p := range r.Ranked {
			fmt.Printf("  No. %d  %-20s", i+1, p.Place)
			for j, f := range r.Features {
				if j < len(p.FeatureValues) {
					fmt.Printf("  %s=%.3g", f, p.FeatureValues[j])
				}
			}
			fmt.Println()
		}
		return nil
	case *wire.Ack:
		return fmt.Errorf("server refused: %s", r.Message)
	default:
		return fmt.Errorf("unexpected response %s", resp.Type())
	}
}

func ping(ctx context.Context, serverURL string, args []string) error {
	fs := flag.NewFlagSet("ping", flag.ContinueOnError)
	token := fs.String("token", "", "device token (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *token == "" {
		return fmt.Errorf("ping needs -token")
	}
	client, err := newClient(serverURL)
	if err != nil {
		return err
	}
	resp, err := client.Send(ctx, &wire.Ping{Token: *token})
	if err != nil {
		return err
	}
	ack, ok := resp.(*wire.Ack)
	if !ok {
		return fmt.Errorf("unexpected response %s", resp.Type())
	}
	if !ack.OK {
		return fmt.Errorf("server refused: %s", ack.Message)
	}
	fmt.Printf("ok: %s\n", ack.Message)
	if len(ack.Payload) > 0 {
		inner, err := wire.Decode(ack.Payload)
		if err != nil {
			return err
		}
		if sched, ok := inner.(*wire.Schedule); ok {
			fmt.Printf("schedule %s for %s: %d measurements\n",
				sched.TaskID, sched.UserID, len(sched.AtUnix))
			for _, at := range sched.AtUnix {
				fmt.Printf("  %s\n", time.Unix(at, 0).UTC().Format(time.RFC3339))
			}
		}
	}
	return nil
}

// getJSON fetches a debug endpoint and decodes it into out.
func getJSON(ctx context.Context, rawURL string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rawURL, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: HTTP %d: %s", rawURL, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// metrics scrapes /debug/metrics. With -json it relays the raw snapshot;
// otherwise it prints sorted "series value" lines. -require takes a
// comma-separated list of series names that must be present (counters,
// gauges, or histograms) — the obs-smoke CI check exits non-zero through
// it when a series is missing.
func metrics(ctx context.Context, serverURL string, args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "print the raw JSON snapshot")
	require := fs.String("require", "", "comma-separated series that must exist (exit 1 otherwise)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var snap sor.MetricsSnapshot
	if err := getJSON(ctx, serverURL+sor.MetricsPath, &snap); err != nil {
		return err
	}
	if *require != "" {
		var missing []string
		for _, series := range strings.Split(*require, ",") {
			series = strings.TrimSpace(series)
			if series == "" {
				continue
			}
			_, c := snap.Counters[series]
			_, g := snap.Gauges[series]
			_, h := snap.Histograms[series]
			if !c && !g && !h {
				missing = append(missing, series)
			}
		}
		if len(missing) > 0 {
			return fmt.Errorf("missing series: %s", strings.Join(missing, ", "))
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(snap)
	}
	renderMetrics(os.Stdout, snap)
	return nil
}

// renderMetrics writes the sorted human metrics listing. Split from
// metrics so the golden-output test drives it against a bytes.Buffer.
func renderMetrics(w io.Writer, snap sor.MetricsSnapshot) {
	printSorted := func(kind string, m map[string]int64) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "%-8s %-56s %d\n", kind, k, m[k])
		}
	}
	printSorted("counter", snap.Counters)
	printSorted("gauge", snap.Gauges)
	hkeys := make([]string, 0, len(snap.Histograms))
	for k := range snap.Histograms {
		hkeys = append(hkeys, k)
	}
	sort.Strings(hkeys)
	for _, k := range hkeys {
		h := snap.Histograms[k]
		fmt.Fprintf(w, "%-8s %-56s n=%d p50=%.3g p99=%.3g max=%.3g\n",
			"histo", k, h.Count, h.P50, h.P99, h.Max)
	}
}

// replicaCmd scrapes /debug/replica. `replica status` shows the node's
// replication role, and — on a leader — each follower's acked LSN, record
// lag, and liveness; on a follower, its own applied/leader positions and
// connection state.
func replicaCmd(ctx context.Context, serverURL string, args []string) error {
	if len(args) < 1 || args[0] != "status" {
		return fmt.Errorf("usage: sorctl replica status [-json]")
	}
	fs := flag.NewFlagSet("replica status", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "print the raw JSON payload")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	var st replica.Status
	if err := getJSON(ctx, serverURL+replica.DebugPath, &st); err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(st)
	}
	renderReplicaStatus(os.Stdout, st)
	return nil
}

// renderReplicaStatus writes the human `replica status` listing. Split
// from replicaCmd so the golden-output test drives it against a
// bytes.Buffer.
func renderReplicaStatus(w io.Writer, st replica.Status) {
	fmt.Fprintf(w, "role %s, log head LSN %d\n", st.Role, st.LastLSN)
	if st.Role == "leader" {
		if len(st.Followers) == 0 {
			fmt.Fprintln(w, "no followers")
			return
		}
		fmt.Fprintf(w, "%-20s %12s %12s %12s  %s\n", "FOLLOWER", "ACK-LSN", "LAG-RECORDS", "SILENT-MS", "LIVE")
		for _, f := range st.Followers {
			fmt.Fprintf(w, "%-20s %12d %12d %12d  %v\n", f.ID, f.AckLSN, f.LagRecords, f.SilentForMS, f.Live)
		}
		return
	}
	if st.Self == nil {
		return
	}
	s := st.Self
	conn := "connected"
	switch {
	case s.NeedsResync:
		conn = "NEEDS RESYNC"
	case !s.Connected:
		conn = fmt.Sprintf("disconnected (%d consecutive failures)", s.Failures)
	}
	fmt.Fprintf(w, "follower %s: applied LSN %d, leader LSN %d, lag %d records, %s\n",
		s.ID, s.AppliedLSN, s.LeaderLSN, s.LagRecords, conn)
	if s.LastContactMS >= 0 {
		fmt.Fprintf(w, "last leader contact %dms ago\n", s.LastContactMS)
	} else {
		fmt.Fprintln(w, "never heard from the leader")
	}
}

// clusterCmd scrapes /debug/cluster on a router (or any node registered
// in a cluster). `cluster status` shows every shard with its members'
// roles, liveness, and applied LSNs, plus each registered app's resolved
// shard placement.
func clusterCmd(ctx context.Context, serverURL string, args []string) error {
	if len(args) < 1 || args[0] != "status" {
		return fmt.Errorf("usage: sorctl cluster status [-json]")
	}
	fs := flag.NewFlagSet("cluster status", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "print the raw JSON payload")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	var st cluster.Status
	if err := getJSON(ctx, serverURL+cluster.DebugPath, &st); err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(st)
	}
	renderClusterStatus(os.Stdout, st)
	return nil
}

// renderClusterStatus writes the human `cluster status` listing. Split
// from clusterCmd so the golden-output test drives it against a
// bytes.Buffer.
func renderClusterStatus(w io.Writer, st cluster.Status) {
	if st.Router != "" {
		fmt.Fprintf(w, "router %s\n", st.Router)
	}
	if len(st.Shards) == 0 {
		fmt.Fprintln(w, "no shards registered")
		return
	}
	for _, s := range st.Shards {
		fmt.Fprintf(w, "shard %s (leader %s)\n", s.Name, orDash(s.Leader))
		fmt.Fprintf(w, "  %-20s %-8s %-28s %12s %12s  %s\n",
			"MEMBER", "ROLE", "ADDR", "APPLIED-LSN", "SILENT-MS", "LIVE")
		for _, m := range s.Members {
			silent := "-"
			if m.SilentForMS >= 0 {
				silent = fmt.Sprint(m.SilentForMS)
			}
			fmt.Fprintf(w, "  %-20s %-8s %-28s %12d %12s  %v\n",
				m.Name, m.Role, m.Addr, m.AppliedLSN, silent, m.Live)
		}
	}
	if len(st.Apps) > 0 {
		fmt.Fprintf(w, "%-24s %-20s %s\n", "APP", "CATEGORY", "SHARD")
		for _, a := range st.Apps {
			fmt.Fprintf(w, "%-24s %-20s %s\n", a.AppID, a.Category, a.Shard)
		}
	}
}

// trace scrapes /debug/trace: recent spans, optionally filtered to one
// RequestID — the way to follow a single upload through retries, the
// handler, dedup, and the processor fold.
func trace(ctx context.Context, serverURL string, args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	requestID := fs.String("request", "", "only spans for this RequestID")
	limit := fs.Int("limit", 0, "at most this many spans (most recent; 0 = all buffered)")
	asJSON := fs.Bool("json", false, "print the raw JSON response")
	if err := fs.Parse(args); err != nil {
		return err
	}
	q := url.Values{}
	if *requestID != "" {
		q.Set("request_id", *requestID)
	}
	if *limit > 0 {
		q.Set("limit", fmt.Sprint(*limit))
	}
	traceURL := serverURL + sor.TracePath
	if len(q) > 0 {
		traceURL += "?" + q.Encode()
	}
	var resp struct {
		Total   int64            `json:"total"`
		Dropped int64            `json:"dropped"`
		Spans   []sor.SpanRecord `json:"spans"`
	}
	if err := getJSON(ctx, traceURL, &resp); err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(resp)
	}
	fmt.Printf("%d spans buffered (%d recorded, %d evicted)\n", len(resp.Spans), resp.Total, resp.Dropped)
	for _, s := range resp.Spans {
		fmt.Printf("%s  %-16s %8.3fms  req=%s", s.Start.Format("15:04:05.000"), s.Name,
			float64(s.Duration)/float64(time.Millisecond), orDash(string(s.RequestID)))
		for _, a := range s.Attrs {
			fmt.Printf("  %s=%s", a.Key, a.Value)
		}
		fmt.Println()
	}
	return nil
}

func orAnon(name string) string {
	if name == "" {
		return "(default preferences)"
	}
	return name
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
