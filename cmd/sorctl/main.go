// Command sorctl is the SOR client CLI: it talks the binary wire protocol
// to a running sensing server (see cmd/sord).
//
// Usage:
//
//	sorctl -server http://localhost:8080 rank -category coffee-shop -profile emma
//	sorctl -server http://localhost:8080 rank -category hiking-trail -profile alice
//	sorctl -server http://localhost:8080 ping -token token-0-1
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"
	"time"

	"sor/internal/fieldtest"
	"sor/internal/transport"
	"sor/internal/wire"
	"sor/internal/world"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("sorctl: %v", err)
	}
}

func run() error {
	serverURL := flag.String("server", "http://localhost:8080", "sensing server base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		return fmt.Errorf("usage: sorctl [-server URL] rank|ping [flags]")
	}
	client, err := transport.NewClient(*serverURL)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	switch args[0] {
	case "rank":
		return rank(ctx, client, args[1:])
	case "ping":
		return ping(ctx, client, args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func rank(ctx context.Context, client *transport.Client, args []string) error {
	fs := flag.NewFlagSet("rank", flag.ContinueOnError)
	category := fs.String("category", world.CategoryCoffee, "place category")
	profileName := fs.String("profile", "", "built-in profile name (alice|bob|chris|david|emma) or empty for defaults")
	if err := fs.Parse(args); err != nil {
		return err
	}
	req := &wire.RankRequest{Category: *category, UserID: *profileName}
	if *profileName != "" {
		found := false
		for _, p := range fieldtest.Profiles(*category) {
			if strings.EqualFold(p.Name, *profileName) {
				for feat, pref := range p.Prefs {
					req.Prefs = append(req.Prefs, wire.PrefEntry{
						Feature: feat, Kind: int(pref.Kind),
						Value: pref.Value, Weight: pref.Weight,
					})
				}
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("no built-in profile %q for category %s", *profileName, *category)
		}
		sort.Slice(req.Prefs, func(i, j int) bool { return req.Prefs[i].Feature < req.Prefs[j].Feature })
	}
	resp, err := client.Send(ctx, req)
	if err != nil {
		return err
	}
	switch r := resp.(type) {
	case *wire.RankResponse:
		fmt.Printf("ranking for %s (%s):\n", orAnon(*profileName), r.Category)
		for i, p := range r.Ranked {
			fmt.Printf("  No. %d  %-20s", i+1, p.Place)
			for j, f := range r.Features {
				if j < len(p.FeatureValues) {
					fmt.Printf("  %s=%.3g", f, p.FeatureValues[j])
				}
			}
			fmt.Println()
		}
		return nil
	case *wire.Ack:
		return fmt.Errorf("server refused: %s", r.Message)
	default:
		return fmt.Errorf("unexpected response %s", resp.Type())
	}
}

func ping(ctx context.Context, client *transport.Client, args []string) error {
	fs := flag.NewFlagSet("ping", flag.ContinueOnError)
	token := fs.String("token", "", "device token (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *token == "" {
		return fmt.Errorf("ping needs -token")
	}
	resp, err := client.Send(ctx, &wire.Ping{Token: *token})
	if err != nil {
		return err
	}
	ack, ok := resp.(*wire.Ack)
	if !ok {
		return fmt.Errorf("unexpected response %s", resp.Type())
	}
	if !ack.OK {
		return fmt.Errorf("server refused: %s", ack.Message)
	}
	fmt.Printf("ok: %s\n", ack.Message)
	if len(ack.Payload) > 0 {
		inner, err := wire.Decode(ack.Payload)
		if err != nil {
			return err
		}
		if sched, ok := inner.(*wire.Schedule); ok {
			fmt.Printf("schedule %s for %s: %d measurements\n",
				sched.TaskID, sched.UserID, len(sched.AtUnix))
			for _, at := range sched.AtUnix {
				fmt.Printf("  %s\n", time.Unix(at, 0).UTC().Format(time.RFC3339))
			}
		}
	}
	return nil
}

func orAnon(name string) string {
	if name == "" {
		return "(default preferences)"
	}
	return name
}
