// Command sorload is a load generator for a running SOR sensing server
// (cmd/sord): it launches N simulated phones against one application,
// walks each through the full participation → schedule → sense → upload
// loop, and reports latency and throughput statistics.
//
// With -concurrency > 0 it then runs a burst-ingest phase: that many
// workers hammer the server with coalesced DataUploadBatch messages on
// behalf of the joined phones, and each worker prints its own latency
// histogram — the client-side view of the server's sharded ingest path.
//
// With -rankers > 0 the burst phase becomes a mixed read/write phase:
// that many additional workers issue RankRequests for the app's category
// (rotating through distinct preference profiles) while the writers are
// hammering ingest, reporting rank latency and the span of snapshot
// epochs each worker observed — the client-side view of the server's
// epoch-versioned rank-serving path.
//
// Usage (with sord running on :8080):
//
//	sorload -server http://localhost:8080 -app coffee-shop-3 -phones 25 -budget 10
//	sorload -phones 8 -concurrency 4 -batch 32 -batches 50
//	sorload -phones 8 -concurrency 4 -rankers 4 -ranks 200
//	sorload -transport stream -stream-addr localhost:8081 -phones 25
//
// Every phase is written against the transport-neutral Conn interface:
// -transport picks one-shot HTTP (default) or the persistent stream
// session (sord -stream-addr), and the same load runs over either.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"sor"
	"sor/internal/ranking"
	"sor/internal/stats"
	"sor/internal/transport"
	"sor/internal/transport/session"
	"sor/internal/wire"
	"sor/internal/world"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("sorload: %v", err)
	}
}

func run() error {
	serverURL := flag.String("server", "http://localhost:8080", "sensing server base URL")
	transportKind := flag.String("transport", "http", "transport: http (one-shot) or stream (persistent session; per-request chaos flags apply to http only, -chaos-partition to both)")
	streamAddr := flag.String("stream-addr", "localhost:8081", "stream endpoint for -transport stream (see sord -stream-addr)")
	appID := flag.String("app", "coffee-shop-3", "application to load (as registered by sord)")
	phones := flag.Int("phones", 10, "number of simulated phones")
	budget := flag.Int("budget", 10, "per-phone sensing budget")
	seed := flag.Int64("seed", 1, "random seed")
	timeout := flag.Duration("timeout", 2*time.Minute, "overall deadline")
	concurrency := flag.Int("concurrency", 0, "burst-phase workers sending batched uploads (0 disables the phase)")
	batchSize := flag.Int("batch", 32, "reports per coalesced upload batch in the burst phase")
	batches := flag.Int("batches", 25, "batches each burst worker sends")
	rankers := flag.Int("rankers", 0, "rank-query workers running alongside the burst phase (0 disables)")
	ranks := flag.Int("ranks", 100, "rank requests each ranker worker sends")
	chaosRequestLoss := flag.Float64("chaos-request-loss", 0, "probability a request is dropped before the server sees it")
	chaosAckLoss := flag.Float64("chaos-ack-loss", 0, "probability a request is processed but its ack is dropped")
	chaosSpike := flag.Duration("chaos-spike", 0, "injected latency per spike")
	chaosSpikeProb := flag.Float64("chaos-spike-prob", 0, "probability a surviving request pays -chaos-spike of latency")
	chaosPartition := flag.Duration("chaos-partition", 0, "cut the network for this long once every phone has joined")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for the fault schedule")
	flag.Parse()

	w, err := world.Canonical()
	if err != nil {
		return err
	}
	// sord registers the canonical apps; map the app id to its place so
	// the simulated phones materialize inside the right geofence.
	place, err := placeForApp(w, *appID)
	if err != nil {
		return err
	}
	// With any chaos flag set, the client's RoundTripper goes through a
	// FaultInjector: the load run then doubles as an exactly-once soak
	// against a real server — lost requests and lost acks force the device
	// outboxes to retransmit, and the server's ReportID dedup keeps the
	// stored data identical to a clean run.
	var fi *transport.FaultInjector
	if *chaosRequestLoss > 0 || *chaosAckLoss > 0 || *chaosSpikeProb > 0 || *chaosPartition > 0 {
		fi = transport.NewFaultInjector(transport.FaultConfig{
			Seed:         *chaosSeed,
			RequestLoss:  *chaosRequestLoss,
			ResponseLoss: *chaosAckLoss,
			SpikeProb:    *chaosSpikeProb,
			Spike:        *chaosSpike,
		})
		// Joins run clean so every phone gets a schedule; the injector arms
		// once the fleet is in (see the barrier below).
		fi.SetEnabled(false)
	}
	// Every phase below talks through the transport-neutral Conn.
	var conn sor.Conn
	var httpClient *sor.Client
	var streamClient *sor.StreamClient
	switch *transportKind {
	case "http":
		clientOpts := []sor.ClientOption{}
		if fi != nil {
			clientOpts = append(clientOpts,
				sor.WithClientHTTP(&http.Client{
					Transport: fi.Transport(nil),
					Timeout:   10 * time.Second,
				}),
				sor.WithClientRetries(5),
				sor.WithClientSeed(*chaosSeed))
		}
		httpClient, err = sor.NewClient(*serverURL, clientOpts...)
		if err != nil {
			return err
		}
		conn = httpClient
	case "stream":
		dial := sor.StreamDialer(func(ctx context.Context) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", *streamAddr)
		})
		if fi != nil {
			// A partition refuses dials and severs the live stream, driving
			// the client through its reconnect/resume path mid-load.
			dial = session.FaultDialer(fi, dial)
		}
		streamClient, err = sor.NewStreamClient(dial, fmt.Sprintf("sorload-%d", *seed),
			sor.WithStreamRetries(5), sor.WithStreamSeed(*chaosSeed))
		if err != nil {
			return err
		}
		conn = streamClient
	default:
		return fmt.Errorf("unknown -transport %q (http|stream)", *transportKind)
	}
	defer conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	// joinBarrier trips once every phone has joined (or failed to); the
	// chaos is armed only then, so participation is never chaotic.
	var joinBarrier sync.WaitGroup
	joinBarrier.Add(*phones)
	chaosArmed := make(chan struct{})
	go func() {
		joinBarrier.Wait()
		if fi != nil {
			fi.SetEnabled(true)
			if *chaosPartition > 0 {
				fi.PartitionFor(*chaosPartition)
			}
		}
		close(chaosArmed)
	}()

	type result struct {
		participateMs float64
		executeMs     float64
		measurements  int
		drainPasses   int
		delivered     int
		taskID        string
		userID        string
		err           error
	}
	results := make([]result, *phones)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *phones; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var joinOnce sync.Once
			markJoined := func() { joinOnce.Do(joinBarrier.Done) }
			defer markJoined()
			r := &results[i]
			now := time.Now().UTC()
			phone, err := sor.NewPhone(sor.PhoneConfig{
				ID:    fmt.Sprintf("load-phone-%d", i),
				Token: fmt.Sprintf("load-token-%d-%d", *seed, i),
				Traj:  sor.Trajectory{Place: place, Enter: now, Leave: now.Add(3 * time.Hour)},
				Seed:  *seed + int64(i),
			})
			if err != nil {
				r.err = err
				return
			}
			fe, err := sor.NewFrontend(phone, conn)
			if err != nil {
				r.err = err
				return
			}
			userID := fmt.Sprintf("load-user-%d-%d", *seed, i)
			t0 := time.Now()
			sched, err := fe.Participate(ctx, userID, *appID, *budget, 3*time.Hour)
			r.participateMs = float64(time.Since(t0)) / float64(time.Millisecond)
			if err != nil {
				r.err = err
				return
			}
			markJoined()
			<-chaosArmed
			t1 := time.Now()
			if _, err := fe.ExecuteSchedule(ctx, sched); err != nil {
				r.err = err
				return
			}
			// Under chaos the report may be parked in the outbox; flush
			// until the server has acked it so the run's numbers count
			// delivered work, not queued work.
			if err := fe.FlushOutbox(ctx); err != nil {
				r.err = err
				return
			}
			r.executeMs = float64(time.Since(t1)) / float64(time.Millisecond)
			r.measurements = len(sched.AtUnix)
			r.taskID = sched.TaskID
			r.userID = userID
			ob := fe.Outbox().Stats()
			r.drainPasses = ob.DrainPasses
			r.delivered = ob.Delivered
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var partLat, execLat []float64
	measurements, failures, drainPasses, delivered := 0, 0, 0, 0
	for _, r := range results {
		if r.err != nil {
			failures++
			log.Printf("phone failed: %v", r.err)
			continue
		}
		partLat = append(partLat, r.participateMs)
		execLat = append(execLat, r.executeMs)
		measurements += r.measurements
		drainPasses += r.drainPasses
		delivered += r.delivered
	}
	ok := *phones - failures
	fmt.Printf("sorload: %d/%d phones completed in %v (%d scheduled measurements)\n",
		ok, *phones, elapsed.Round(time.Millisecond), measurements)
	if ok > 0 {
		printLatency("participate (schedule computation)", partLat)
		printLatency("execute+upload+flush", execLat)
		fmt.Printf("  throughput: %.1f uploads/s\n", float64(ok)/elapsed.Seconds())
	}
	if fi != nil {
		fs := fi.Stats()
		var retries int64
		switch {
		case httpClient != nil:
			retries = httpClient.Stats().Retries
		case streamClient != nil:
			retries = streamClient.Stats().Retries
		}
		fmt.Printf("chaos: %d/%d requests lost, %d acks lost, %d refused by partition, %d severed, %d spikes; "+
			"client retried %d times; outbox: %d delivered in %d drain passes\n",
			fs.RequestsLost, fs.Requests, fs.ResponsesLost, fs.Partitioned, fs.SessionsSevered, fs.Spikes,
			retries, delivered, drainPasses)
	}
	if streamClient != nil {
		ss := streamClient.Stats()
		fmt.Printf("stream: %d sends, %d retries, %d reconnects, %d pushes received\n",
			ss.Sends, ss.Retries, ss.Reconnects, ss.PushesReceived)
	}
	if (*concurrency > 0 || *rankers > 0) && ok > 0 {
		var targets []burstTarget
		for _, r := range results {
			if r.err == nil {
				targets = append(targets, burstTarget{taskID: r.taskID, userID: r.userID})
			}
		}
		// With both writers and rankers, the two phases run concurrently:
		// the rankers read through the epoch-snapshot path while the
		// writers churn ingest underneath it.
		joinRankers := func() error { return nil }
		if *rankers > 0 {
			joinRankers = startRankPhase(ctx, conn, place.Category, *rankers, *ranks, *seed)
		}
		if *concurrency > 0 {
			if err := runBurstPhase(ctx, conn, *appID, targets, *concurrency, *batchSize, *batches); err != nil {
				return err
			}
		}
		if err := joinRankers(); err != nil {
			return err
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d phones failed", failures)
	}
	return nil
}

// burstTarget identifies a joined phone the burst phase uploads for.
type burstTarget struct {
	taskID, userID string
}

// burstReport builds one small report in the burst target's name. Every
// report carries a unique ReportID so a retried batch (chaos flags, flaky
// networks) is deduplicated by the server instead of stored twice.
func burstReport(appID string, tgt burstTarget, at time.Time, reportID string) wire.DataUpload {
	return wire.DataUpload{
		TaskID:   tgt.taskID,
		AppID:    appID,
		UserID:   tgt.userID,
		ReportID: reportID,
		Series: []wire.SensorSeries{
			{Sensor: "temperature", Samples: []wire.SensorSample{
				{AtUnixMilli: at.UnixMilli(), WindowMilli: 5000, Readings: []float64{70.2, 70.4, 70.3}},
			}},
		},
	}
}

// runBurstPhase hammers the batched ingest path with `workers` concurrent
// senders, each recording a per-worker latency histogram of SendBatch
// round-trips.
func runBurstPhase(ctx context.Context, conn sor.Conn, appID string,
	targets []burstTarget, workers, batchSize, batches int) error {
	if batchSize < 1 || batchSize > wire.MaxBatchReports {
		return fmt.Errorf("batch size %d out of [1,%d]", batchSize, wire.MaxBatchReports)
	}
	hists := make([]*stats.Histogram, workers)
	errs := make([]error, workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		hists[w] = stats.NewLatencyHistogram()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; n < batches; n++ {
				ups := make([]*wire.DataUpload, batchSize)
				for i := range ups {
					tgt := targets[(w*batches+n+i)%len(targets)]
					reportID := fmt.Sprintf("burst/%s/%d-%d", tgt.userID, w, n*batchSize+i)
					up := burstReport(appID, tgt, start.Add(time.Duration(n*batchSize+i)*time.Second), reportID)
					ups[i] = &up
				}
				t0 := time.Now()
				ack, err := conn.SendBatch(ctx, ups)
				if err != nil {
					errs[w] = err
					return
				}
				hists[w].Add(float64(time.Since(t0)) / float64(time.Millisecond))
				if !ack.OK {
					errs[w] = fmt.Errorf("batch refused: %s", ack.Message)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	merged := stats.NewLatencyHistogram()
	sent := 0
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return fmt.Errorf("burst worker %d: %w", w, errs[w])
		}
		sent += hists[w].N() * batchSize
		fmt.Printf("burst worker %d: %d batches, mean %.1f ms\n%s\n",
			w, hists[w].N(), hists[w].Mean(), hists[w].Render(40, "ms"))
		if err := merged.Merge(hists[w]); err != nil {
			return err
		}
	}
	p50, err := merged.Quantile(0.5)
	if err != nil {
		return err
	}
	p99, err := merged.Quantile(0.99)
	if err != nil {
		return err
	}
	fmt.Printf("burst phase: %d workers, %d reports in %v (%.0f reports/s), batch p50 ≤%g ms p99 ≤%g ms\n",
		workers, sent, elapsed.Round(time.Millisecond),
		float64(sent)/elapsed.Seconds(), p50, p99)
	return nil
}

// rankPrefs builds the i-th preference profile of the rank-phase query
// mix: a rotating temperature target plus rotating weights, giving the
// server's profile cache a handful of distinct slots to serve.
func rankPrefs(i int) []wire.PrefEntry {
	i %= 16
	return []wire.PrefEntry{
		{Feature: "temperature", Kind: int(ranking.PrefValue),
			Value: 60 + float64(i), Weight: 1 + i%5},
	}
}

// startRankPhase launches `workers` rank-query goroutines, each sending
// `ranks` RankRequests for the category with a rotating profile mix. It
// returns a join function that waits for them and prints per-worker and
// merged latency plus the span of snapshot epochs observed — under
// concurrent ingest the epochs should advance, and within one worker
// they must never go backwards.
func startRankPhase(ctx context.Context, conn sor.Conn, category string,
	workers, ranks int, seed int64) func() error {
	type rankStats struct {
		hist     *stats.Histogram
		loEpoch  int64
		hiEpoch  int64
		nonMono  int
		refusals int
		err      error
	}
	res := make([]rankStats, workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		res[w].hist = stats.NewLatencyHistogram()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := &res[w]
			var lastEpoch int64
			for n := 0; n < ranks; n++ {
				req := &wire.RankRequest{
					Category: category,
					UserID:   fmt.Sprintf("rank-user-%d-%d", seed, w),
					Prefs:    rankPrefs(w*ranks + n),
				}
				t0 := time.Now()
				resp, err := conn.Send(ctx, req)
				if err != nil {
					r.err = err
					return
				}
				r.hist.Add(float64(time.Since(t0)) / float64(time.Millisecond))
				ranked, ok := resp.(*wire.RankResponse)
				if !ok {
					r.refusals++
					continue
				}
				if ranked.Epoch < lastEpoch {
					r.nonMono++
				}
				lastEpoch = ranked.Epoch
				if r.loEpoch == 0 || ranked.Epoch < r.loEpoch {
					r.loEpoch = ranked.Epoch
				}
				if ranked.Epoch > r.hiEpoch {
					r.hiEpoch = ranked.Epoch
				}
			}
		}(w)
	}
	return func() error {
		wg.Wait()
		elapsed := time.Since(start)
		merged := stats.NewLatencyHistogram()
		sent, refusals := 0, 0
		loEpoch, hiEpoch := int64(0), int64(0)
		for w := 0; w < workers; w++ {
			r := &res[w]
			if r.err != nil {
				return fmt.Errorf("rank worker %d: %w", w, r.err)
			}
			if r.nonMono > 0 {
				return fmt.Errorf("rank worker %d: epoch went backwards %d times", w, r.nonMono)
			}
			sent += r.hist.N()
			refusals += r.refusals
			fmt.Printf("rank worker %d: %d ranks, mean %.1f ms, epochs %d→%d\n",
				w, r.hist.N(), r.hist.Mean(), r.loEpoch, r.hiEpoch)
			if err := merged.Merge(r.hist); err != nil {
				return err
			}
			if loEpoch == 0 || (r.loEpoch > 0 && r.loEpoch < loEpoch) {
				loEpoch = r.loEpoch
			}
			if r.hiEpoch > hiEpoch {
				hiEpoch = r.hiEpoch
			}
		}
		p50, err := merged.Quantile(0.5)
		if err != nil {
			return err
		}
		p99, err := merged.Quantile(0.99)
		if err != nil {
			return err
		}
		fmt.Printf("rank phase: %d workers, %d ranks in %v (%.0f ranks/s, %d refused), p50 ≤%g ms p99 ≤%g ms, epochs %d→%d\n",
			workers, sent, elapsed.Round(time.Millisecond),
			float64(sent)/elapsed.Seconds(), refusals, p50, p99, loEpoch, hiEpoch)
		return nil
	}
}

func printLatency(label string, ms []float64) {
	if len(ms) == 0 {
		return
	}
	mean, _, err := stats.MeanStd(ms)
	if err != nil {
		return
	}
	p50, err := stats.Quantile(ms, 0.5)
	if err != nil {
		return
	}
	p99, err := stats.Quantile(ms, 0.99)
	if err != nil {
		return
	}
	fmt.Printf("  %-36s mean %7.1f ms   p50 %7.1f ms   p99 %7.1f ms\n", label, mean, p50, p99)
}

// placeForApp maps sord's canonical app ids to world places.
func placeForApp(w *world.World, appID string) (*world.Place, error) {
	byApp := map[string]string{
		"hiking-trail-1": world.GreenLakeTrail,
		"hiking-trail-2": world.LongTrail,
		"hiking-trail-3": world.CliffTrail,
		"coffee-shop-1":  world.TimHortons,
		"coffee-shop-2":  world.BNCafe,
		"coffee-shop-3":  world.Starbucks,
	}
	name, ok := byApp[appID]
	if !ok {
		known := make([]string, 0, len(byApp))
		for k := range byApp {
			known = append(known, k)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("unknown app %q (known: %v)", appID, known)
	}
	return w.Place(name)
}
